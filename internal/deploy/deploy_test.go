package deploy

import (
	"testing"
	"testing/quick"
	"time"

	"dashdb/internal/clusterfs"
)

func bigHost(name string) *Host {
	return NewHost(name, Hardware{Cores: 20, RAMBytes: 256 << 30, StorageBytes: 7 << 40})
}

func stdRegistry() *Registry {
	reg := NewRegistry()
	reg.Push(Image{Name: "dashdb-local", Version: "1.0", SizeBytes: 4 << 30})
	reg.Push(Image{Name: "dashdb-local", Version: "1.1", SizeBytes: 4 << 30})
	return reg
}

func TestAutoConfigureShares(t *testing.T) {
	hw := Hardware{Cores: 20, RAMBytes: 256 << 30, StorageBytes: 7 << 40}
	cfg := AutoConfigure(hw)
	if err := cfg.Validate(hw); err != nil {
		t.Fatal(err)
	}
	if cfg.BufferPoolBytes <= cfg.SortHeapBytes {
		t.Fatal("buffer pool must get the largest share")
	}
	if cfg.Parallelism != 20 || cfg.MaxConcurrency != 10 {
		t.Fatalf("parallelism/WLM %+v", cfg)
	}
	if cfg.ShardsPerNode != 5 {
		t.Fatalf("shards per node %d", cfg.ShardsPerNode)
	}
}

func TestAutoConfigureLaptop(t *testing.T) {
	// The 8GB entry-level configuration of §II.A.
	cfg := AutoConfigure(Hardware{Cores: 4, RAMBytes: 8 << 30, StorageBytes: 20 << 30})
	if cfg.ShardsPerNode != 1 {
		t.Fatalf("laptop shards %d", cfg.ShardsPerNode)
	}
	if cfg.MaxConcurrency < 2 {
		t.Fatalf("WLM %d", cfg.MaxConcurrency)
	}
}

// Property: auto-configuration never over-reserves memory and is monotone
// in RAM (more RAM never shrinks the buffer pool).
func TestAutoConfigureProperties(t *testing.T) {
	f := func(cores8 uint8, ramGB uint16) bool {
		hw := Hardware{Cores: int(cores8%128) + 1, RAMBytes: (int64(ramGB%4096) + 1) << 30}
		cfg := AutoConfigure(hw)
		if cfg.Validate(hw) != nil {
			return false
		}
		bigger := hw
		bigger.RAMBytes *= 2
		cfg2 := AutoConfigure(bigger)
		return cfg2.BufferPoolBytes >= cfg.BufferPoolBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDetectHardware(t *testing.T) {
	hw := DetectHardware()
	if hw.Cores < 1 || hw.RAMBytes < 1<<30 {
		t.Fatalf("detected %+v", hw)
	}
}

func TestRegistry(t *testing.T) {
	reg := stdRegistry()
	img, err := reg.Pull("dashdb-local", "1.0")
	if err != nil || img.SizeBytes != 4<<30 {
		t.Fatalf("pull %+v err %v", img, err)
	}
	if _, err := reg.Pull("dashdb-local", "9.9"); err == nil {
		t.Fatal("missing version must error")
	}
	if vs := reg.Versions("dashdb-local"); len(vs) != 2 || vs[0] != "1.0" {
		t.Fatalf("versions %v", vs)
	}
}

func TestSingleContainerRun(t *testing.T) {
	reg := stdRegistry()
	h := bigHost("srv1")
	c, tl, err := h.Run(reg, "dashdb-local", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateRunning {
		t.Fatalf("state %v", c.State)
	}
	if c.MountPath != "/mnt/clusterfs" {
		t.Fatalf("mount %s", c.MountPath)
	}
	// Paper: seconds to start container, few minutes for engine on large
	// memory configs; total well under 30 minutes for one host.
	if tl.Total() > 30*time.Minute {
		t.Fatalf("single-host deploy %v exceeds 30 minutes", tl.Total())
	}
	// Only one container per host.
	if _, _, err := h.Run(reg, "dashdb-local", "1.0"); err == nil {
		t.Fatal("second container on one host must be rejected")
	}
}

func TestEntryLevelGate(t *testing.T) {
	reg := stdRegistry()
	weak := NewHost("tiny", Hardware{Cores: 2, RAMBytes: 4 << 30, StorageBytes: 10 << 30})
	if _, _, err := weak.Run(reg, "dashdb-local", "1.0"); err == nil {
		t.Fatal("host below 8GB/20GB must be rejected")
	}
}

func TestStackUpdatePreservesDataPath(t *testing.T) {
	reg := stdRegistry()
	h := bigHost("srv1")
	c1, _, err := h.Run(reg, "dashdb-local", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	c2, tl, err := h.Update(reg, "dashdb-local", "1.1")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Image.Version != "1.1" || c2.MountPath != c1.MountPath {
		t.Fatalf("update container %+v", c2)
	}
	// Update must not re-pull unrelated to version... new version pulls.
	foundPull := false
	for _, p := range tl.Phases {
		if p.Name == "pull image" {
			foundPull = true
		}
	}
	if !foundPull {
		t.Fatal("new version should pull")
	}
	// Updating again to the same version: no pull phase (cached).
	h.Stop()
	_, tl2, err := h.Run(reg, "dashdb-local", "1.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tl2.Phases {
		if p.Name == "pull image" {
			t.Fatal("cached image must not re-pull")
		}
	}
}

// TestClusterDeployUnder30Minutes reproduces experiment F-A: clusters
// from 4 to 24 large-memory nodes deploy fully configured in < 30
// simulated minutes.
func TestClusterDeployUnder30Minutes(t *testing.T) {
	for _, n := range []int{1, 4, 12, 24} {
		reg := stdRegistry()
		var hosts []*Host
		for i := 0; i < n; i++ {
			hosts = append(hosts, bigHost(hostName(i)))
		}
		dep, err := DeployCluster(reg, hosts, "dashdb-local", "1.0", clusterfs.New())
		if err != nil {
			t.Fatal(err)
		}
		total := dep.Timeline.Total()
		if total > 30*time.Minute {
			t.Fatalf("%d-node deploy took %v (> 30 min)", n, total)
		}
		if len(dep.Cluster.Shards()) < n {
			t.Fatalf("%d-node cluster has %d shards", n, len(dep.Cluster.Shards()))
		}
		// The cluster is immediately usable.
		if _, err := dep.Cluster.Query(`CREATE TABLE t (a BIGINT NOT NULL)`); err != nil {
			t.Fatal(err)
		}
		if _, err := dep.Cluster.Query(`INSERT INTO t VALUES (1)`); err != nil {
			t.Fatal(err)
		}
		r, err := dep.Cluster.Query(`SELECT COUNT(*) FROM t`)
		if err != nil || r.Rows[0][0].Int() != 1 {
			t.Fatalf("post-deploy query: %v err %v", r, err)
		}
		t.Logf("%2d nodes: deploy %.1f min, %d shards", n, total.Minutes(), len(dep.Cluster.Shards()))
	}
}

func hostName(i int) string { return string(rune('A'+i%26)) + "-host" }

func TestTimelineString(t *testing.T) {
	tl := Timeline{Phases: []Phase{{Name: "x", Duration: time.Second}}}
	if tl.String() == "" {
		t.Fatal("empty render")
	}
}

func TestQueryParallelismGetter(t *testing.T) {
	// Within the cap the derived degree tracks cores exactly.
	cfg := AutoConfigure(Hardware{Cores: 20, RAMBytes: 256 << 30})
	if cfg.QueryParallelism() != 20 {
		t.Fatalf("dop %d, want 20", cfg.QueryParallelism())
	}
	// Very wide hosts cap at the morsel-parallelism bound.
	wide := AutoConfigure(Hardware{Cores: 120, RAMBytes: 1 << 40})
	if wide.Parallelism != 64 || wide.QueryParallelism() != 64 {
		t.Fatalf("wide host dop %d/%d, want 64", wide.Parallelism, wide.QueryParallelism())
	}
	// Hand-edited degenerate configs still yield a usable degree.
	if (EngineConfig{Parallelism: 0}).QueryParallelism() != 1 {
		t.Fatal("zero parallelism must clamp to 1")
	}
	if (EngineConfig{Parallelism: 1 << 20}).QueryParallelism() != 64 {
		t.Fatal("hand-edited parallelism must clamp to the cap")
	}
}
