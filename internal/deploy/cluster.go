package deploy

import (
	"fmt"
	"time"

	"dashdb/internal/clusterfs"
	"dashdb/internal/mpp"
)

// ClusterDeployment is the outcome of deploying dashDB Local across a set
// of hosts: a running MPP cluster plus the simulated deployment timeline
// (experiment F-A: "consistently able to deploy to large clusters in
// under 30 minutes, fully configured").
type ClusterDeployment struct {
	Cluster    *mpp.Cluster
	Containers []*Container
	Timeline   Timeline
}

// DeployCluster pulls and runs the image on every host in parallel (the
// timeline takes the slowest host, since hosts deploy concurrently), then
// forms the MPP cluster over the shared filesystem with auto-configured
// shard fan-out.
func DeployCluster(reg *Registry, hosts []*Host, imageName, version string, fs *clusterfs.FS) (*ClusterDeployment, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("deploy: no hosts")
	}
	var containers []*Container
	var slowest Timeline
	for _, h := range hosts {
		c, tl, err := h.Run(reg, imageName, version)
		if err != nil {
			return nil, fmt.Errorf("deploy: host %s: %w", h.Name, err)
		}
		containers = append(containers, c)
		if tl.Total() > slowest.Total() {
			slowest = tl
		}
	}
	// Cluster formation: node discovery + shard layout + catalog init.
	formation := 30*time.Second + time.Duration(len(hosts))*2*time.Second
	slowest.Phases = append(slowest.Phases, Phase{Name: "cluster formation", Duration: formation})

	var nodes []mpp.NodeSpec
	shardsPerNode := 1
	for _, c := range containers {
		nodes = append(nodes, mpp.NodeSpec{
			Name:     c.Host.Name,
			Cores:    c.Host.HW.Cores,
			MemBytes: c.Config.BufferPoolBytes,
		})
		if c.Config.ShardsPerNode > shardsPerNode {
			shardsPerNode = c.Config.ShardsPerNode
		}
	}
	cluster, err := mpp.NewCluster(nodes, shardsPerNode, fs)
	if err != nil {
		return nil, err
	}
	return &ClusterDeployment{Cluster: cluster, Containers: containers, Timeline: slowest}, nil
}
