// Package deploy simulates dashDB Local's container-based deployment
// (paper §II.A): an image registry, a Docker-like container lifecycle on
// each host, and — the substantive part — the automatic configuration
// component that detects the hardware and derives a fully tuned engine
// configuration (memory heaps, query parallelism, workload management)
// so that clusters deploy "fully configured and instantiated" in under
// 30 minutes with no manual tuning.
//
// The container runtime is a simulator (we cannot run Docker inside the
// library), but the auto-configuration algorithm is real code: the same
// EngineConfig it produces is used to open core engines and size MPP
// shards throughout this repository.
package deploy

import (
	"fmt"
	"runtime"
)

// Hardware describes a target host, as detected or specified.
type Hardware struct {
	Cores        int
	RAMBytes     int64
	StorageBytes int64
}

// DetectHardware inspects the current machine (the automatic detection of
// CPU/core counts and RAM of §II.A). Storage is reported as a fixed
// conservative figure since the library does not probe filesystems.
func DetectHardware() Hardware {
	return Hardware{
		Cores:        runtime.NumCPU(),
		RAMBytes:     detectRAM(),
		StorageBytes: 20 << 30,
	}
}

// detectRAM estimates usable memory; without OS probing we derive a
// fleet-safe default from GOMAXPROCS-scaled heuristics.
func detectRAM() int64 {
	// 2 GiB per core is the entry-level ratio of the paper's examples
	// (8 GB / laptop, 6 TB / 72-way server ≈ 85 GB per core at the top).
	return int64(runtime.NumCPU()) * (2 << 30)
}

// MinimumHardware is the paper's entry-level requirement: 8 GB RAM and
// 20 GB storage.
var MinimumHardware = Hardware{Cores: 2, RAMBytes: 8 << 30, StorageBytes: 20 << 30}

// Meets reports whether the hardware satisfies a minimum.
func (h Hardware) Meets(min Hardware) bool {
	return h.Cores >= min.Cores && h.RAMBytes >= min.RAMBytes && h.StorageBytes >= min.StorageBytes
}

// EngineConfig is the fully derived engine configuration: every knob the
// paper lists as automatically adapted ("allocation of memory to
// functional purposes (caching, sorting, hashing, locking, logging, etc.),
// query parallelism degree, workload management infrastructure").
type EngineConfig struct {
	BufferPoolBytes int64 // page cache ("caching")
	SortHeapBytes   int64
	HashHeapBytes   int64
	LockListBytes   int64
	LogBufferBytes  int64
	Parallelism     int // query parallelism degree
	MaxConcurrency  int // WLM admission limit
	ShardsPerNode   int // MPP shard fan-out
}

// Memory shares, as fractions of host RAM. The remainder is left to the
// OS and working memory.
const (
	bufferPoolShare = 0.40
	sortHeapShare   = 0.15
	hashHeapShare   = 0.15
	lockListShare   = 0.02
	logBufferShare  = 0.03
)

// maxQueryParallelism caps the derived per-query parallelism degree. The
// scan parallelizes over sealed 1,024-tuple strides, and the open
// (unsealed) stride is a single morsel, so degrees beyond this bound buy
// nothing on all but enormous tables while multiplying per-worker state;
// very wide hosts (the paper's 72-way servers and up) spend the extra
// cores on concurrent queries via MaxConcurrency instead.
const maxQueryParallelism = 64

// AutoConfigure derives the engine configuration from hardware. It is a
// pure function: the same hardware always produces the same
// configuration, which is what makes container redeployment reproducible.
func AutoConfigure(hw Hardware) EngineConfig {
	cores := hw.Cores
	if cores < 1 {
		cores = 1
	}
	ram := hw.RAMBytes
	if ram < 1<<30 {
		ram = 1 << 30
	}
	cfg := EngineConfig{
		BufferPoolBytes: int64(float64(ram) * bufferPoolShare),
		SortHeapBytes:   int64(float64(ram) * sortHeapShare),
		HashHeapBytes:   int64(float64(ram) * hashHeapShare),
		LockListBytes:   int64(float64(ram) * lockListShare),
		LogBufferBytes:  int64(float64(ram) * logBufferShare),
		Parallelism:     clampInt(cores, 1, maxQueryParallelism),
		MaxConcurrency:  maxInt(2, cores/2),
		ShardsPerNode:   clampInt(cores/4, 1, 24),
	}
	return cfg
}

// QueryParallelism returns the intra-query parallelism degree the core
// engine should run scans and partitioned aggregation at. It is the
// getter the core layer consumes (plumbed through core.Config as a plain
// int, so core never imports deploy): always at least 1 and never above
// the morsel-parallelism cap, even for hand-edited configurations.
func (c EngineConfig) QueryParallelism() int {
	return clampInt(c.Parallelism, 1, maxQueryParallelism)
}

// TotalReserved returns the sum of all memory heaps; always strictly
// below the host RAM (property-tested).
func (c EngineConfig) TotalReserved() int64 {
	return c.BufferPoolBytes + c.SortHeapBytes + c.HashHeapBytes + c.LockListBytes + c.LogBufferBytes
}

// Validate sanity-checks a configuration against its hardware.
func (c EngineConfig) Validate(hw Hardware) error {
	if c.TotalReserved() > hw.RAMBytes {
		return fmt.Errorf("deploy: configuration reserves %d bytes on a %d-byte host", c.TotalReserved(), hw.RAMBytes)
	}
	if c.Parallelism < 1 || c.MaxConcurrency < 1 || c.ShardsPerNode < 1 {
		return fmt.Errorf("deploy: degenerate configuration %+v", c)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
