package deploy

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dashdb/internal/clusterfs"
	"dashdb/internal/mpp"
	"dashdb/internal/shardrpc"
	"dashdb/internal/types"
)

func TestMonitorDeclaresDeathAfterConsecutiveMisses(t *testing.T) {
	healthy := map[string]bool{"a": true, "b": true}
	var failed []string
	m := NewMonitor(
		[]MonitoredNode{{Name: "a", Addr: "x"}, {Name: "b", Addr: "y"}},
		PingerFunc(func(name, addr string) error {
			if healthy[name] {
				return nil
			}
			return fmt.Errorf("down")
		}),
		MonitorConfig{Interval: time.Hour, Misses: 3},
		func(name string) { failed = append(failed, name) },
	)

	// A transient two-miss blip must not kill the node.
	healthy["b"] = false
	m.Sweep()
	m.Sweep()
	healthy["b"] = true
	m.Sweep()
	if len(failed) != 0 || m.Dead("b") {
		t.Fatalf("transient blip declared death: %v", failed)
	}

	// Three consecutive misses do, exactly once.
	healthy["b"] = false
	for i := 0; i < 5; i++ {
		m.Sweep()
	}
	if len(failed) != 1 || failed[0] != "b" {
		t.Fatalf("failed=%v, want exactly [b]", failed)
	}
	if !m.Dead("b") || m.Dead("a") {
		t.Fatal("death flags wrong")
	}
}

func TestMonitorAddRemove(t *testing.T) {
	var failed []string
	m := NewMonitor(nil,
		PingerFunc(func(name, addr string) error { return fmt.Errorf("down") }),
		MonitorConfig{Interval: time.Hour, Misses: 1},
		func(name string) { failed = append(failed, name) })
	m.Add(MonitoredNode{Name: "n1", Addr: "x"})
	m.Add(MonitoredNode{Name: "n1", Addr: "x"}) // duplicate ignored
	m.Remove("n1")                              // graceful leave: not a death
	m.Sweep()
	if len(failed) != 0 {
		t.Fatalf("removed node declared dead: %v", failed)
	}
}

// TestMonitorDrivesNetClusterFailover is the end-to-end HA loop: a real
// server dies, heartbeats miss, the monitor fails the node over, and
// the cluster keeps answering with all rows intact.
func TestMonitorDrivesNetClusterFailover(t *testing.T) {
	fs := clusterfs.New()
	var servers []*shardrpc.Server
	var nodes []mpp.NetNode
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("hb%d", i)
		srv := shardrpc.NewServer(name, fs)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatalf("start: %v", err)
		}
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		nodes = append(nodes, mpp.NetNode{Name: name, Addr: srv.Addr(), Cores: 2, MemBytes: 64 << 20})
	}
	c, err := mpp.NewNetCluster(nodes, 4, fs)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable("t", types.Schema{{Name: "v", Kind: types.KindInt}}, mpp.TableOptions{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	var rows []types.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	if err := c.Insert("t", rows); err != nil {
		t.Fatalf("insert: %v", err)
	}

	mon := WatchNetCluster(c, MonitorConfig{Interval: time.Hour, Misses: 2})
	defer mon.Stop()
	mon.Sweep() // all healthy
	if mon.Dead("hb1") {
		t.Fatal("healthy node marked dead")
	}

	servers[1].Close()
	mon.Sweep()
	mon.Sweep()
	if !mon.Dead("hb1") {
		t.Fatal("dead node not detected")
	}
	if got := c.Assignment(); strings.Contains(got, "hb1") {
		t.Fatalf("failover did not run: %s", got)
	}
	res, err := c.Query("SELECT COUNT(*) AS n FROM t")
	if err != nil || res.Rows[0][0].Int() != 100 {
		t.Fatalf("post-failover query: %v %v", res, err)
	}
}
