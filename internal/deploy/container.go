package deploy

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Image is a container image in the registry (the dashDB Local image on
// the Docker Hub private repository, §II.A).
type Image struct {
	Name      string
	Version   string
	SizeBytes int64
}

// Registry simulates the image registry.
type Registry struct {
	mu     sync.RWMutex
	images map[string]Image // name:version -> image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]Image)}
}

// Push publishes an image version.
func (r *Registry) Push(img Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Name+":"+img.Version] = img
}

// Pull fetches an image by name:version.
func (r *Registry) Pull(name, version string) (Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[name+":"+version]
	if !ok {
		return Image{}, fmt.Errorf("deploy: image %s:%s not found", name, version)
	}
	return img, nil
}

// Versions lists the published versions of an image name, sorted.
func (r *Registry) Versions(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k := range r.images {
		if img := r.images[k]; img.Name == name {
			out = append(out, img.Version)
		}
	}
	sort.Strings(out)
	return out
}

// ContainerState is the lifecycle state.
type ContainerState uint8

const (
	// StateCreated means the container exists but has not started.
	StateCreated ContainerState = iota
	// StateRunning means the engine inside is up.
	StateRunning
	// StateStopped means the container was stopped; data persists on the
	// mounted clustered filesystem.
	StateStopped
)

// String names the state.
func (s ContainerState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	default:
		return "stopped"
	}
}

// Timing model constants for the simulated deployment timeline. They are
// calibrated to the paper's statements: "seconds to start container from
// new image, few minutes to start dashDB engine on large memory
// configurations", with full clusters deploying in < 30 minutes.
const (
	// PullBandwidth is the registry download rate.
	PullBandwidth = 100 << 20 // bytes per simulated second
	// ContainerStartTime is the docker-run-to-process latency.
	ContainerStartTime = 5 * time.Second
	// EngineStartBase is the fixed engine boot cost.
	EngineStartBase = 20 * time.Second
	// EngineStartPerRAM is extra engine start time per GiB of RAM
	// (buffer pool formatting, memory registration).
	EngineStartPerRAM = 1500 * time.Millisecond
)

// Container is one dashDB Local container on a host. Only one per Docker
// host is allowed (§II.A).
type Container struct {
	Image  Image
	Host   *Host
	State  ContainerState
	Config EngineConfig
	// MountPath is the clustered-filesystem mount (always /mnt/clusterfs).
	MountPath string
}

// Host is a machine running the Docker engine.
type Host struct {
	Name    string
	HW      Hardware
	mu      sync.Mutex
	current *Container
	pulled  map[string]bool // image name:version already local
}

// NewHost creates a host.
func NewHost(name string, hw Hardware) *Host {
	return &Host{Name: name, HW: hw, pulled: make(map[string]bool)}
}

// Container returns the host's container, if any.
func (h *Host) Container() *Container {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.current
}

// Phase is one step of a deployment timeline.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Timeline is an ordered simulated deployment schedule.
type Timeline struct {
	Phases []Phase
}

// Total returns the end-to-end simulated duration.
func (t Timeline) Total() time.Duration {
	var sum time.Duration
	for _, p := range t.Phases {
		sum += p.Duration
	}
	return sum
}

// String renders the timeline for reports.
func (t Timeline) String() string {
	s := ""
	for _, p := range t.Phases {
		s += fmt.Sprintf("%-24s %8.1fs\n", p.Name, p.Duration.Seconds())
	}
	s += fmt.Sprintf("%-24s %8.1fs", "TOTAL", t.Total().Seconds())
	return s
}

// Run simulates `docker run` of the image on this host: pull (if absent),
// create, start container, start engine with auto-configuration. It
// returns the running container and its simulated timeline. Running a
// second container on one host is rejected, matching the paper's "only
// one dashDB Local container per Docker host".
func (h *Host) Run(reg *Registry, name, version string) (*Container, Timeline, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.current != nil && h.current.State == StateRunning {
		return nil, Timeline{}, fmt.Errorf("deploy: host %s already runs a dashDB Local container", h.Name)
	}
	if !h.HW.Meets(MinimumHardware) {
		return nil, Timeline{}, fmt.Errorf("deploy: host %s below entry-level requirements (8GB RAM / 20GB storage)", h.Name)
	}
	img, err := reg.Pull(name, version)
	if err != nil {
		return nil, Timeline{}, err
	}
	var tl Timeline
	key := img.Name + ":" + img.Version
	if !h.pulled[key] {
		pull := time.Duration(float64(img.SizeBytes)/float64(PullBandwidth)) * time.Second
		tl.Phases = append(tl.Phases, Phase{Name: "pull image", Duration: pull})
		h.pulled[key] = true
	}
	tl.Phases = append(tl.Phases, Phase{Name: "start container", Duration: ContainerStartTime})

	cfg := AutoConfigure(h.HW)
	engineStart := EngineStartBase + time.Duration(h.HW.RAMBytes>>30)*EngineStartPerRAM
	tl.Phases = append(tl.Phases, Phase{Name: "auto-configure + engine start", Duration: engineStart})

	c := &Container{
		Image:     img,
		Host:      h,
		State:     StateRunning,
		Config:    cfg,
		MountPath: "/mnt/clusterfs",
	}
	h.current = c
	return c, tl, nil
}

// Stop stops the container; state on the clustered filesystem persists.
func (h *Host) Stop() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.current == nil || h.current.State != StateRunning {
		return fmt.Errorf("deploy: no running container on %s", h.Name)
	}
	h.current.State = StateStopped
	return nil
}

// Update performs the paper's stack-update flow: stop-and-rename the
// current container, then run a new container from the new image version
// against the same mounted data. It returns the new container and the
// update timeline.
func (h *Host) Update(reg *Registry, name, newVersion string) (*Container, Timeline, error) {
	if err := h.Stop(); err != nil {
		return nil, Timeline{}, err
	}
	h.mu.Lock()
	h.current = nil // old container renamed aside
	h.mu.Unlock()
	return h.Run(reg, name, newVersion)
}
