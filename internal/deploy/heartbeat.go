package deploy

import (
	"sync"
	"time"

	"dashdb/internal/mpp"
	"dashdb/internal/shardrpc"
)

// Heartbeat failure detection for the distributed runtime (§II.E, HA):
// the console pings every node on an interval; a node that misses a
// configurable number of consecutive heartbeats is declared dead and
// the OnFail callback fires — typically NetCluster.FailNode, which
// re-associates the dead node's shards across the survivors. The
// Pinger is an interface so this package stays transport-agnostic
// (shardrpc in production, fakes in tests).

// Pinger probes one node; any error counts as a missed heartbeat.
type Pinger interface {
	PingNode(name, addr string) error
}

// PingerFunc adapts a function to the Pinger interface.
type PingerFunc func(name, addr string) error

// PingNode calls f.
func (f PingerFunc) PingNode(name, addr string) error { return f(name, addr) }

// MonitorConfig tunes the failure detector.
type MonitorConfig struct {
	Interval time.Duration // heartbeat period (default 500ms)
	Misses   int           // consecutive misses before declaring death (default 3)
}

// MonitoredNode is one heartbeat target.
type MonitoredNode struct {
	Name string
	Addr string
}

// Monitor runs the heartbeat loop over a fixed node set.
type Monitor struct {
	cfg    MonitorConfig
	pinger Pinger
	onFail func(name string)

	mu     sync.Mutex
	nodes  []MonitoredNode
	missed map[string]int
	dead   map[string]bool
	stop   chan struct{}
	done   chan struct{}
}

// NewMonitor builds a failure detector. onFail runs (on the monitor
// goroutine) exactly once per node death.
func NewMonitor(nodes []MonitoredNode, p Pinger, cfg MonitorConfig, onFail func(name string)) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Misses <= 0 {
		cfg.Misses = 3
	}
	return &Monitor{
		cfg:    cfg,
		pinger: p,
		onFail: onFail,
		nodes:  append([]MonitoredNode(nil), nodes...),
		missed: make(map[string]int),
		dead:   make(map[string]bool),
	}
}

// Start launches the heartbeat loop.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	m.mu.Unlock()
	go m.run()
}

// Stop halts the loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop = nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Dead reports whether a node has been declared dead.
func (m *Monitor) Dead(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead[name]
}

// Remove drops a node from monitoring (graceful shrink: leaving is not
// dying).
func (m *Monitor) Remove(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range m.nodes {
		if n.Name == name {
			m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
			break
		}
	}
	delete(m.missed, name)
	delete(m.dead, name)
}

// Add starts monitoring a node (elastic grow).
func (m *Monitor) Add(n MonitoredNode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, have := range m.nodes {
		if have.Name == n.Name {
			return
		}
	}
	m.nodes = append(m.nodes, n)
}

func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.sweep()
		}
	}
}

// Sweep pings every live node once, applying the miss counters. Split
// from run so tests can drive the detector without real time.
func (m *Monitor) Sweep() { m.sweep() }

// WatchNetCluster wires a Monitor to a network cluster: shardrpc pings
// are the heartbeats and FailNode is the death action, so a crashed
// node's shards move to the survivors without operator involvement.
// Call Start on the returned monitor (tests drive Sweep directly).
func WatchNetCluster(c *mpp.NetCluster, cfg MonitorConfig) *Monitor {
	pool := shardrpc.NewPool("console-heartbeat")
	var nodes []MonitoredNode
	for _, n := range c.Nodes() {
		nodes = append(nodes, MonitoredNode{Name: n.Name, Addr: n.Addr})
	}
	return NewMonitor(nodes, PingerFunc(func(name, addr string) error {
		_, err := pool.Ping(addr)
		return err
	}), cfg, func(name string) {
		c.FailNode(name) //nolint:errcheck — a concurrent manual failover is fine
	})
}

func (m *Monitor) sweep() {
	m.mu.Lock()
	targets := append([]MonitoredNode(nil), m.nodes...)
	dead := make(map[string]bool, len(m.dead))
	for k, v := range m.dead {
		dead[k] = v
	}
	m.mu.Unlock()

	for _, n := range targets {
		if dead[n.Name] {
			continue
		}
		err := m.pinger.PingNode(n.Name, n.Addr)
		m.mu.Lock()
		if err == nil {
			m.missed[n.Name] = 0
			m.mu.Unlock()
			continue
		}
		m.missed[n.Name]++
		declare := m.missed[n.Name] >= m.cfg.Misses && !m.dead[n.Name]
		if declare {
			m.dead[n.Name] = true
		}
		m.mu.Unlock()
		if declare && m.onFail != nil {
			m.onFail(n.Name)
		}
	}
}
