// Package geo implements the SQL/MM geospatial support of §II.C.5:
// "complete coverage of location data types such as points, line strings
// and polygons along with the full set of geospatial computation and
// analytic functions as defined by the SQL/MM standard".
//
// Geometries are exchanged with SQL as WKT (well-known text) strings —
// POINT, LINESTRING and POLYGON — and the ST_* function surface
// (registered by RegisterFunctions in the sql package) computes over the
// parsed forms in planar coordinates.
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// GeomKind discriminates geometry types.
type GeomKind uint8

const (
	// KindPoint is a single coordinate.
	KindPoint GeomKind = iota
	// KindLineString is an ordered coordinate sequence.
	KindLineString
	// KindPolygon is a closed outer ring (optionally with holes).
	KindPolygon
)

// String names the kind in WKT style.
func (k GeomKind) String() string {
	return [...]string{"POINT", "LINESTRING", "POLYGON"}[k]
}

// XY is one planar coordinate.
type XY struct {
	X, Y float64
}

// Geometry is a parsed geometry value.
type Geometry struct {
	Kind  GeomKind
	Pts   []XY   // point: 1 entry; linestring: vertices
	Rings [][]XY // polygon: ring 0 = outer shell, rest = holes
}

// --- WKT --------------------------------------------------------------------

// ParseWKT parses POINT/LINESTRING/POLYGON well-known text.
func ParseWKT(s string) (*Geometry, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "POINT"):
		pts, err := parseCoordList(s[len("POINT"):])
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, fmt.Errorf("geo: POINT needs exactly one coordinate")
		}
		return &Geometry{Kind: KindPoint, Pts: pts}, nil
	case strings.HasPrefix(upper, "LINESTRING"):
		pts, err := parseCoordList(s[len("LINESTRING"):])
		if err != nil {
			return nil, err
		}
		if len(pts) < 2 {
			return nil, fmt.Errorf("geo: LINESTRING needs at least two coordinates")
		}
		return &Geometry{Kind: KindLineString, Pts: pts}, nil
	case strings.HasPrefix(upper, "POLYGON"):
		rings, err := parseRings(s[len("POLYGON"):])
		if err != nil {
			return nil, err
		}
		return &Geometry{Kind: KindPolygon, Rings: rings}, nil
	}
	return nil, fmt.Errorf("geo: unsupported WKT %q", truncate(s, 40))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// parseCoordList parses "(x y, x y, ...)".
func parseCoordList(s string) ([]XY, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("geo: expected parenthesized coordinates, got %q", truncate(s, 40))
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	pts := make([]XY, 0, len(parts))
	for _, part := range parts {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return nil, fmt.Errorf("geo: coordinate %q must be 'x y'", part)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("geo: bad x %q", fields[0])
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("geo: bad y %q", fields[1])
		}
		pts = append(pts, XY{X: x, Y: y})
	}
	return pts, nil
}

// parseRings parses "((x y, ...), (x y, ...))".
func parseRings(s string) ([][]XY, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("geo: expected ring list, got %q", truncate(s, 40))
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	var rings [][]XY
	depth := 0
	start := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			if depth == 0 {
				start = i
			}
			depth++
		case ')':
			depth--
			if depth == 0 {
				ring, err := parseCoordList(inner[start : i+1])
				if err != nil {
					return nil, err
				}
				if len(ring) < 4 {
					return nil, fmt.Errorf("geo: ring needs at least 4 coordinates")
				}
				if ring[0] != ring[len(ring)-1] {
					return nil, fmt.Errorf("geo: ring must be closed (first == last)")
				}
				rings = append(rings, ring)
			}
		}
	}
	if depth != 0 || len(rings) == 0 {
		return nil, fmt.Errorf("geo: malformed polygon rings")
	}
	return rings, nil
}

// WKT renders the geometry back to well-known text.
func (g *Geometry) WKT() string {
	var b strings.Builder
	switch g.Kind {
	case KindPoint:
		fmt.Fprintf(&b, "POINT (%s %s)", fl(g.Pts[0].X), fl(g.Pts[0].Y))
	case KindLineString:
		b.WriteString("LINESTRING (")
		writeCoords(&b, g.Pts)
		b.WriteByte(')')
	case KindPolygon:
		b.WriteString("POLYGON (")
		for i, ring := range g.Rings {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			writeCoords(&b, ring)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	}
	return b.String()
}

func writeCoords(b *strings.Builder, pts []XY) {
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", fl(p.X), fl(p.Y))
	}
}

func fl(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// --- measures ----------------------------------------------------------------

// Length returns the linestring's polyline length, a polygon's perimeter,
// or 0 for a point.
func (g *Geometry) Length() float64 {
	switch g.Kind {
	case KindLineString:
		return polylineLength(g.Pts)
	case KindPolygon:
		total := 0.0
		for _, ring := range g.Rings {
			total += polylineLength(ring)
		}
		return total
	default:
		return 0
	}
}

func polylineLength(pts []XY) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += dist(pts[i-1], pts[i])
	}
	return total
}

func dist(a, b XY) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Area returns the polygon's area (shoelace, holes subtracted); 0 for
// other kinds.
func (g *Geometry) Area() float64 {
	if g.Kind != KindPolygon {
		return 0
	}
	area := math.Abs(ringArea(g.Rings[0]))
	for _, hole := range g.Rings[1:] {
		area -= math.Abs(ringArea(hole))
	}
	return area
}

func ringArea(ring []XY) float64 {
	sum := 0.0
	for i := 1; i < len(ring); i++ {
		sum += ring[i-1].X*ring[i].Y - ring[i].X*ring[i-1].Y
	}
	return sum / 2
}

// Centroid returns the geometry's centroid: the point itself, the
// vertex-average for linestrings, the area centroid for polygons.
func (g *Geometry) Centroid() XY {
	switch g.Kind {
	case KindPoint:
		return g.Pts[0]
	case KindLineString:
		var c XY
		for _, p := range g.Pts {
			c.X += p.X
			c.Y += p.Y
		}
		n := float64(len(g.Pts))
		return XY{c.X / n, c.Y / n}
	default:
		ring := g.Rings[0]
		a := ringArea(ring)
		if a == 0 {
			return ring[0]
		}
		var cx, cy float64
		for i := 1; i < len(ring); i++ {
			cross := ring[i-1].X*ring[i].Y - ring[i].X*ring[i-1].Y
			cx += (ring[i-1].X + ring[i].X) * cross
			cy += (ring[i-1].Y + ring[i].Y) * cross
		}
		return XY{cx / (6 * a), cy / (6 * a)}
	}
}

// Envelope returns the geometry's bounding box as a polygon.
func (g *Geometry) Envelope() *Geometry {
	pts := g.Pts
	if g.Kind == KindPolygon {
		pts = nil
		for _, ring := range g.Rings {
			pts = append(pts, ring...)
		}
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	ring := []XY{{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY}, {minX, minY}}
	return &Geometry{Kind: KindPolygon, Rings: [][]XY{ring}}
}

// NumPoints returns the vertex count.
func (g *Geometry) NumPoints() int {
	if g.Kind == KindPolygon {
		n := 0
		for _, ring := range g.Rings {
			n += len(ring)
		}
		return n
	}
	return len(g.Pts)
}

// --- predicates ----------------------------------------------------------------

// containsPoint tests point-in-polygon by ray casting, honoring holes.
// Boundary points count as contained.
func (g *Geometry) containsPoint(p XY) bool {
	if g.Kind != KindPolygon {
		return false
	}
	if !rayCast(g.Rings[0], p) && !onRing(g.Rings[0], p) {
		return false
	}
	for _, hole := range g.Rings[1:] {
		if rayCast(hole, p) && !onRing(hole, p) {
			return false
		}
	}
	return true
}

func rayCast(ring []XY, p XY) bool {
	inside := false
	for i := 1; i < len(ring); i++ {
		a, b := ring[i-1], ring[i]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xint := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xint {
				inside = !inside
			}
		}
	}
	return inside
}

func onRing(ring []XY, p XY) bool {
	for i := 1; i < len(ring); i++ {
		if pointSegDist(p, ring[i-1], ring[i]) < 1e-12 {
			return true
		}
	}
	return false
}

// Contains reports whether g spatially contains other (SQL/MM
// ST_Contains). Supported: polygon⊇point, polygon⊇linestring (all
// vertices inside), polygon⊇polygon (all shell vertices inside).
func (g *Geometry) Contains(other *Geometry) bool {
	if g.Kind != KindPolygon {
		return false
	}
	switch other.Kind {
	case KindPoint:
		return g.containsPoint(other.Pts[0])
	case KindLineString:
		for _, p := range other.Pts {
			if !g.containsPoint(p) {
				return false
			}
		}
		return true
	case KindPolygon:
		for _, p := range other.Rings[0] {
			if !g.containsPoint(p) {
				return false
			}
		}
		return true
	}
	return false
}

// Within is the converse of Contains.
func (g *Geometry) Within(other *Geometry) bool { return other.Contains(g) }

// Intersects reports whether the two geometries share any point
// (point/linestring/polygon combinations via distance-zero or
// containment).
func (g *Geometry) Intersects(other *Geometry) bool {
	if g.Kind == KindPolygon && other.Kind != KindPolygon {
		for _, p := range allPoints(other) {
			if g.containsPoint(p) {
				return true
			}
		}
	}
	if other.Kind == KindPolygon && g.Kind != KindPolygon {
		for _, p := range allPoints(g) {
			if other.containsPoint(p) {
				return true
			}
		}
	}
	if g.Kind == KindPolygon && other.Kind == KindPolygon {
		for _, p := range other.Rings[0] {
			if g.containsPoint(p) {
				return true
			}
		}
		for _, p := range g.Rings[0] {
			if other.containsPoint(p) {
				return true
			}
		}
	}
	return g.Distance(other) < 1e-12
}

func allPoints(g *Geometry) []XY {
	if g.Kind == KindPolygon {
		var pts []XY
		for _, ring := range g.Rings {
			pts = append(pts, ring...)
		}
		return pts
	}
	return g.Pts
}

// --- distance -------------------------------------------------------------------

// pointSegDist is the distance from p to segment ab.
func pointSegDist(p, a, b XY) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	if dx == 0 && dy == 0 {
		return dist(p, a)
	}
	t := ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / (dx*dx + dy*dy)
	t = math.Max(0, math.Min(1, t))
	return dist(p, XY{a.X + t*dx, a.Y + t*dy})
}

// segments returns the geometry's edges.
func segments(g *Geometry) [][2]XY {
	var segs [][2]XY
	addPolyline := func(pts []XY) {
		for i := 1; i < len(pts); i++ {
			segs = append(segs, [2]XY{pts[i-1], pts[i]})
		}
	}
	switch g.Kind {
	case KindLineString:
		addPolyline(g.Pts)
	case KindPolygon:
		for _, ring := range g.Rings {
			addPolyline(ring)
		}
	}
	return segs
}

// Distance returns the minimum planar distance between the two
// geometries (0 when one contains or touches the other).
func (g *Geometry) Distance(other *Geometry) float64 {
	// Containment short-circuit.
	if g.Kind == KindPolygon && other.Kind == KindPoint && g.containsPoint(other.Pts[0]) {
		return 0
	}
	if other.Kind == KindPolygon && g.Kind == KindPoint && other.containsPoint(g.Pts[0]) {
		return 0
	}
	gp, op := allPoints(g), allPoints(other)
	gs, os := segments(g), segments(other)
	min := math.Inf(1)
	// Point-to-point.
	for _, a := range gp {
		for _, b := range op {
			min = math.Min(min, dist(a, b))
		}
	}
	// Point-to-segment both directions.
	for _, p := range gp {
		for _, s := range os {
			min = math.Min(min, pointSegDist(p, s[0], s[1]))
		}
	}
	for _, p := range op {
		for _, s := range gs {
			min = math.Min(min, pointSegDist(p, s[0], s[1]))
		}
	}
	// Crossing segments.
	for _, s1 := range gs {
		for _, s2 := range os {
			if segsIntersect(s1[0], s1[1], s2[0], s2[1]) {
				return 0
			}
		}
	}
	return min
}

func segsIntersect(a, b, c, d XY) bool {
	o := func(p, q, r XY) float64 { return (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X) }
	o1, o2, o3, o4 := o(a, b, c), o(a, b, d), o(c, d, a), o(c, d, b)
	return o1*o2 < 0 && o3*o4 < 0
}

// Buffer returns a polygon approximating all points within radius r of a
// point geometry (SQL/MM ST_Buffer, point support).
func (g *Geometry) Buffer(r float64, segs int) (*Geometry, error) {
	if g.Kind != KindPoint {
		return nil, fmt.Errorf("geo: ST_Buffer supports POINT geometries")
	}
	if segs < 8 {
		segs = 32
	}
	c := g.Pts[0]
	ring := make([]XY, 0, segs+1)
	for i := 0; i < segs; i++ {
		theta := 2 * math.Pi * float64(i) / float64(segs)
		ring = append(ring, XY{c.X + r*math.Cos(theta), c.Y + r*math.Sin(theta)})
	}
	ring = append(ring, ring[0])
	return &Geometry{Kind: KindPolygon, Rings: [][]XY{ring}}, nil
}
