package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, wkt string) *Geometry {
	t.Helper()
	g, err := ParseWKT(wkt)
	if err != nil {
		t.Fatalf("ParseWKT(%q): %v", wkt, err)
	}
	return g
}

func TestParseWKTRoundTrip(t *testing.T) {
	for _, wkt := range []string{
		"POINT (1 2)",
		"POINT (-3.5 4.25)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
	} {
		g := mustParse(t, wkt)
		back := mustParse(t, g.WKT())
		if back.WKT() != g.WKT() {
			t.Errorf("round trip %q -> %q -> %q", wkt, g.WKT(), back.WKT())
		}
	}
	// Case-insensitive keyword, flexible spacing.
	g := mustParse(t, "point(1   2)")
	if g.Kind != KindPoint || g.Pts[0] != (XY{1, 2}) {
		t.Errorf("lenient parse: %+v", g)
	}
}

func TestParseWKTErrors(t *testing.T) {
	for _, wkt := range []string{
		"", "CIRCLE (0 0)", "POINT 1 2", "POINT (1)", "POINT (a b)",
		"LINESTRING (0 0)", "POLYGON ((0 0, 1 0, 1 1))", // too few / unclosed
		"POLYGON ((0 0, 1 0, 1 1, 2 2))", // not closed
	} {
		if _, err := ParseWKT(wkt); err == nil {
			t.Errorf("ParseWKT(%q) should fail", wkt)
		}
	}
}

func TestAreaAndLength(t *testing.T) {
	sq := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	if sq.Area() != 100 {
		t.Errorf("area %v", sq.Area())
	}
	if sq.Length() != 40 {
		t.Errorf("perimeter %v", sq.Length())
	}
	holed := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))")
	if holed.Area() != 96 {
		t.Errorf("holed area %v", holed.Area())
	}
	ls := mustParse(t, "LINESTRING (0 0, 3 4)")
	if ls.Length() != 5 {
		t.Errorf("linestring length %v", ls.Length())
	}
}

func TestContains(t *testing.T) {
	poly := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	in := mustParse(t, "POINT (5 5)")
	out := mustParse(t, "POINT (15 5)")
	edge := mustParse(t, "POINT (10 5)")
	if !poly.Contains(in) || poly.Contains(out) {
		t.Error("point containment")
	}
	if !poly.Contains(edge) {
		t.Error("boundary point should count as contained")
	}
	// Hole excludes.
	holed := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))")
	if holed.Contains(mustParse(t, "POINT (5 5)")) {
		t.Error("hole interior must not be contained")
	}
	if !holed.Contains(mustParse(t, "POINT (2 2)")) {
		t.Error("shell interior outside hole must be contained")
	}
	// Linestring and polygon containment.
	if !poly.Contains(mustParse(t, "LINESTRING (1 1, 9 9)")) {
		t.Error("contained linestring")
	}
	if !poly.Contains(mustParse(t, "POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))")) {
		t.Error("contained polygon")
	}
	if !mustParse(t, "POINT (5 5)").Within(poly) {
		t.Error("within is converse of contains")
	}
}

func TestDistance(t *testing.T) {
	a := mustParse(t, "POINT (0 0)")
	b := mustParse(t, "POINT (3 4)")
	if a.Distance(b) != 5 {
		t.Errorf("point-point %v", a.Distance(b))
	}
	ls := mustParse(t, "LINESTRING (0 10, 10 10)")
	if d := a.Distance(ls); d != 10 {
		t.Errorf("point-line %v", d)
	}
	poly := mustParse(t, "POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))")
	inside := mustParse(t, "POINT (10 10)")
	if d := inside.Distance(poly); d != 0 {
		t.Errorf("inside point distance %v", d)
	}
	if d := a.Distance(poly); math.Abs(d-math.Hypot(5, 5)) > 1e-9 {
		t.Errorf("outside point distance %v", d)
	}
	// Crossing linestrings → 0.
	x1 := mustParse(t, "LINESTRING (0 0, 10 10)")
	x2 := mustParse(t, "LINESTRING (0 10, 10 0)")
	if d := x1.Distance(x2); d != 0 {
		t.Errorf("crossing lines distance %v", d)
	}
}

func TestIntersects(t *testing.T) {
	p1 := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	p2 := mustParse(t, "POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))")
	p3 := mustParse(t, "POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))")
	if !p1.Intersects(p2) {
		t.Error("overlapping polygons")
	}
	if p1.Intersects(p3) {
		t.Error("disjoint polygons")
	}
	if !p1.Intersects(mustParse(t, "POINT (5 5)")) {
		t.Error("polygon-point")
	}
}

func TestCentroidAndEnvelope(t *testing.T) {
	sq := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	c := sq.Centroid()
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-5) > 1e-9 {
		t.Errorf("centroid %+v", c)
	}
	env := mustParse(t, "LINESTRING (1 2, 7 3, 4 9)").Envelope()
	if env.Area() != (7-1)*(9-2) {
		t.Errorf("envelope area %v", env.Area())
	}
}

func TestBuffer(t *testing.T) {
	p := mustParse(t, "POINT (0 0)")
	buf, err := p.Buffer(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Area approaches πr² as segments increase.
	if math.Abs(buf.Area()-math.Pi*100) > 2 {
		t.Errorf("buffer area %v vs %v", buf.Area(), math.Pi*100)
	}
	if !buf.Contains(mustParse(t, "POINT (5 5)")) {
		t.Error("buffer should contain interior point")
	}
	if _, err := mustParse(t, "LINESTRING (0 0, 1 1)").Buffer(1, 8); err == nil {
		t.Error("buffer of linestring unsupported")
	}
}

// Property: a point strictly inside a random rectangle is contained and
// at distance 0; a point beyond the right edge is not contained.
func TestRectContainmentProperty(t *testing.T) {
	f := func(x0, y0 int8, w, h uint8) bool {
		if w == 0 || h == 0 {
			return true
		}
		x, y := float64(x0), float64(y0)
		W, H := float64(w)+1, float64(h)+1
		rect := &Geometry{Kind: KindPolygon, Rings: [][]XY{{
			{x, y}, {x + W, y}, {x + W, y + H}, {x, y + H}, {x, y},
		}}}
		inside := &Geometry{Kind: KindPoint, Pts: []XY{{x + W/2, y + H/2}}}
		outside := &Geometry{Kind: KindPoint, Pts: []XY{{x + W + 1, y}}}
		return rect.Contains(inside) && !rect.Contains(outside) && inside.Distance(rect) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWKTFormat(t *testing.T) {
	g := mustParse(t, "POINT (1.5 -2)")
	if !strings.Contains(g.WKT(), "1.5 -2") {
		t.Errorf("WKT %q", g.WKT())
	}
}
