package wlm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnlimitedManager(t *testing.T) {
	m := New(0)
	if m.Limit() != 0 {
		t.Fatalf("limit %d", m.Limit())
	}
	release := m.Admit()
	release()
	st := m.Stats()
	if st.Admitted != 1 || st.Active != 0 {
		t.Fatalf("%+v", st)
	}
}

func TestConcurrencyCapEnforced(t *testing.T) {
	m := New(3)
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := m.Admit()
			defer release()
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			active.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > 3 {
		t.Fatalf("observed concurrency %d > limit", peak.Load())
	}
	st := m.Stats()
	if st.Admitted != 50 {
		t.Fatalf("admitted %d", st.Admitted)
	}
	if st.Peak > 3 {
		t.Fatalf("manager peak %d", st.Peak)
	}
	if st.Queued == 0 {
		t.Fatal("expected queuing under contention")
	}
	if st.Active != 0 {
		t.Fatalf("active after drain %d", st.Active)
	}
}

func TestAdmitReleaseBalance(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		release := m.Admit()
		release()
	}
	if m.Stats().Active != 0 {
		t.Fatal("unbalanced")
	}
}

func TestClampParallelism(t *testing.T) {
	limited := New(4)
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {4, 4}, {16, 4},
	} {
		if got := limited.ClampParallelism(tc.in); got != tc.want {
			t.Fatalf("ClampParallelism(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	unlimited := New(0)
	if got := unlimited.ClampParallelism(16); got != 16 {
		t.Fatalf("unlimited manager must pass dop through, got %d", got)
	}
	if got := unlimited.ClampParallelism(0); got != 1 {
		t.Fatalf("degenerate dop must clamp to 1, got %d", got)
	}
}
