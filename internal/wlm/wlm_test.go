package wlm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnlimitedManager(t *testing.T) {
	m := New(0)
	if m.Limit() != 0 {
		t.Fatalf("limit %d", m.Limit())
	}
	release, err := m.Admit()
	if err != nil {
		t.Fatal(err)
	}
	release()
	st := m.Stats()
	if st.Admitted != 1 || st.Active != 0 {
		t.Fatalf("%+v", st)
	}
}

func TestConcurrencyCapEnforced(t *testing.T) {
	m := New(3)
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := m.Admit()
			if err != nil {
				t.Error(err)
				return
			}
			defer release()
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			active.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > 3 {
		t.Fatalf("observed concurrency %d > limit", peak.Load())
	}
	st := m.Stats()
	if st.Admitted != 50 {
		t.Fatalf("admitted %d", st.Admitted)
	}
	if st.Peak > 3 {
		t.Fatalf("manager peak %d", st.Peak)
	}
	if st.Queued == 0 {
		t.Fatal("expected queuing under contention")
	}
	if st.Active != 0 {
		t.Fatalf("active after drain %d", st.Active)
	}
}

func TestAdmitReleaseBalance(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		release, err := m.Admit()
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if m.Stats().Active != 0 {
		t.Fatal("unbalanced")
	}
}

func TestClampParallelism(t *testing.T) {
	limited := New(4)
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {4, 4}, {16, 4},
	} {
		if got := limited.ClampParallelism(tc.in); got != tc.want {
			t.Fatalf("ClampParallelism(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	unlimited := New(0)
	if got := unlimited.ClampParallelism(16); got != 16 {
		t.Fatalf("unlimited manager must pass dop through, got %d", got)
	}
	if got := unlimited.ClampParallelism(0); got != 1 {
		t.Fatalf("degenerate dop must clamp to 1, got %d", got)
	}
}

func TestQueueWaitMeasured(t *testing.T) {
	m := New(1)
	r1, err := m.Admit()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r2, err := m.Admit()
		if err != nil {
			t.Error(err)
			return
		}
		r2()
	}()
	// Hold the only slot long enough that the second Admit measurably
	// queues.
	time.Sleep(20 * time.Millisecond)
	r1()
	<-done
	if st := m.Stats(); st.QueueWait <= 0 {
		t.Fatalf("expected nonzero queue wait, got %v", st.QueueWait)
	}
}

func TestRejectionWhenQueueFull(t *testing.T) {
	m := New(1)
	m.SetMaxQueued(1)
	r1, err := m.Admit()
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		r2, err := m.Admit()
		if err == nil {
			r2()
		}
		queued <- err
	}()
	// Wait until the goroutine occupies the single queue slot.
	for m.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Admit(); err != ErrRejected {
		t.Fatalf("expected ErrRejected, got %v", err)
	}
	r1()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", st.Rejected)
	}
}
