// Package wlm is the workload manager: admission control that caps
// concurrent query execution at the level the auto-configuration derives
// from the hardware (paper §II.A lists "workload management
// infrastructure" among the knobs dashDB Local configures automatically).
package wlm

import "sync/atomic"

// Manager gates query admission. A zero concurrency limit disables
// gating entirely.
type Manager struct {
	sem      chan struct{}
	admitted atomic.Uint64
	queued   atomic.Uint64
	peak     atomic.Int64
	active   atomic.Int64
}

// New creates a manager admitting at most maxConcurrent queries at once
// (0 = unlimited).
func New(maxConcurrent int) *Manager {
	m := &Manager{}
	if maxConcurrent > 0 {
		m.sem = make(chan struct{}, maxConcurrent)
	}
	return m
}

// Limit returns the concurrency cap (0 = unlimited).
func (m *Manager) Limit() int {
	if m.sem == nil {
		return 0
	}
	return cap(m.sem)
}

// ClampParallelism caps a query's intra-query parallelism degree by the
// admission limit: when up to L queries run concurrently, giving each of
// them more than L workers would oversubscribe the cores the
// auto-configuration budgeted per admitted query. Degenerate requests
// clamp to 1; an unlimited manager passes the request through.
func (m *Manager) ClampParallelism(dop int) int {
	if dop < 1 {
		return 1
	}
	if m.sem != nil && dop > cap(m.sem) {
		return cap(m.sem)
	}
	return dop
}

// Admit blocks until a slot is free and returns a release function.
// Callers must invoke the release exactly once.
func (m *Manager) Admit() func() {
	m.admitted.Add(1)
	if m.sem == nil {
		m.track()
		return m.untrack
	}
	select {
	case m.sem <- struct{}{}:
	default:
		m.queued.Add(1)
		m.sem <- struct{}{}
	}
	m.track()
	return func() {
		m.untrack()
		<-m.sem
	}
}

func (m *Manager) track() {
	a := m.active.Add(1)
	for {
		p := m.peak.Load()
		if a <= p || m.peak.CompareAndSwap(p, a) {
			return
		}
	}
}

func (m *Manager) untrack() { m.active.Add(-1) }

// Stats reports cumulative admission counters.
type Stats struct {
	Admitted uint64
	Queued   uint64
	Peak     int64
	Active   int64
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Admitted: m.admitted.Load(),
		Queued:   m.queued.Load(),
		Peak:     m.peak.Load(),
		Active:   m.active.Load(),
	}
}
