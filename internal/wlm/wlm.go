// Package wlm is the workload manager: admission control that caps
// concurrent query execution at the level the auto-configuration derives
// from the hardware (paper §II.A lists "workload management
// infrastructure" among the knobs dashDB Local configures automatically).
package wlm

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRejected is returned by Admit when the admission queue is full
// (SetMaxQueued): the workload manager sheds the query instead of letting
// the queue grow without bound.
var ErrRejected = errors.New("wlm: query rejected, admission queue full")

// Manager gates query admission. A zero concurrency limit disables
// gating entirely.
type Manager struct {
	sem       chan struct{}
	admitted  atomic.Uint64
	queued    atomic.Uint64
	rejected  atomic.Uint64
	waitNanos atomic.Int64 // cumulative time queries spent queued
	peak      atomic.Int64
	active    atomic.Int64
	waiting   atomic.Int64 // queries currently queued
	maxQueued atomic.Int64 // 0 = unbounded queue

	gateMu   sync.RWMutex
	memGate  func() bool // reports memory exhaustion; nil = no gate
	memStall atomic.Uint64
}

// New creates a manager admitting at most maxConcurrent queries at once
// (0 = unlimited).
func New(maxConcurrent int) *Manager {
	m := &Manager{}
	if maxConcurrent > 0 {
		m.sem = make(chan struct{}, maxConcurrent)
	}
	return m
}

// Limit returns the concurrency cap (0 = unlimited).
func (m *Manager) Limit() int {
	if m.sem == nil {
		return 0
	}
	return cap(m.sem)
}

// SetMaxQueued bounds the admission queue: an Admit arriving while n
// queries are already waiting is rejected with ErrRejected instead of
// queued. n <= 0 restores the unbounded default.
func (m *Manager) SetMaxQueued(n int) {
	if n < 0 {
		n = 0
	}
	m.maxQueued.Store(int64(n))
}

// SetMemoryGate installs a memory-pressure predicate consulted at
// admission: while it reports true (the memory broker's reservations are
// exhausted), new queries wait instead of piling onto a saturated engine.
// Only arrivals wait — already-admitted queries keep running and release
// their reservations by spilling or finishing, so the gate always clears.
func (m *Manager) SetMemoryGate(gate func() bool) {
	m.gateMu.Lock()
	m.memGate = gate
	m.gateMu.Unlock()
}

// waitMemory polls the memory gate with backoff, bounded so a stuck gate
// degrades to slow admission rather than a hang.
func (m *Manager) waitMemory() {
	m.gateMu.RLock()
	gate := m.memGate
	m.gateMu.RUnlock()
	if gate == nil || !gate() {
		return
	}
	m.memStall.Add(1)
	start := time.Now()
	const maxWait = 2 * time.Second
	for backoff := time.Millisecond; gate() && time.Since(start) < maxWait; {
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	m.waitNanos.Add(int64(time.Since(start)))
}

// ClampParallelism caps a query's intra-query parallelism degree by the
// admission limit: when up to L queries run concurrently, giving each of
// them more than L workers would oversubscribe the cores the
// auto-configuration budgeted per admitted query. Degenerate requests
// clamp to 1; an unlimited manager passes the request through.
func (m *Manager) ClampParallelism(dop int) int {
	if dop < 1 {
		return 1
	}
	if m.sem != nil && dop > cap(m.sem) {
		return cap(m.sem)
	}
	return dop
}

// Admit blocks until a slot is free and returns a release function.
// Callers must invoke the release exactly once. When the admission queue
// is bounded and full, Admit returns ErrRejected without blocking; the
// uncontended path never reads the clock, so admission stays off the
// query hot path.
func (m *Manager) Admit() (func(), error) {
	m.waitMemory()
	if m.sem == nil {
		m.admitted.Add(1)
		m.track()
		return m.untrack, nil
	}
	select {
	case m.sem <- struct{}{}:
	default:
		// Contended: queue (bounded if SetMaxQueued was called) and
		// measure how long admission stalls this query.
		if max := m.maxQueued.Load(); max > 0 && m.waiting.Load() >= max {
			m.rejected.Add(1)
			return nil, ErrRejected
		}
		m.queued.Add(1)
		m.waiting.Add(1)
		start := time.Now()
		m.sem <- struct{}{}
		m.waitNanos.Add(int64(time.Since(start)))
		m.waiting.Add(-1)
	}
	m.admitted.Add(1)
	m.track()
	return func() {
		m.untrack()
		<-m.sem
	}, nil
}

func (m *Manager) track() {
	a := m.active.Add(1)
	for {
		p := m.peak.Load()
		if a <= p || m.peak.CompareAndSwap(p, a) {
			return
		}
	}
}

func (m *Manager) untrack() { m.active.Add(-1) }

// Stats reports cumulative admission counters.
type Stats struct {
	Admitted uint64
	Queued   uint64
	Rejected uint64
	Peak     int64
	Active   int64
	Waiting  int64
	// QueueWait is the cumulative wall time admitted queries spent waiting
	// for a slot or for memory pressure to clear.
	QueueWait time.Duration
	// MemoryStalls counts admissions that waited on the memory gate.
	MemoryStalls uint64
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Admitted:     m.admitted.Load(),
		Queued:       m.queued.Load(),
		Rejected:     m.rejected.Load(),
		Peak:         m.peak.Load(),
		Active:       m.active.Load(),
		Waiting:      m.waiting.Load(),
		QueueWait:    time.Duration(m.waitNanos.Load()),
		MemoryStalls: m.memStall.Load(),
	}
}
