package cloudstore

import (
	"testing"

	"dashdb/internal/core"
	"dashdb/internal/encoding"
	"dashdb/internal/types"
	"dashdb/internal/workload"
)

func loadedStore(t *testing.T) *Store {
	t.Helper()
	s := New("cloud-dw", 8<<20)
	gen := workload.NewBDInsight(5000, 3)
	for _, def := range gen.Tables() {
		if err := s.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Load("product", gen.Products()); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("orders", gen.Orders()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQueryMatchesDashDB(t *testing.T) {
	// The cloud store must be slower, never wrong: cross-check against
	// the dashDB engine on the same data and queries.
	s := loadedStore(t)
	db := core.Open(core.Config{BufferPoolBytes: 16 << 20})
	gen := workload.NewBDInsight(5000, 3)
	for _, def := range gen.Tables() {
		if _, err := db.CreateTable(def.Name, def.Schema); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := db.Table("product")
	p.InsertBatch(gen.Products())
	o, _ := db.Table("orders")
	o.InsertBatch(gen.Orders())
	sess := db.NewSession()
	for _, q := range gen.StreamQueries(0) {
		cloudRows, err := s.Query(&q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		dashRes, err := sess.Exec(q.SQL())
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(cloudRows) != len(dashRes.Rows) {
			t.Fatalf("%s: cloud %d rows, dashdb %d rows", q.Name, len(cloudRows), len(dashRes.Rows))
		}
	}
}

func TestNoSkippingInNaiveScan(t *testing.T) {
	s := loadedStore(t)
	tbl, err := s.table("orders")
	if err != nil {
		t.Fatal(err)
	}
	tbl.ResetStats()
	// A highly selective date predicate: the naive scan must visit every
	// stride (the defining ablation).
	_, err = s.Query(&workload.QuerySpec{
		Table: "orders",
		Preds: []workload.Pred{{Col: "o_id", Op: encoding.OpLT, Val: types.NewInt(10)}},
		Aggs:  []workload.Agg{{Func: "COUNT"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.StridesSkipped != 0 {
		t.Fatalf("cloud store must not skip strides: %+v", st)
	}
	if st.StridesVisited == 0 {
		t.Fatal("no strides visited")
	}
}

func TestDML(t *testing.T) {
	s := loadedStore(t)
	n, err := s.Execute(&workload.Statement{
		Kind:  workload.KindUpdate,
		Table: "orders",
		Preds: []workload.Pred{{Col: "o_id", Op: encoding.OpLT, Val: types.NewInt(10)}},
		Set:   map[string]types.Value{"o_units": types.NewInt(0)},
	})
	if err != nil || n != 10 {
		t.Fatalf("update %d %v", n, err)
	}
	n, err = s.Execute(&workload.Statement{
		Kind:  workload.KindDelete,
		Table: "orders",
		Preds: []workload.Pred{{Col: "o_id", Op: encoding.OpLT, Val: types.NewInt(5)}},
	})
	if err != nil || n != 5 {
		t.Fatalf("delete %d %v", n, err)
	}
	def := &workload.TableDef{Name: "tmp", Schema: types.Schema{{Name: "k", Kind: types.KindInt}}}
	if _, err := s.Execute(&workload.Statement{Kind: workload.KindCreate, Def: def}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(&workload.Statement{Kind: workload.KindDrop, Table: "tmp"}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	s := New("x", 0)
	if _, err := s.Query(&workload.QuerySpec{Table: "ghost"}); err == nil {
		t.Fatal("missing table")
	}
	if err := s.Load("ghost", nil); err != nil {
		// expected
	} else {
		t.Fatal("load into missing table must fail")
	}
	def := workload.TableDef{Name: "t", Schema: types.Schema{{Name: "k", Kind: types.KindInt}}}
	if err := s.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(def); err == nil {
		t.Fatal("duplicate")
	}
}
