// Package cloudstore simulates the unnamed "popular cloud data warehouse"
// of Test 4: an MPP shared-nothing column store with a memory cache that
// lacks the BLU-specific techniques the paper credits for dashDB's
// advantage. Concretely (DESIGN.md's substitution table):
//
//   - columnar storage, but scans DECODE every value and compare in value
//     space (no operating on compressed data, no software SIMD),
//   - no per-stride synopsis (no data skipping),
//   - an LRU page cache (no scan-resistant probabilistic replacement).
//
// It shares the storage substrate (columnar pages) with the dashDB
// engine, so the measured difference isolates exactly those techniques.
package cloudstore

import (
	"fmt"
	"strings"
	"sync"

	"dashdb/internal/bufferpool"
	"dashdb/internal/columnar"
	"dashdb/internal/exec"
	"dashdb/internal/types"
	"dashdb/internal/workload"
)

// Store is one cloud column-store instance.
type Store struct {
	mu     sync.RWMutex
	name   string
	pool   *bufferpool.Pool
	tables map[string]*columnar.Table
	nextID uint32
}

// New creates a store with the given cache budget.
func New(name string, cacheBytes int) *Store {
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	return &Store{
		name:   name,
		pool:   bufferpool.New(cacheBytes, bufferpool.NewLRU()),
		tables: make(map[string]*columnar.Table),
		nextID: 1,
	}
}

// Name identifies the engine in reports.
func (s *Store) Name() string { return s.name }

// CreateTable defines a table (indexes are ignored: column stores have
// none).
func (s *Store) CreateTable(def workload.TableDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := strings.ToLower(def.Name)
	if _, ok := s.tables[k]; ok {
		return fmt.Errorf("cloudstore: table %s already exists", def.Name)
	}
	t := columnar.NewTable(s.nextID, def.Name, def.Schema, columnar.Config{Pool: s.pool})
	s.nextID++
	s.tables[k] = t
	return nil
}

// Load bulk-inserts rows.
func (s *Store) Load(table string, rows []types.Row) error {
	t, err := s.table(table)
	if err != nil {
		return err
	}
	return t.InsertBatch(rows)
}

func (s *Store) table(name string) (*columnar.Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("cloudstore: table %s does not exist", name)
	}
	return t, nil
}

// naiveScanOp adapts columnar.Table.ScanNaive to the executor: the
// decode-then-evaluate access path.
type naiveScanOp struct {
	t     *columnar.Table
	preds []columnar.Pred
	rows  []types.Row
	pos   int
}

func (n *naiveScanOp) Schema() types.Schema { return n.t.Schema() }

func (n *naiveScanOp) Open() error {
	n.rows = n.rows[:0]
	n.pos = 0
	return n.t.ScanNaive(n.preds, func(b *columnar.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			n.rows = append(n.rows, b.Row(i))
		}
		return true
	})
}

func (n *naiveScanOp) Next() (*exec.Chunk, error) {
	if n.pos >= len(n.rows) {
		return nil, nil
	}
	end := n.pos + exec.ChunkSize
	if end > len(n.rows) {
		end = len(n.rows)
	}
	ch := &exec.Chunk{Schema: n.t.Schema(), Rows: n.rows[n.pos:end]}
	n.pos = end
	return ch, nil
}

func (n *naiveScanOp) Close() error {
	n.rows = nil
	return nil
}

// scanFactory is the cloud store's access path.
func (s *Store) scanFactory(table string, preds []workload.Pred) (exec.Operator, types.Schema, error) {
	t, err := s.table(table)
	if err != nil {
		return nil, nil, err
	}
	cp := make([]columnar.Pred, len(preds))
	for i, p := range preds {
		ci := t.Schema().ColumnIndex(p.Col)
		if ci < 0 {
			return nil, nil, fmt.Errorf("cloudstore: column %s not found", p.Col)
		}
		cp[i] = columnar.Pred{Col: ci, Op: p.Op, Val: p.Val}
	}
	return &naiveScanOp{t: t, preds: cp}, t.Schema(), nil
}

// Query executes a read query.
func (s *Store) Query(q *workload.QuerySpec) ([]types.Row, error) {
	plan, err := workload.BuildPlan(q, s.scanFactory)
	if err != nil {
		return nil, err
	}
	return exec.Drain(plan)
}

// Execute runs a mixed-workload statement.
func (s *Store) Execute(st *workload.Statement) (int, error) {
	switch st.Kind {
	case workload.KindSelect, workload.KindWith, workload.KindExplain:
		rows, err := s.Query(st.Query)
		return len(rows), err
	case workload.KindInsert, workload.KindBulkLoad:
		if err := s.Load(st.Table, st.Rows); err != nil {
			return 0, err
		}
		return len(st.Rows), nil
	case workload.KindUpdate:
		t, err := s.table(st.Table)
		if err != nil {
			return 0, err
		}
		preds, err := s.toColumnarPreds(t, st.Preds)
		if err != nil {
			return 0, err
		}
		set := make(map[int]types.Value)
		for col, v := range st.Set {
			ci := t.Schema().ColumnIndex(col)
			if ci < 0 {
				return 0, fmt.Errorf("cloudstore: column %s not found", col)
			}
			set[ci] = v
		}
		return t.UpdateWhere(preds, set)
	case workload.KindDelete:
		t, err := s.table(st.Table)
		if err != nil {
			return 0, err
		}
		preds, err := s.toColumnarPreds(t, st.Preds)
		if err != nil {
			return 0, err
		}
		return t.DeleteWhere(preds)
	case workload.KindCreate:
		return 0, s.CreateTable(*st.Def)
	case workload.KindDrop:
		s.mu.Lock()
		if t, ok := s.tables[strings.ToLower(st.Table)]; ok {
			t.Drop()
			delete(s.tables, strings.ToLower(st.Table))
		}
		s.mu.Unlock()
		return 0, nil
	case workload.KindTruncate:
		t, err := s.table(st.Table)
		if err != nil {
			return 0, err
		}
		return 0, t.Truncate()
	}
	return 0, fmt.Errorf("cloudstore: unsupported statement kind %v", st.Kind)
}

func (s *Store) toColumnarPreds(t *columnar.Table, preds []workload.Pred) ([]columnar.Pred, error) {
	cp := make([]columnar.Pred, len(preds))
	for i, p := range preds {
		ci := t.Schema().ColumnIndex(p.Col)
		if ci < 0 {
			return nil, fmt.Errorf("cloudstore: column %s not found", p.Col)
		}
		cp[i] = columnar.Pred{Col: ci, Op: p.Op, Val: p.Val}
	}
	return cp, nil
}
