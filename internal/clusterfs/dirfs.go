package clusterfs

import (
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Dir-backed mode: when FS.dir is non-empty, every file lives under that
// directory on the real filesystem instead of the in-memory map. This is
// what makes the multi-process MPP deployment real: several dashdb-local
// shard-server processes plus a dashdbctl coordinator all open the same
// directory (the stand-in for the paper's POSIX clustered filesystem
// mounted at /mnt/clusterfs), so a surviving node can adopt a dead
// node's shard file-sets without any data copy — the files were shared
// all along (§II.E).
//
// The in-memory backend remains the default for tests and simulations;
// both modes present the identical FS API.

// OpenDir returns an FS rooted at dir on the host filesystem, creating
// the directory if needed.
func OpenDir(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("clusterfs: empty directory")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("clusterfs: %w", err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("clusterfs: %w", err)
	}
	return &FS{dir: abs}, nil
}

// IsDir reports whether the FS is disk-backed (shared between processes).
func (fs *FS) IsDir() bool { return fs.dir != "" }

// Dir returns the backing directory ("" for the in-memory backend).
func (fs *FS) Dir() string { return fs.dir }

// hostPath maps a clusterfs path to its on-disk location, rejecting
// escapes from the root: the namespace is flat keys like
// "shards/0004/pages/T00000001/C0001/S00000012".
func (fs *FS) hostPath(path string) (string, error) {
	clean := filepath.Clean("/" + path) // forces the path under "/"
	if clean == "/" {
		return "", fmt.Errorf("clusterfs: empty path")
	}
	return filepath.Join(fs.dir, clean), nil
}

func (fs *FS) dirWrite(path string, data []byte) {
	hp, err := fs.hostPath(path)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(hp), 0o755); err != nil {
		return
	}
	// Write-then-rename so concurrent readers never observe a torn file
	// (several server processes share the directory).
	tmp := hp + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, hp); err != nil {
		os.Remove(tmp)
	}
}

func (fs *FS) dirRead(path string) ([]byte, error) {
	hp, err := fs.hostPath(path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(hp)
	if err != nil {
		return nil, fmt.Errorf("clusterfs: %s: no such file", path)
	}
	return data, nil
}

func (fs *FS) dirRemove(path string) {
	if hp, err := fs.hostPath(path); err == nil {
		os.Remove(hp)
	}
}

func (fs *FS) dirRemovePrefix(prefix string) {
	for _, p := range fs.dirList(prefix) {
		fs.dirRemove(p)
	}
}

func (fs *FS) dirList(prefix string) []string {
	var out []string
	root := fs.dir
	filepath.WalkDir(root, func(hp string, d iofs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(hp, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(root, hp)
		if err != nil {
			return nil
		}
		p := filepath.ToSlash(rel)
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

func (fs *FS) dirTotalBytes() int {
	total := 0
	for _, p := range fs.dirList("") {
		if hp, err := fs.hostPath(p); err == nil {
			if fi, err := os.Stat(hp); err == nil {
				total += int(fi.Size())
			}
		}
	}
	return total
}
