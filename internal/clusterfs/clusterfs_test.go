package clusterfs

import (
	"testing"

	"dashdb/internal/page"
)

func TestFileOperations(t *testing.T) {
	fs := New()
	fs.WriteFile("a/b/c", []byte("hello"))
	data, err := fs.ReadFile("a/b/c")
	if err != nil || string(data) != "hello" {
		t.Fatalf("%q %v", data, err)
	}
	if _, err := fs.ReadFile("missing"); err == nil {
		t.Fatal("missing file must error")
	}
	// Write isolation: mutating the caller's slice must not affect the FS.
	buf := []byte("mutable")
	fs.WriteFile("x", buf)
	buf[0] = 'X'
	data, _ = fs.ReadFile("x")
	if string(data) != "mutable" {
		t.Fatal("file aliased caller's buffer")
	}
	fs.Remove("x")
	if _, err := fs.ReadFile("x"); err == nil {
		t.Fatal("removed file readable")
	}
	fs.Remove("x") // idempotent
}

func TestListAndRemovePrefix(t *testing.T) {
	fs := New()
	fs.WriteFile("shards/0001/p1", []byte("1"))
	fs.WriteFile("shards/0001/p2", []byte("2"))
	fs.WriteFile("shards/0002/p1", []byte("3"))
	if got := fs.List("shards/0001/"); len(got) != 2 || got[0] != "shards/0001/p1" {
		t.Fatalf("list %v", got)
	}
	fs.RemovePrefix("shards/0001/")
	if got := fs.List("shards/"); len(got) != 1 {
		t.Fatalf("after remove %v", got)
	}
	if fs.TotalBytes() != 1 {
		t.Fatalf("bytes %d", fs.TotalBytes())
	}
}

func TestStats(t *testing.T) {
	fs := New()
	fs.WriteFile("f", make([]byte, 100))
	fs.ReadFile("f")
	fs.ReadFile("f")
	st := fs.Stats()
	if st.Writes != 1 || st.Reads != 2 || st.BytesWritten != 100 || st.BytesRead != 200 {
		t.Fatalf("%+v", st)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	fs := New()
	fs.WriteFile("f", []byte("v1"))
	snap := fs.Snapshot()
	fs.WriteFile("f", []byte("v2"))
	data, _ := snap.ReadFile("f")
	if string(data) != "v1" {
		t.Fatal("snapshot not isolated")
	}
}

func TestShardStore(t *testing.T) {
	fs := New()
	s0 := fs.ShardStore(0)
	s1 := fs.ShardStore(1)
	id := page.ID{Table: 7, Column: 2, Stride: 3}
	if err := s0.WritePage(id, []byte("shard0")); err != nil {
		t.Fatal(err)
	}
	if err := s1.WritePage(id, []byte("shard1")); err != nil {
		t.Fatal(err)
	}
	// Same page ID in different shards must not collide (private
	// file-sets, §II.E).
	d0, _ := s0.ReadPage(id)
	d1, _ := s1.ReadPage(id)
	if string(d0) != "shard0" || string(d1) != "shard1" {
		t.Fatalf("cross-shard collision: %q %q", d0, d1)
	}
	if err := s0.DeletePages(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s0.ReadPage(id); err == nil {
		t.Fatal("deleted page readable")
	}
	if _, err := s1.ReadPage(id); err != nil {
		t.Fatal("delete leaked across shards")
	}
}
