// Package clusterfs simulates the POSIX-compliant clustered filesystem
// dashDB Local requires at /mnt/clusterfs (paper §II.A, §II.E): a shared
// namespace every node can reach, holding one private file-set per data
// shard. Because shard file-sets live on the shared filesystem and are
// not bound to a host or container, shards can be re-associated between
// nodes (HA failover, elastic grow/shrink) without copying data, and the
// whole deployment can be moved by copying the filesystem (§II.E's
// portability/DR story).
package clusterfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dashdb/internal/columnar"
	"dashdb/internal/page"
)

// Stats counts filesystem traffic.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// FS is the shared filesystem: a flat namespace of files. The default
// backend is an in-memory map (simulation and tests); dir-backed
// instances from OpenDir store files on disk so several processes can
// share one namespace (see dirfs.go).
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
	dir   string // non-empty selects the disk backend

	reads        atomic.Uint64
	writes       atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// New returns an empty in-memory filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte)}
}

// WriteFile stores data under path (full replace, like O_TRUNC).
func (fs *FS) WriteFile(path string, data []byte) {
	fs.writes.Add(1)
	fs.bytesWritten.Add(uint64(len(data)))
	if fs.dir != "" {
		fs.dirWrite(path, data)
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := append([]byte(nil), data...)
	fs.files[path] = cp
}

// ReadFile returns the file's contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	if fs.dir != "" {
		data, err := fs.dirRead(path)
		if err != nil {
			return nil, err
		}
		fs.reads.Add(1)
		fs.bytesRead.Add(uint64(len(data)))
		return data, nil
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("clusterfs: %s: no such file", path)
	}
	fs.reads.Add(1)
	fs.bytesRead.Add(uint64(len(data)))
	return data, nil
}

// Remove deletes a file; removing a missing file is not an error (like
// rm -f).
func (fs *FS) Remove(path string) {
	if fs.dir != "" {
		fs.dirRemove(path)
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}

// RemovePrefix deletes every file under the prefix (like rm -rf dir/).
func (fs *FS) RemovePrefix(prefix string) {
	if fs.dir != "" {
		fs.dirRemovePrefix(prefix)
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			delete(fs.files, p)
		}
	}
}

// List returns the sorted paths under a prefix.
func (fs *FS) List(prefix string) []string {
	if fs.dir != "" {
		return fs.dirList(prefix)
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the filesystem occupancy.
func (fs *FS) TotalBytes() int {
	if fs.dir != "" {
		return fs.dirTotalBytes()
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total := 0
	for _, d := range fs.files {
		total += len(d)
	}
	return total
}

// Stats returns a traffic snapshot.
func (fs *FS) Stats() Stats {
	return Stats{
		Reads:        fs.reads.Load(),
		Writes:       fs.writes.Load(),
		BytesRead:    fs.bytesRead.Load(),
		BytesWritten: fs.bytesWritten.Load(),
	}
}

// Snapshot deep-copies the entire filesystem — the paper's portability
// mechanism ("by copying/moving the clustered file system ... you can now
// docker run and deploy quick and easily against an entirely new set of
// hardware").
func (fs *FS) Snapshot() *FS {
	if fs.dir != "" {
		// Disk-backed namespaces snapshot into memory: the portable unit
		// is the file contents, not the directory.
		clone := New()
		for _, p := range fs.dirList("") {
			if data, err := fs.dirRead(p); err == nil {
				clone.files[p] = data
			}
		}
		return clone
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	clone := New()
	for p, d := range fs.files {
		clone.files[p] = append([]byte(nil), d...)
	}
	return clone
}

// ShardStore returns a columnar.PageStore backed by this filesystem under
// the shard's private file-set directory. Each shard has its own file set
// that is not shared (§II.E).
func (fs *FS) ShardStore(shardID int) columnar.PageStore {
	return &shardStore{fs: fs, prefix: fmt.Sprintf("shards/%04d/pages/", shardID)}
}

type shardStore struct {
	fs     *FS
	prefix string
}

func (s *shardStore) pagePath(id page.ID) string {
	return fmt.Sprintf("%sT%08d/C%04d/S%08d", s.prefix, id.Table, id.Column, id.Stride)
}

func (s *shardStore) WritePage(id page.ID, data []byte) error {
	s.fs.WriteFile(s.pagePath(id), data)
	return nil
}

func (s *shardStore) ReadPage(id page.ID) ([]byte, error) {
	return s.fs.ReadFile(s.pagePath(id))
}

func (s *shardStore) DeletePage(id page.ID) error {
	s.fs.Remove(s.pagePath(id))
	return nil
}

func (s *shardStore) DeletePages(table uint32) error {
	s.fs.RemovePrefix(fmt.Sprintf("%sT%08d/", s.prefix, table))
	return nil
}
