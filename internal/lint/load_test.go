package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

func TestLoadRepoPackage(t *testing.T) {
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("./internal/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "telemetry" {
		t.Fatalf("package name = %q", p.Name)
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types == nil || p.Types.Scope().Lookup("ScanStats") == nil {
		t.Fatal("ScanStats not resolved")
	}
}

func TestLoadPatternAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo load in -short mode")
	}
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("./internal/exec", "./internal/vec")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) != 0 {
			t.Fatalf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
}
