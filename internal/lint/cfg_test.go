package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody wraps a statement list in a function and builds its CFG.
// The builder is purely syntactic, so no type information is needed.
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// TestCFGShapes pins the block/edge structure the dataflow analyzers
// depend on for the constructs most likely to harbor builder bugs:
// short-circuit conditions, labeled breaks, select with default,
// defer in loops, fallthrough, goto, and panic terminators. Expected
// graphs are written in CFG.String's canonical "index kind -> succs"
// form, so a failure shows exactly which edge went missing.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "short-circuit and",
			body: `
				if a && b {
					x()
				}
				y()`,
			want: `
				0 entry -> 3 4
				1 exit ->
				2 if.then -> 3
				3 if.done -> 1
				4 cond.and -> 2 3`,
		},
		{
			name: "short-circuit or with else",
			body: `
				if a || b {
					x()
				} else {
					z()
				}
				y()`,
			want: `
				0 entry -> 2 5
				1 exit ->
				2 if.then -> 3
				3 if.done -> 1
				4 if.else -> 3
				5 cond.or -> 2 4`,
		},
		{
			name: "labeled break from nested loop",
			body: `
			outer:
				for i := 0; i < n; i++ {
					for {
						break outer
					}
				}
				done()`,
			want: `
				0 entry -> 2
				1 exit ->
				2 label.outer -> 3
				3 for.head -> 4 5
				4 for.body -> 7
				5 for.done -> 1
				6 for.post -> 3
				7 for.head -> 8
				8 for.body -> 5
				9 for.done -> 6`,
		},
		{
			name: "select with default",
			body: `
				select {
				case <-ch:
					a()
				default:
					b()
				}
				c()`,
			want: `
				0 entry -> 3 4
				1 exit ->
				2 select.done -> 1
				3 select.case -> 2
				4 select.default -> 2`,
		},
		{
			name: "defer in range loop",
			body: `
				for _, x := range xs {
					defer release(x)
				}`,
			want: `
				0 entry -> 2
				1 exit ->
				2 range.head -> 3 4
				3 range.body -> 2
				4 range.done -> 1`,
		},
		{
			name: "switch with fallthrough and default",
			body: `
				switch x {
				case 1:
					a()
					fallthrough
				case 2:
					b()
				default:
					c()
				}
				d()`,
			want: `
				0 entry -> 3 4 5
				1 exit ->
				2 switch.done -> 1
				3 switch.case -> 4
				4 switch.case -> 2
				5 switch.default -> 2`,
		},
		{
			name: "switch without default falls through to done",
			body: `
				switch x {
				case 1:
					a()
				}
				d()`,
			want: `
				0 entry -> 2 3
				1 exit ->
				2 switch.done -> 1
				3 switch.case -> 2`,
		},
		{
			name: "continue inside switch targets the loop",
			body: `
				for i := 0; i < n; i++ {
					switch {
					case i == 0:
						continue
					}
					body()
				}`,
			want: `
				0 entry -> 2
				1 exit ->
				2 for.head -> 3 4
				3 for.body -> 6 7
				4 for.done -> 1
				5 for.post -> 2
				6 switch.done -> 5
				7 switch.case -> 5`,
		},
		{
			name: "forward goto",
			body: `
				if skip {
					goto end
				}
				work()
			end:
				finish()`,
			want: `
				0 entry -> 2 3
				1 exit ->
				2 if.then -> 4
				3 if.done -> 4
				4 label.end -> 1`,
		},
		{
			name: "panic terminates the path",
			body: `
				if bad {
					panic("x")
				}
				ok()`,
			want: `
				0 entry -> 2 3
				1 exit ->
				2 if.then ->
				3 if.done -> 1`,
		},
		{
			name: "type switch",
			body: `
				switch v.(type) {
				case int:
					a()
				case string:
					b()
				}
				c()`,
			want: `
				0 entry -> 2 3 4
				1 exit ->
				2 typeswitch.done -> 1
				3 typeswitch.case -> 2
				4 typeswitch.case -> 2`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			got := strings.TrimSpace(g.String())
			want := normalizeGraph(tc.want)
			if got != want {
				t.Fatalf("CFG mismatch\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// normalizeGraph strips the indentation the test table uses for
// readability.
func normalizeGraph(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n")
}
