package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Whole-program static call graph over the loaded module packages. The
// hotpathcg analyzer needs transitivity that per-package AST matching
// cannot give: a //dashdb:hotpath kernel is only as allocation-free as
// everything it calls, and after PR 6/7 the kernels lean on helpers in
// internal/bitpack and internal/encoding that the local hotpath analyzer
// never looks inside. Edges come from go/types call resolution; calls
// through an interface method are widened to every in-module named type
// that implements the interface (sound for the module, which is the
// scope lint guards). Generic instantiations are canonicalized with
// types.Func.Origin so one node represents all instantiations.

// cgHazard is one hot-path hazard found directly inside a function body:
// a banned-stdlib call (the hotpathBanned table — allocating formatters,
// timer syscalls, reflection) or a sync.Mutex/RWMutex lock acquisition.
// A banned call counts even inside a panic guard: fmt.Sprintf on an
// abort path never runs, but its presence pushes the function past the
// compiler's inlining budget, so the hot loop pays an outlined call per
// element anyway.
type cgHazard struct {
	pos  token.Pos
	desc string
}

// cgEdge is one call site: callee plus where and how it is called.
// guarded means the call sits under some conditional (if/switch/select/
// loop), which matters only for abort stubs: a guarded call to a
// panics-immediately helper is a deliberate bounds check, an unguarded
// one means the "hot" path can never complete.
type cgEdge struct {
	to      *types.Func
	pos     token.Pos
	guarded bool
}

// cgNode is one function in the call graph.
type cgNode struct {
	fn      *types.Func
	pkg     *Package
	decl    *ast.FuncDecl
	hot     bool // carries //dashdb:hotpath
	cold    bool // carries //dashdb:coldpath: declared off the steady-state path
	aborts  bool // body starts with panic: an abort/unimplemented stub
	edges   []cgEdge
	hazards []cgHazard
}

type callGraph struct {
	nodes map[*types.Func]*cgNode
}

// node returns the graph node for fn (nil for out-of-module functions).
func (g *callGraph) node(fn *types.Func) *cgNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}}

	// Pass 1: one node per function declaration with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				aborts := false
				if len(fd.Body.List) > 0 {
					if es, ok := fd.Body.List[0].(*ast.ExprStmt); ok && isPanicCall(es.X) {
						aborts = true
					}
				}
				g.nodes[fn.Origin()] = &cgNode{
					fn:     fn.Origin(),
					pkg:    pkg,
					decl:   fd,
					hot:    hasDirective(fd.Doc, "hotpath"),
					cold:   hasDirective(fd.Doc, "coldpath"),
					aborts: aborts,
				}
			}
		}
	}

	impl := collectImplementers(pkgs)

	// Pass 2: edges and direct hazards.
	for _, n := range g.nodes {
		cw := &callWalker{node: n, impl: impl, edges: map[*types.Func]cgEdge{}}
		cw.stmts(n.decl.Body.List, false)
		n.edges = make([]cgEdge, 0, len(cw.edges))
		for _, e := range cw.edges {
			n.edges = append(n.edges, e)
		}
		sort.Slice(n.edges, func(i, j int) bool {
			return n.edges[i].to.FullName() < n.edges[j].to.FullName()
		})
	}
	return g
}

// implementerSet indexes in-module named types for interface widening.
type implementerSet struct {
	named []*types.Named
}

// collectImplementers gathers every named (non-interface) type declared
// in the loaded packages.
func collectImplementers(pkgs []*Package) *implementerSet {
	s := &implementerSet{}
	seen := map[*types.TypeName]bool{}
	for _, pkg := range pkgs {
		for _, obj := range pkg.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() || seen[tn] {
				continue
			}
			seen[tn] = true
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			s.named = append(s.named, named)
		}
	}
	return s
}

// widen returns the concrete in-module methods an interface-method call
// can dispatch to.
func (s *implementerSet) widen(iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, named := range s.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn.Origin())
		}
	}
	return out
}

// callWalker records call edges and direct hazards for one function
// body, tracking whether each call site sits under a conditional.
// Function literals are skipped: a closure is not executed by defining
// it, and goroutine bodies run off the caller's hot path — attributing
// their calls to the enclosing kernel would make every parallel driver a
// false positive.
type callWalker struct {
	node  *cgNode
	impl  *implementerSet
	edges map[*types.Func]cgEdge
}

func (w *callWalker) stmts(list []ast.Stmt, guarded bool) {
	for _, s := range list {
		w.stmt(s, guarded)
	}
}

func (w *callWalker) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, guarded)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.expr(s.Cond, guarded)
		w.stmts(s.Body.List, true)
		if s.Else != nil {
			w.stmt(s.Else, true)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		if s.Cond != nil {
			w.expr(s.Cond, true)
		}
		if s.Post != nil {
			w.stmt(s.Post, true)
		}
		w.stmts(s.Body.List, true)
	case *ast.RangeStmt:
		w.expr(s.X, guarded)
		w.stmts(s.Body.List, true)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		if s.Tag != nil {
			w.expr(s.Tag, guarded)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, true)
			}
			w.stmts(cc.Body, true)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.stmt(s.Assign, guarded)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, true)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, true)
			}
			w.stmts(cc.Body, true)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, guarded)
	case *ast.ExprStmt:
		w.expr(s.X, guarded)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, guarded)
		}
		for _, e := range s.Lhs {
			w.expr(e, guarded)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, guarded)
		}
	case *ast.DeferStmt:
		// Deferred calls run at return, off the per-element loop; the
		// call expression's arguments still evaluate here.
		for _, a := range s.Call.Args {
			w.expr(a, guarded)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, guarded)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt, *ast.BranchStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(*ast.CallExpr); ok {
				w.call(e, guarded)
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return true
		})
	}
}

// expr scans one expression subtree for calls at the given guardedness.
func (w *callWalker) expr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.call(call, guarded)
			// Arguments are visited by the same Inspect walk.
		}
		return true
	})
}

// call resolves one call expression into an edge and/or hazard.
func (w *callWalker) call(call *ast.CallExpr, guarded bool) {
	info := w.node.pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			w.addEdge(fn.Origin(), call.Pos(), guarded)
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		if h := bannedCallHazard(call, fn); h != nil {
			w.node.hazards = append(w.node.hazards, *h)
		}
		if h := lockHazard(call, fun, fn, info); h != nil {
			w.node.hazards = append(w.node.hazards, *h)
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				for _, m := range w.impl.widen(iface, fn.Name()) {
					w.addEdge(m, call.Pos(), guarded)
				}
				return
			}
		}
		w.addEdge(fn.Origin(), call.Pos(), guarded)
	}
}

// addEdge records a call edge, preferring an unguarded site when the
// same callee is reached both ways.
func (w *callWalker) addEdge(fn *types.Func, pos token.Pos, guarded bool) {
	if fn == nil {
		return
	}
	old, ok := w.edges[fn]
	if !ok || (old.guarded && !guarded) {
		w.edges[fn] = cgEdge{to: fn, pos: pos, guarded: guarded}
	}
}

// bannedCallHazard classifies calls into the hotpathBanned table
// (shared with the local hotpath analyzer, so the two stay consistent).
func bannedCallHazard(call *ast.CallExpr, fn *types.Func) *cgHazard {
	if fn.Pkg() == nil {
		return nil
	}
	banned, ok := hotpathBanned[fn.Pkg().Path()]
	if !ok {
		return nil
	}
	if len(banned) != 0 && !banned[fn.Name()] {
		return nil
	}
	return &cgHazard{
		pos:  call.Pos(),
		desc: fmt.Sprintf("calls %s.%s (allocates, and defeats inlining even on a panic-only path)", fn.Pkg().Name(), fn.Name()),
	}
}

// lockHazard classifies sync.Mutex / sync.RWMutex acquisitions.
func lockHazard(call *ast.CallExpr, sel *ast.SelectorExpr, fn *types.Func, info *types.Info) *cgHazard {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return nil
	}
	recv := deref(info.TypeOf(sel.X))
	name := typeName(recv)
	if name != "sync.Mutex" && name != "sync.RWMutex" {
		return nil
	}
	return &cgHazard{
		pos:  call.Pos(),
		desc: fmt.Sprintf("acquires %s via %s", name, fn.Name()),
	}
}
