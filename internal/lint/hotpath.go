package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerHotPath bans allocation- and syscall-heavy calls inside functions
// annotated //dashdb:hotpath. The annotation marks per-row / per-stride
// kernels (columnar stride decode, SWAR predicate loops, vector kernels,
// operator inner loops): one stray time.Now or fmt.Sprintf there runs
// millions of times per query and dominates the profile. Banned callees are
// matched by package so aliased imports cannot dodge the check.
var AnalyzerHotPath = &Analyzer{
	Name:    "hotpath",
	Doc:     "//dashdb:hotpath functions must not call time.Now/Since, fmt/log formatters, or reflect",
	Collect: collectHotPath,
	Run:     runHotPath,
}

// hotpathBanned maps package path -> banned function names; an empty set
// bans every exported function in the package.
var hotpathBanned = map[string]map[string]bool{
	"time":    {"Now": true, "Since": true, "Until": true},
	"fmt":     {},
	"log":     {},
	"reflect": {},
	"sort":    {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
}

func collectHotPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			pass.Facts.HotPath[pass.Pkg.Path+"."+funcKey(fd)] = true
		}
	}
}

func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func runHotPath(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "hotpath") || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				banned, ok := hotpathBanned[obj.Pkg().Path()]
				if !ok {
					return true
				}
				if len(banned) == 0 || banned[obj.Name()] {
					pass.Reportf(call.Pos(),
						"hotpath function %s calls %s.%s: per-row/per-stride loops must stay allocation- and syscall-free (hoist it out of the kernel or drop the //dashdb:hotpath annotation)",
						strings.TrimSuffix(funcKey(fd), "."), obj.Pkg().Name(), obj.Name())
				}
				return true
			})
		}
	}
}
