package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the intra-procedural control-flow graph builder underneath
// the dataflow analyzers (mustrelease, lockpair). The single-pass AST
// matchers that came before it could state "this call is forbidden here";
// a CFG lets an analyzer state "this acquire does not reach a release on
// every path", which is the shape of every leak the snapshot/memory
// protocols can suffer. The builder is deliberately simple: basic blocks
// of ast.Node, explicit edges for every Go control construct the engine
// uses (if/for/range/switch/type-switch/select, labeled break/continue,
// goto, short-circuit && and ||), return edges into one synthetic exit
// block, and panic treated as a non-returning terminator so error paths
// that abandon the frame do not produce leak noise.

// Block is one basic block: nodes execute in order, then control moves to
// exactly one successor. Kind is a stable human-readable tag ("if.then",
// "for.body", ...) used by diagnostics and the structural tests.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// addSucc wires a CFG edge a -> b (idempotent).
func (b *Block) addSucc(s *Block) {
	for _, old := range b.Succs {
		if old == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// CFG is one function body's control-flow graph. Entry has no
// predecessors; Exit collects every return edge and the implicit fall-off
// at the end of the body. Panic terminators get no edge to Exit: a frame
// abandoned by panic cannot "leak on return".
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// String renders the graph as "index kind -> succ-indexes" lines, sorted
// by block index — the canonical form the structural tests assert on.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "%d %s ->", b.Index, b.Kind)
		for _, s := range succs {
			fmt.Fprintf(&sb, " %d", s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg: &CFG{},
		labels: map[string]*labelInfo{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit)
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string // "" for unlabeled
	breakTo   *Block
	contTo    *Block // nil for switch/select (continue skips them)
}

// labelInfo tracks a declared label: goto lands on target; forward gotos
// that precede the declaration are recorded as pending sources.
type labelInfo struct {
	target  *Block
	pending []*Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*labelInfo

	// nextLabel is set by a LabeledStmt so the immediately following
	// loop/switch/select registers the labeled break/continue frame.
	nextLabel string

	// fallTo is the next case clause's body block while building a
	// switch clause, the target of a fallthrough statement.
	fallTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge cur -> to, unless cur is already terminated.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.cur.addSucc(to)
	}
}

// startBlock makes blk the current block.
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// add appends a node to the current block (starting an unreachable block
// if control already left, so trailing dead code still parses into the
// graph without edges).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate marks the current path as ended (return/branch/panic).
func (b *cfgBuilder) terminate() { b.cur = nil }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label set by a LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
		b.terminate()
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// panic abandons the frame: no edge to exit, so "leaked on
			// this path" analyses do not fire on deliberate aborts.
			b.terminate()
		}
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt,
		// EmptyStmt: straight-line nodes.
		b.add(s)
	}
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// cond builds the evaluation of a boolean condition with explicit
// short-circuit edges: control reaches t when the condition is true and f
// when it is false, and the right operand of && / || only evaluates on
// the paths the language evaluates it.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond.and")
			b.cond(x.X, rhs, f)
			b.startBlock(rhs)
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.or")
			b.cond(x.X, rhs, t)
			b.startBlock(rhs)
			b.cond(x.Y, t, f)
			return
		}
	}
	b.add(e)
	b.jump(t)
	b.jump(f)
	b.terminate()
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if are goto-only; frame handled by labeledStmt
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.cond(s.Cond, then, els)
		b.startBlock(els)
		b.stmt(s.Else)
		b.jump(done)
	} else {
		b.cond(s.Cond, then, done)
	}
	b.startBlock(then)
	b.stmtList(s.Body.List)
	b.jump(done)
	b.startBlock(done)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jump(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.cond(s.Cond, body, done)
	} else {
		b.jump(body)
		b.terminate()
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: done, contTo: post})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(post)
	if s.Post != nil {
		b.startBlock(post)
		b.add(s.Post)
		b.jump(head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.startBlock(done)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(head)
	b.startBlock(head)
	// The range clause only: X evaluation plus key/value binding. The
	// body's statements land in their own block, so analyzers never see
	// them twice.
	b.add(s.X)
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	b.jump(body)
	b.jump(done)
	b.frames = append(b.frames, loopFrame{label: label, breakTo: done, contTo: head})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	b.jump(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.startBlock(done)
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(label, s.Body.List, "switch")
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(label, s.Body.List, "typeswitch")
}

// caseClauses builds switch/type-switch dispatch: the head fans out to
// every case body (and to done when no default exists), each body falls
// to done, and fallthrough chains to the next body in source order.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, kind string) {
	head := b.cur
	done := b.newBlock(kind + ".done")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		tag := kind + ".case"
		if cc.List == nil {
			tag = kind + ".default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(tag)
		if head != nil {
			head.addSucc(bodies[i])
		}
	}
	if !hasDefault && head != nil {
		head.addSucc(done)
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: done})
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.startBlock(bodies[i])
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(bodies) {
			b.fallTo = bodies[i+1]
		} else {
			b.fallTo = nil
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.fallTo = nil
	b.frames = b.frames[:len(b.frames)-1]
	b.startBlock(done)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, loopFrame{label: label, breakTo: done})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		tag := "select.case"
		if cc.Comm == nil {
			tag = "select.default"
		}
		body := b.newBlock(tag)
		if head != nil {
			head.addSucc(body)
		}
		b.startBlock(body)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	// A select with no cases blocks forever; with cases, control only
	// leaves through a clause, so the head gets no direct edge to done.
	b.startBlock(done)
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	target := b.newBlock("label." + name)
	li.target = target
	for _, src := range li.pending {
		src.addSucc(target)
	}
	li.pending = nil
	b.jump(target)
	b.startBlock(target)
	b.nextLabel = name
	b.stmt(s.Stmt)
	b.nextLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if s.Label == nil || f.label == s.Label.Name {
				b.jump(f.breakTo)
				break
			}
		}
		b.terminate()
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.contTo == nil {
				continue // switch/select: continue refers to the loop outside
			}
			if s.Label == nil || f.label == s.Label.Name {
				b.jump(f.contTo)
				break
			}
		}
		b.terminate()
	case token.GOTO:
		name := s.Label.Name
		li := b.labels[name]
		if li == nil {
			li = &labelInfo{}
			b.labels[name] = li
		}
		if li.target != nil {
			b.jump(li.target)
		} else if b.cur != nil {
			li.pending = append(li.pending, b.cur)
		}
		b.terminate()
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.jump(b.fallTo)
		}
		b.terminate()
	}
}
