package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerMustRelease is the dataflow leak checker for the engine's
// acquire/release protocols. An epoch pin that misses its Release on one
// early-error path permanently blocks reclamation for the whole table
// (PR 8's deferred page drain waits on the pin count); a Reservation
// that misses Close leaves its grant charged against the heap broker
// forever, eventually stalling WLM admission; a spill file that misses
// Close survives as an orphan on disk. The protocol table below declares
// each acquire method and its release; the analyzer builds the CFG of
// every function and solves a forward may-analysis: if an acquired value
// can reach function exit unreleased on ANY path, that is a finding.
//
// Ownership transfer is recognized as an escape and ends tracking:
// returning the value, storing it into a struct/slice/map, passing it to
// another call, capturing it in a closure — in all of those the release
// obligation moves with the value. `defer v.Release()` discharges the
// obligation immediately (defer runs on every exit path), and a path
// that ends in panic is exempt (the frame is abandoned deliberately).
var AnalyzerMustRelease = &Analyzer{
	Name:  "mustrelease",
	Doc:   "protocol-acquired values (epoch pins, snapshots, reservations, spill files) must reach their release on every path",
	Match: matchPath("internal/"),
	Run:   runMustRelease,
}

// protoEntry declares one acquire/release protocol: calling
// <recvType>.<acquire> on a receiver declared in a package whose import
// path ends in pkgSuffix yields a value that must have <release> called
// on it (or escape) before function exit.
type protoEntry struct {
	pkgSuffix string
	recvType  string
	acquire   string
	release   string
	what      string
}

// protocols is the declared protocol table. The bufferpool is absent
// deliberately: its Pool hands out copies via Get/Evict and has no pin
// handle to leak. New protocols are one line each.
var protocols = []protoEntry{
	{"internal/snapshot", "Manager", "Pin", "Release", "epoch pin"},
	{"internal/columnar", "Table", "Snapshot", "Release", "table snapshot"},
	{"internal/mem", "Governor", "Acquire", "Close", "heap reservation"},
	{"internal/mem", "Broker", "Reserve", "Close", "heap reservation"},
	{"internal/mem", "Reservation", "NewSpillFile", "Close", "spill file"},
	{"internal/shardrpc", "Pool", "Get", "Release", "pooled shard connection"},
}

// protoFor resolves a method call to its protocol entry, matching the
// epochpin idiom: real packages by path suffix, fixtures by the
// "fixture/" prefix so testdata stand-ins exercise the same code.
func protoFor(fn *types.Func) *protoEntry {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for i := range protocols {
		p := &protocols[i]
		if fn.Name() != p.acquire || obj.Name() != p.recvType {
			continue
		}
		if strings.HasSuffix(obj.Pkg().Path(), p.pkgSuffix) ||
			strings.HasPrefix(obj.Pkg().Path(), "fixture/") {
			return p
		}
	}
	return nil
}

const mrAcquired uint8 = 1

func runMustRelease(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMustRelease(pass, fd)
		}
	}
}

// acqSite is one tracked acquisition: the assignment statement that
// binds the acquired value to a local variable, plus the error variable
// bound alongside it (NewSpillFile returns (*SpillFile, error) — on the
// path that returns that error, the resource is nil and owes nothing).
type acqSite struct {
	proto  *protoEntry
	obj    types.Object
	errObj types.Object
	pos    token.Pos
}

func checkMustRelease(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pre-pass: find every protocol acquire in the body and classify its
	// binding. Only a plain `v := recv.Acquire(...)` (or var decl) starts
	// tracking; a discarded result is reported immediately; any other
	// context (argument, return value, composite literal field, struct
	// field or slice element store) is an ownership transfer at birth
	// and stays out of scope.
	acqByStmt := map[ast.Node][]acqSite{}
	any := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			proto, call := acquireCall(info, n.Rhs[0])
			if proto == nil {
				return true
			}
			obj, errObj, transferred := classifyLHS(info, n.Lhs)
			if transferred {
				return true
			}
			if obj == nil {
				pass.Reportf(call.Pos(),
					"%s from %s.%s is discarded: the result must be released via %s (or bound so a later release can run)",
					proto.what, proto.recvType, proto.acquire, proto.release)
				return true
			}
			acqByStmt[n] = append(acqByStmt[n], acqSite{proto: proto, obj: obj, errObj: errObj, pos: call.Pos()})
			any = true
		case *ast.ExprStmt:
			if proto, call := acquireCall(info, n.X); proto != nil {
				pass.Reportf(call.Pos(),
					"%s from %s.%s is discarded: the result must be released via %s (or bound so a later release can run)",
					proto.what, proto.recvType, proto.acquire, proto.release)
			}
		}
		return true
	})
	if !any {
		return
	}

	// Side tables: what each tracked object is, and which tracked
	// objects an error return absolves.
	whatOf := map[types.Object]*protoEntry{}
	errOf := map[types.Object][]types.Object{}
	for _, sites := range acqByStmt {
		for _, s := range sites {
			whatOf[s.obj] = s.proto
			if s.errObj != nil {
				errOf[s.errObj] = append(errOf[s.errObj], s.obj)
			}
		}
	}

	g := buildCFG(fd.Body)
	transfer := func(b *Block, in dfState) dfState {
		for _, n := range b.Nodes {
			mrTransferNode(info, n, in, acqByStmt, whatOf, errOf)
		}
		return in
	}
	in := solveForward(g, transfer)

	// Anything still acquired in the exit block's fixpoint in-state can
	// reach a return unreleased on some path.
	exit := in[g.Exit]
	var leaks []acqSite
	for k, v := range exit {
		obj, ok := k.(types.Object)
		if !ok || v.bits&mrAcquired == 0 {
			continue
		}
		leaks = append(leaks, acqSite{proto: whatOf[obj], obj: obj, pos: v.pos})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pass.Reportf(l.pos,
			"%s %q may not be released on every path to return: call %s, defer it right after acquiring, or transfer ownership",
			l.proto.what, l.obj.Name(), l.proto.release)
	}
}

// acquireCall matches e against the protocol table, returning the entry
// and the call node when e is a protocol acquire.
func acquireCall(info *types.Info, e ast.Expr) (*protoEntry, *ast.CallExpr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, nil
	}
	return protoFor(fn), call
}

// classifyLHS decides what an acquire assignment does with the result:
//
//   - any non-identifier target (struct field, slice/map element) means
//     ownership transferred at birth — transferred=true, nothing tracked;
//   - otherwise obj is the local receiving the resource (first plain,
//     non-blank, non-error identifier) and errObj the error bound next
//     to it;
//   - obj == nil with transferred == false means the resource itself was
//     discarded (`_` or only the error bound) — a finding.
func classifyLHS(info *types.Info, lhs []ast.Expr) (obj, errObj types.Object, transferred bool) {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			return nil, nil, true
		}
		if id.Name == "_" {
			continue
		}
		o := info.Defs[id]
		if o == nil {
			o = info.Uses[id]
		}
		if o == nil {
			continue
		}
		if isErrorType(o.Type()) {
			errObj = o
			continue
		}
		if obj == nil {
			obj = o
		}
	}
	return obj, errObj, false
}

// mrTransferNode applies one CFG node to the tracking state:
//
//   - the acquiring assignment starts tracking its object;
//   - a release-method call on a tracked object discharges it;
//   - every other mention of a tracked object — argument, return value,
//     alias, store, &v, closure capture, defer — ends tracking as an
//     escape (conservative: escapes are never reported);
//   - a plain method call v.M(...) on the tracked object is an allowed
//     use and keeps tracking (SpillFile.Write between open and close);
//   - a return that propagates the acquire's paired error absolves the
//     resource: on that path the acquire failed and the value is nil.
func mrTransferNode(info *types.Info, n ast.Node, s dfState, acqByStmt map[ast.Node][]acqSite, whatOf map[types.Object]*protoEntry, errOf map[types.Object][]types.Object) {
	if sites, ok := acqByStmt[n]; ok {
		for _, site := range sites {
			s[site.obj] = dfVal{bits: mrAcquired, pos: site.pos}
		}
		return
	}

	if ret, ok := n.(*ast.ReturnStmt); ok {
		ast.Inspect(ret, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			if resources, ok := errOf[info.Uses[id]]; ok {
				for _, r := range resources {
					delete(s, r)
				}
			}
			return true
		})
	}

	// benign marks tracked-object idents appearing as plain method-call
	// receivers (not releases, not escapes).
	benign := map[*ast.Ident]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		proto, tracked := whatOf[obj]
		if !tracked {
			return true
		}
		if sel.Sel.Name == proto.release {
			delete(s, obj) // released (directly or via defer — both discharge)
			benign[id] = true
			return true
		}
		benign[id] = true // receiver use: allowed, keeps tracking
		return true
	})
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := whatOf[obj]; tracked {
			delete(s, obj) // any other mention: ownership escapes
		}
		return true
	})
}
