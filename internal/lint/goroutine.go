package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerGoroutine requires every goroutine launched in library code to
// have a join or cancellation story: a WaitGroup it signals, a channel it
// communicates on, or a context it watches. A fire-and-forget goroutine in
// a library leaks on every call, outlives the request that spawned it, and
// races engine shutdown — exactly the class of bug the full-repo race
// expansion is meant to keep out. Commands and examples (cmd/, examples/)
// own their process lifetime and are exempt; a deliberate detach in library
// code takes //dashdb:nolint goroutine with a reason.
var AnalyzerGoroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "library goroutines must be joined (WaitGroup/channel) or cancellable (context)",
	Match: func(path string) bool {
		if strings.HasPrefix(path, "fixture/") {
			return true
		}
		return !strings.Contains(path, "/cmd/") && !strings.Contains(path, "/examples/")
	},
	Run: runGoroutine,
}

func runGoroutine(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtJoinable(info, g) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no join or cancellation path: give it a WaitGroup/channel to signal or a context to watch (//dashdb:nolint goroutine <why> for a deliberate detach)")
			return true
		})
	}
}

// goStmtJoinable reports whether the spawned goroutine visibly participates
// in synchronization: its function-literal body (or the arguments handed to
// a named function) touches a channel, WaitGroup, context, or sync
// primitive that can end or join it.
func goStmtJoinable(info *types.Info, g *ast.GoStmt) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if bodySynchronizes(info, lit.Body) {
			return true
		}
	}
	// Named callee (or literal whose body is opaque): accept when the
	// callee is handed something to synchronize on.
	for _, arg := range g.Call.Args {
		if tv, ok := info.Types[arg]; ok && syncCapable(tv.Type) {
			return true
		}
	}
	// Method values like wg.Wait / sess.run carry their receiver's
	// synchronization with them.
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && syncCapable(tv.Type) {
			return true
		}
	}
	return false
}

// bodySynchronizes scans a function body for any construct that joins or
// cancels the goroutine: channel operations, select, WaitGroup/Cond/Once
// method calls, or use of a context.
func bodySynchronizes(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && syncCapable(tv.Type) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && syncCapable(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// syncCapable reports whether a value of type t can join or cancel a
// goroutine: channels, *sync.WaitGroup, context.Context, sync.Locker-ish
// receivers (Cond), or funcs/structs that carry channels or contexts.
func syncCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := deref(t).Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Struct:
		name := typeName(deref(t))
		if name == "sync.WaitGroup" || name == "sync.Once" || name == "sync.Cond" {
			return true
		}
		// Structs that visibly carry a channel, context, or WaitGroup
		// field count: the goroutine can be joined through them.
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if _, isChan := ft.Underlying().(*types.Chan); isChan {
				return true
			}
			fn := typeName(deref(ft))
			if fn == "sync.WaitGroup" || fn == "context.Context" {
				return true
			}
		}
	case *types.Interface:
		if typeName(deref(t)) == "context.Context" {
			return true
		}
	}
	return false
}
