// Package lint is dashDB Local's project-specific static-analysis suite.
//
// The engine's correctness rests on invariants that ordinary Go tooling
// cannot see: the telemetry weave must never hide the concrete type of the
// row/vector bridge adapters, cache-line-padded counter shards must never be
// copied by value, 64-bit atomics must sit at 64-bit-aligned offsets, and
// hot per-stride loops must not call allocating formatters. Those rules used
// to live only in comments; this package turns each one into an Analyzer
// that walks the typed AST of every package in the repository and reports
// file:line diagnostics, so `scripts/verify.sh` can enforce them
// mechanically (paper §II.A: the system polices its own configuration
// instead of relying on expert operators).
//
// The suite is deliberately stdlib-only — go/ast, go/parser, go/types, and
// export data obtained from `go list -export` — so it adds no module
// dependencies and can run anywhere the toolchain runs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a concrete position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Facts is cross-package state gathered before any analyzer runs. Analyzers
// that enforce rules about types declared elsewhere (e.g. "never copy a
// //dashdb:nocopy struct by value") consult it instead of re-walking the
// whole program.
type Facts struct {
	// NoCopy holds the set of struct types annotated //dashdb:nocopy,
	// keyed by "<pkg path>.<type name>".
	NoCopy map[string]bool
	// HotPath holds the set of functions annotated //dashdb:hotpath,
	// keyed by "<pkg path>.<func name>" (methods as "<pkg>.<recv>.<name>").
	HotPath map[string]bool
}

func newFacts() *Facts {
	return &Facts{NoCopy: map[string]bool{}, HotPath: map[string]bool{}}
}

// Pass carries everything one analyzer needs to examine one package.
type Pass struct {
	Pkg   *Package
	Facts *Facts

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos. Suppression via //dashdb:nolint is
// applied later, centrally, so analyzers never need to think about it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short id used in diagnostics and //dashdb:nolint
	Doc  string // one-line description of the invariant

	// Match reports whether the analyzer applies to a package import
	// path. Nil means "every package". Fixture packages loaded by the
	// test harness get paths under "fixture/", which Match
	// implementations are expected to accept (matchPath does).
	Match func(pkgPath string) bool

	// Collect, if set, runs over every package before any Run so the
	// analyzer can publish cross-package Facts.
	Collect func(pass *Pass)

	// Run performs the per-package analysis. Nil for whole-program
	// analyzers that only implement RunAll.
	Run func(pass *Pass)

	// RunAll, if set, runs once over the whole loaded program after every
	// per-package Run. Analyzers that need cross-package reachability
	// (the hotpath call graph) implement this instead of Run.
	RunAll func(pass *ProgramPass)
}

// ProgramPass is the whole-program analogue of Pass: one invocation sees
// every loaded package, so analyzers can build call graphs that cross
// package boundaries.
type ProgramPass struct {
	Pkgs  []*Package
	Facts *Facts

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos, resolved through pkg's FileSet.
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// matchPath is the standard Match helper: true when any needle occurs in
// path, or when the package is a test fixture (path under "fixture/").
func matchPath(needles ...string) func(string) bool {
	return func(path string) bool {
		if strings.HasPrefix(path, "fixture/") {
			return true
		}
		for _, n := range needles {
			if strings.Contains(path, n) {
				return true
			}
		}
		return false
	}
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerInstrumentWrap,
		AnalyzerHotPath,
		AnalyzerAtomicAlign,
		AnalyzerNoCopy,
		AnalyzerTypeAssert,
		AnalyzerDroppedErr,
		AnalyzerGoroutine,
		AnalyzerSpillFile,
		AnalyzerLateMat,
		AnalyzerPlanLower,
		AnalyzerEpochPin,
		AnalyzerMustRelease,
		AnalyzerLockPair,
		AnalyzerHotPathCG,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns surviving
// diagnostics sorted by position. //dashdb:nolint suppression and
// deduplication happen here.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := newFacts()
	var diags []Diagnostic

	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range pkgs {
			a.Collect(&Pass{Pkg: pkg, Facts: facts, analyzer: a.Name, sink: &diags})
		}
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Facts: facts, analyzer: a.Name, sink: &diags})
		}
	}
	for _, a := range analyzers {
		if a.RunAll == nil {
			continue
		}
		a.RunAll(&ProgramPass{Pkgs: pkgs, Facts: facts, analyzer: a.Name, sink: &diags})
	}

	suppress := collectNolint(pkgs)
	var out []Diagnostic
	seen := map[string]bool{}
	for _, d := range diags {
		if suppress.covers(d) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// nolintSet records //dashdb:nolint suppression at two scopes: per line
// (directive on or before the offending line) and per file (directive
// above the package clause). "*" suppresses every analyzer.
type nolintSet struct {
	byLine map[string]map[int]map[string]bool
	byFile map[string]map[string]bool
}

func (s nolintSet) covers(d Diagnostic) bool {
	if names, ok := s.byFile[d.File]; ok && (names["*"] || names[d.Analyzer]) {
		return true
	}
	byLine, ok := s.byLine[d.File]
	if !ok {
		return false
	}
	names, ok := byLine[d.Line]
	if !ok {
		return false
	}
	return names["*"] || names[d.Analyzer]
}

// collectNolint gathers //dashdb:nolint directives. A directive trailing a
// statement suppresses its own line; a directive on a line of its own
// suppresses the next line; a directive above the package clause
// suppresses the named analyzers for the entire file. The directive takes
// a space-separated list of analyzer names (empty list = all), e.g.
//
//	_ = w.Close() //dashdb:nolint droppederr best-effort cleanup
//
// Words after the first non-analyzer token are treated as justification.
func collectNolint(pkgs []*Package) nolintSet {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	set := nolintSet{
		byLine: map[string]map[int]map[string]bool{},
		byFile: map[string]map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//dashdb:nolint")
					if !ok {
						continue
					}
					names := map[string]bool{}
					for _, w := range strings.Fields(text) {
						if !known[w] {
							break // rest is justification prose
						}
						names[w] = true
					}
					if len(names) == 0 {
						names["*"] = true
					}
					pos := pkg.Fset.Position(c.Slash)
					if c.Slash < f.Package {
						// Above the package clause: whole-file scope.
						byFile := set.byFile[pos.Filename]
						if byFile == nil {
							byFile = map[string]bool{}
							set.byFile[pos.Filename] = byFile
						}
						for n := range names {
							byFile[n] = true
						}
						continue
					}
					byLine := set.byLine[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						set.byLine[pos.Filename] = byLine
					}
					line := pos.Line
					if pos.Column == 1 || onOwnLine(pkg.Fset, f, c) {
						line++ // directive on its own line guards the next one
					}
					merge(byLine, line, names)
				}
			}
		}
	}
	return set
}

func merge(byLine map[int]map[string]bool, line int, names map[string]bool) {
	dst := byLine[line]
	if dst == nil {
		dst = map[string]bool{}
		byLine[line] = dst
	}
	for n := range names {
		dst[n] = true
	}
}

// onOwnLine reports whether comment c shares its line with no code token.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Slash).Line
	shares := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || shares {
			return false
		}
		if n.Pos().IsValid() && fset.Position(n.Pos()).Line == line {
			if _, isFile := n.(*ast.File); !isFile {
				shares = true
				return false
			}
		}
		// Keep descending only while the node's span could cover the line.
		return fset.Position(n.Pos()).Line <= line && line <= fset.Position(n.End()).Line
	})
	return !shares
}

// hasDirective reports whether a doc comment group carries the given
// //dashdb:<name> directive (e.g. "hotpath", "nocopy").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//dashdb:" + name
	for _, c := range doc.List {
		if t := strings.TrimSpace(c.Text); t == want || strings.HasPrefix(t, want+" ") {
			return true
		}
	}
	return false
}

// typeName returns "<pkg path>.<name>" for a named type, or "".
func typeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isErrorType reports whether t is (or trivially implements) error.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return true
	}
	return types.Implements(t, errorIface)
}
