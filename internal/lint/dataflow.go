package lint

// Forward dataflow over the CFG in cfg.go. The lattice is deliberately
// tiny: an analysis tracks a set of keys (a local variable holding a
// pinned epoch, a mutex receiver path, ...) each carrying a small bitset
// plus the position where the interesting state began. Join is union —
// these are "may" analyses: mustrelease reports when an acquired value
// MAY still be live at exit on some path, lockpair when a lock MAY still
// be held. That is the right polarity for leak checking: one bad path is
// a bug even if nine others clean up.

import "go/token"

// dfVal is the per-key lattice value: analyzer-defined state bits plus
// the source position that introduced the state (used for reporting).
type dfVal struct {
	bits uint8
	pos  token.Pos
}

// dfState maps analyzer-chosen keys (types.Object for locals, receiver
// path strings for mutexes) to their lattice value. nil means "block not
// yet reached"; an empty non-nil map means "reached, nothing tracked".
type dfState map[any]dfVal

func (s dfState) clone() dfState {
	out := make(dfState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges src into dst (union of keys, OR of bits, earliest
// position wins) and reports whether dst changed. A nil dst means the
// block was unreached: the join then always registers as a change so the
// solver visits it at least once, even with an empty incoming state.
func joinInto(dst dfState, src dfState) (dfState, bool) {
	changed := false
	if dst == nil {
		dst = dfState{}
		changed = true
	}
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		merged := dfVal{bits: dv.bits | sv.bits, pos: dv.pos}
		if sv.pos.IsValid() && (!dv.pos.IsValid() || sv.pos < dv.pos) {
			merged.pos = sv.pos
		}
		if merged != dv {
			dst[k] = merged
			changed = true
		}
	}
	return dst, changed
}

// solveForward runs the classic worklist algorithm: starting from Entry
// with an empty state, it applies transfer to each reached block and
// joins the result into every successor until nothing changes. transfer
// must not mutate the state it is given; it receives a private clone.
// The returned map holds the fixpoint IN-state of every reached block —
// analyzers then replay transfer once more per block with reporting
// enabled, knowing the in-states are final.
func solveForward(g *CFG, transfer func(b *Block, in dfState) dfState) map[*Block]dfState {
	in := map[*Block]dfState{g.Entry: {}}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b].clone())
		for _, s := range b.Succs {
			merged, changed := joinInto(in[s], out)
			in[s] = merged
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}
