package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerAtomicAlign enforces the 64-bit atomic alignment rule: a field
// passed to a sync/atomic 64-bit operation must live at a 64-bit-aligned
// offset inside its allocation. On 32-bit targets only the *first word* of
// an allocation is guaranteed 8-byte alignment, so a 64-bit counter that is
// not first (or not at an 8-aligned offset) panics at runtime there. The
// telemetry counters (PR 3) depend on this; sync/atomic's typed wrappers
// (atomic.Int64 etc.) self-align and are exempt. Offsets are computed with
// 32-bit (GOARCH=386) sizes, where the hazard is real.
var AnalyzerAtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operands must be the first field or at an 8-byte-aligned offset in their struct",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic package functions operating on 64-bit
// values through a pointer first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 models the 32-bit gc target where int64 fields are only
// word-aligned, making misplacement observable.
var sizes32 = types.SizesFor("gc", "386")

func runAtomicAlign(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !atomic64Funcs[obj.Name()] {
				return true
			}
			// The operand must be &expr where expr ends in a field selection.
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			fieldSel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true // &local or &slice[i]: allocation start, aligned
			}
			off, known := allocOffset(info, fieldSel)
			if known && off%8 != 0 {
				pass.Reportf(un.Pos(),
					"64-bit atomic operand %s is at offset %d in its struct on 32-bit targets; move it first or pad to an 8-byte boundary (or use atomic.Int64/Uint64, which self-align)",
					fieldText(fieldSel), off)
			}
			return true
		})
	}
}

// fieldText renders a selector chain for the diagnostic.
func fieldText(sel *ast.SelectorExpr) string {
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name + "." + sel.Sel.Name
	case *ast.SelectorExpr:
		return fieldText(x) + "." + sel.Sel.Name
	default:
		return sel.Sel.Name
	}
}

// allocOffset computes the byte offset of the selected field from the start
// of its allocation unit under 32-bit sizes. A pointer dereference starts a
// new allocation (offset restarts at zero); unknown shapes return !known.
func allocOffset(info *types.Info, sel *ast.SelectorExpr) (int64, bool) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return 0, false
	}
	base := int64(0)
	recv := s.Recv()
	if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr {
		// Value receiver: if the base expression is itself a field
		// selection, accumulate its offset within the same allocation.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if innerOff, ok := allocOffset(info, inner); ok {
				base = innerOff
			}
		}
	}
	off, ok := offsetWithin(recv, s.Index())
	if !ok {
		return 0, false
	}
	return base + off, true
}

// offsetWithin walks a field index path (as produced by types.Selection)
// through possibly-embedded structs, summing offsets. Crossing an embedded
// pointer resets the offset: the pointee is its own allocation.
func offsetWithin(t types.Type, index []int) (int64, bool) {
	var off int64
	for _, idx := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			off = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		off += offsets[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}
