package lint

import (
	"go/ast"
	gotypes "go/types"
	"strings"
)

// AnalyzerLateMat polices the late-materialization invariant of
// operate-on-compressed-data execution: inside //dashdb:hotpath executor
// kernels, dictionary codes must stay codes. A per-element Dict.Decode in
// a filter, join, or group-by inner loop silently re-creates the decoded
// path the compressed engine exists to avoid — the query still returns
// the right answer, which is exactly why only a linter catches it. The
// designated materialization sites (functions whose name mentions emit,
// materialize, or project) are exempt, as is anything outside the
// executor packages.
var AnalyzerLateMat = &Analyzer{
	Name:  "latemat",
	Doc:   "//dashdb:hotpath executor kernels must not call encoding.Dict.Decode outside emit/materialize/project sites",
	Match: matchPath("/exec", "/vec"),
	Run:   runLateMat,
}

// lateMatExemptSites are name fragments marking sanctioned decode points.
var lateMatExemptSites = []string{"emit", "materialize", "project"}

func lateMatExempt(name string) bool {
	n := strings.ToLower(name)
	for _, site := range lateMatExemptSites {
		if strings.Contains(n, site) {
			return true
		}
	}
	return false
}

// isDictDecode reports whether the resolved callee is the Decode method
// of a type named Dict from the encoding package (or a fixture's local
// stand-in).
func isDictDecode(obj gotypes.Object) bool {
	fn, ok := obj.(*gotypes.Func)
	if !ok || fn.Name() != "Decode" {
		return false
	}
	sig, ok := fn.Type().(*gotypes.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*gotypes.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*gotypes.Named)
	if !ok || named.Obj().Name() != "Dict" {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return strings.HasSuffix(pkg.Path(), "internal/encoding") ||
		strings.HasPrefix(pkg.Path(), "fixture/")
}

func runLateMat(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "hotpath") || fd.Body == nil {
				continue
			}
			if lateMatExempt(funcKey(fd)) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || !isDictDecode(obj) {
					return true
				}
				pass.Reportf(call.Pos(),
					"hotpath kernel %s decodes dictionary codes per element: operate on codes and materialize once at the projection/emit site (or rename the function to mark it a sanctioned decode point)",
					funcKey(fd))
				return true
			})
		}
	}
}
