package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerNoCopy enforces value-copy hygiene for structs annotated
// //dashdb:nocopy. The telemetry ScanShard is the motivating case: it is a
// cache-line-padded counter shard whose identity *is* its address — a
// by-value copy silently forks the counters (updates land in the copy, the
// reader sums the original) and reintroduces the false sharing the padding
// exists to prevent. `go vet`'s copylocks cannot see this because the shard
// holds no lock. Constructing a value (composite literal, make, new) is
// fine; copying an existing one is not.
var AnalyzerNoCopy = &Analyzer{
	Name:    "nocopy",
	Doc:     "structs annotated //dashdb:nocopy (padded counter shards) must not be copied by value",
	Collect: collectNoCopy,
	Run:     runNoCopy,
}

func collectNoCopy(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, "nocopy") || (len(gd.Specs) == 1 && hasDirective(gd.Doc, "nocopy")) {
					pass.Facts.NoCopy[pass.Pkg.Path+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

// noCopyType reports whether t is a bare (non-pointer) type registered as
// //dashdb:nocopy.
func (facts *Facts) noCopyType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return facts.NoCopy[typeName(t)]
}

func runNoCopy(pass *Pass) {
	info := pass.Pkg.Info
	facts := pass.Facts
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if facts.noCopyType(tv.Type) {
				pass.Reportf(field.Type.Pos(),
					"%s passes //dashdb:nocopy type %s by value; use *%s so counter updates land in the shared shard",
					what, tv.Type, tv.Type)
			}
		}
	}

	// copyExpr reports whether assigning rhs by value duplicates an
	// existing object (as opposed to constructing a fresh one).
	copies := func(rhs ast.Expr) bool {
		switch rhs.(type) {
		case *ast.CompositeLit:
			return false // fresh value
		case *ast.CallExpr:
			return true // function returning the bare type already copied
		default:
			return true
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "method receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					tv, ok := info.Types[rhs]
					if !ok || !facts.noCopyType(tv.Type) || !copies(rhs) {
						continue
					}
					pass.Reportf(rhs.Pos(),
						"assignment copies //dashdb:nocopy type %s by value; take its address instead", tv.Type)
				}
			case *ast.ValueSpec:
				for _, rhs := range n.Values {
					tv, ok := info.Types[rhs]
					if !ok || !facts.noCopyType(tv.Type) || !copies(rhs) {
						continue
					}
					pass.Reportf(rhs.Pos(),
						"declaration copies //dashdb:nocopy type %s by value; take its address instead", tv.Type)
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				var vt types.Type
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vt = obj.Type()
					} else if obj := info.Uses[id]; obj != nil {
						vt = obj.Type()
					}
				} else if tv, ok := info.Types[n.Value]; ok {
					vt = tv.Type
				}
				if facts.noCopyType(vt) {
					pass.Reportf(n.Value.Pos(),
						"range copies //dashdb:nocopy elements of %s by value; iterate by index and use &xs[i]", vt)
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					tv, ok := info.Types[arg]
					if !ok || !facts.noCopyType(tv.Type) || !copies(arg) {
						continue
					}
					pass.Reportf(arg.Pos(),
						"call passes //dashdb:nocopy type %s by value; pass a pointer", tv.Type)
				}
			}
			return true
		})
	}
}
