package lint

import (
	"go/ast"
	gotypes "go/types"
	"strings"
)

// AnalyzerEpochPin polices the snapshot-isolation reader discipline:
// executor and planner code reads a columnar table only through a pinned
// snapshot (columnar.Snapshot, obtained via Table.Snapshot, ScanOp.Snap
// or ScanOp.PlanSnapshot), never through the Table convenience methods
// that implicitly pin the *current* epoch per call. Two such calls in one
// statement can straddle a concurrent writer's publish and observe
// different epochs — the query still returns plausible rows, which is
// exactly why only a linter catches it. Other packages (benchmarks,
// monitoring, the write path itself) may use the Table methods freely.
var AnalyzerEpochPin = &Analyzer{
	Name:  "epochpin",
	Doc:   "internal/exec and internal/plan read columnar tables only via a pinned Snapshot, not Table's current-epoch methods",
	Match: matchPath("internal/exec", "internal/plan"),
	Run:   runEpochPin,
}

// epochPinForbidden is the set of *columnar.Table methods that pin the
// current epoch per call instead of reading a statement snapshot.
var epochPinForbidden = map[string]bool{
	"Scan":                  true,
	"ScanWithStats":         true,
	"ScanNaive":             true,
	"ParallelScan":          true,
	"ParallelScanWithStats": true,
	"Rows":                  true,
	"ColumnStats":           true,
	"ColumnDict":            true,
	"CountWhere":            true,
	"SelectWhere":           true,
}

// isTableEpochCall reports whether the resolved callee is a forbidden
// current-epoch method on a type named Table from the columnar package
// (or a fixture's local stand-in), returning the method name.
func isTableEpochCall(obj gotypes.Object) (string, bool) {
	fn, ok := obj.(*gotypes.Func)
	if !ok || !epochPinForbidden[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*gotypes.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*gotypes.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*gotypes.Named)
	if !ok || named.Obj().Name() != "Table" {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return "", false
	}
	if strings.HasSuffix(pkg.Path(), "internal/columnar") ||
		strings.HasPrefix(pkg.Path(), "fixture/") {
		return fn.Name(), true
	}
	return "", false
}

func runEpochPin(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			name, bad := isTableEpochCall(obj)
			if !bad {
				return true
			}
			pass.Reportf(call.Pos(),
				"Table.%s pins the current epoch per call: pin once via Table.Snapshot / ScanOp.Snap / PlanSnapshot and read through the Snapshot so every access in the statement sees one epoch",
				name)
			return true
		})
	}
}
