package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path  string // import path ("fixture/<name>" for test fixtures)
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds non-fatal type-check problems. Analyzers still run
	// (with partial info) so one broken file does not hide every finding.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Loader turns package patterns into typed Packages using only the standard
// library: `go list -export` supplies compiled export data for imports, and
// the target packages themselves are parsed and type-checked from source so
// analyzers get full *types.Info for their own files.
type Loader struct {
	// ModuleDir is the directory `go list` runs in (the module root).
	ModuleDir string
	// IncludeTests additionally parses in-package _test.go files.
	IncludeTests bool

	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
}

// NewLoader returns a Loader rooted at moduleDir.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   map[string]string{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// Fset exposes the loader's shared FileSet (all Packages use it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// lookup feeds gcimporter the export data for one import path, resolving
// through the `go list -export` results and falling back to a one-off
// `go list` for paths discovered late (e.g. stdlib imports of fixtures).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		out, err := l.goList("-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("lint: no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: empty export data path for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(args, " "), msg)
	}
	return out, nil
}

// Load expands patterns (e.g. "./...") and returns the matched packages,
// parsed and type-checked. Dependencies are consumed as export data only.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"-deps", "-export", "-json"}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var targets []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.mu.Lock()
			l.exports[p.ImportPath] = p.Export
			l.mu.Unlock()
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			cp := p
			targets = append(targets, &cp)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		files := t.GoFiles
		if l.IncludeTests {
			files = append(append([]string{}, files...), testFilesIn(t.Dir, t.Name)...)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// testFilesIn lists in-package _test.go files (external _test packages are
// skipped: they are their own compilation unit).
func testFilesIn(dir, pkgName string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		src, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil || src.Name.Name != pkgName {
			continue
		}
		out = append(out, name)
	}
	return out
}

// LoadFixtureDir loads one directory as the package "fixture/<base>". Used
// by the analyzer tests: fixtures live under testdata (invisible to the go
// tool) and may import only the standard library.
func (l *Loader) LoadFixtureDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.check("fixture/"+filepath.Base(dir), dir, files)
}

func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", full, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
