package lint

import (
	"os"
	"testing"
	"time"
)

// BenchmarkLintAll is the full-repo wall time of every analyzer — the
// price a pre-commit loop pays. Loading (the `go list -export`
// subprocess plus type import) is done once outside the timed region:
// the interesting number is the analysis itself, which is what grows as
// analyzers get smarter (CFGs, dataflow fixpoints, the whole-program
// call graph).
func BenchmarkLintAll(b *testing.B) {
	pkgs, err := NewLoader(moduleRoot(b)).Load("./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pkgs, All())
	}
}

// lintBudget is deliberately generous: the point is not a perf target
// but a tripwire against an accidentally super-linear dataflow or call
// graph pass making the pre-commit loop painful. A full-repo analysis
// run takes well under a second today; 30s of headroom survives slow CI
// machines while still catching a fixpoint that stops converging.
const lintBudget = 30 * time.Second

// TestLintBudget gates verify.sh (DASHDB_LINT_BUDGET=1): one full-repo
// analysis-only run of every analyzer must finish inside lintBudget.
func TestLintBudget(t *testing.T) {
	if os.Getenv("DASHDB_LINT_BUDGET") == "" {
		t.Skip("set DASHDB_LINT_BUDGET=1 to enforce the lint wall-time budget")
	}
	pkgs, err := NewLoader(moduleRoot(t)).Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Run(pkgs, All())
	if elapsed := time.Since(start); elapsed > lintBudget {
		t.Fatalf("full-repo analysis took %v, budget is %v: an analyzer has gone super-linear", elapsed, lintBudget)
	}
}
