package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockPair is the dataflow lock checker: every sync.Mutex /
// sync.RWMutex acquisition must reach a matching release on all paths to
// return, the release flavor must match the acquisition (Unlock after
// Lock, RUnlock after RLock — mixing them panics or silently corrupts
// the reader count), and the same mutex must not be write-locked twice
// along one path (self-deadlock, the classic "helper re-locks what the
// caller holds" bug). `defer mu.Unlock()` discharges the obligation
// immediately — it runs on every exit path — and paths ending in panic
// are exempt, matching the CFG's treatment of abandoned frames.
//
// Mutexes are identified by their access path ("s.mu", "shard.pages.mu")
// rendered from the lock call's receiver chain; helper methods that lock
// on behalf of a caller are out of scope (one function, one obligation).
var AnalyzerLockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "every Mutex/RWMutex Lock reaches a matching Unlock on all paths, flavors match, and no path double-locks",
	Run:  runLockPair,
}

const (
	lpLocked  uint8 = 1 << iota // write lock held
	lpRLocked                   // read lock held
)

// lockKey is the dfState key for one mutex access path.
type lockKey string

func runLockPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPair(pass, fd)
		}
	}
}

// lockOp is one classified mutex operation found in a statement.
type lockOp struct {
	key     lockKey
	method  string // Lock, Unlock, RLock, RUnlock
	pos     token.Pos
	defered bool
}

func checkLockPair(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Quick scan: most functions touch no mutex; skip the CFG for them.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op := classifyLockOp(info, call, false); op != nil {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	g := buildCFG(fd.Body)

	// reporting is toggled for the final replay pass: the solver may
	// visit a block many times before the fixpoint, and only the replay
	// sees final in-states.
	reporting := false
	transfer := func(b *Block, in dfState) dfState {
		for _, n := range b.Nodes {
			for _, op := range lockOpsIn(info, n) {
				applyLockOp(pass, op, in, reporting)
			}
		}
		return in
	}
	in := solveForward(g, transfer)

	reporting = true
	blocks := make([]*Block, 0, len(in))
	for b := range in {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		transfer(b, in[b].clone())
	}

	exit := in[g.Exit]
	type held struct {
		key lockKey
		val dfVal
	}
	var leaks []held
	for k, v := range exit {
		lk, ok := k.(lockKey)
		if !ok || v.bits == 0 {
			continue
		}
		leaks = append(leaks, held{key: lk, val: v})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].val.pos < leaks[j].val.pos })
	for _, l := range leaks {
		pass.Reportf(l.val.pos,
			"%s is locked here but may still be held on some path to return: unlock on every path or defer the unlock",
			l.key)
	}
}

// lockOpsIn extracts mutex operations from one CFG node in source order.
func lockOpsIn(info *types.Info, n ast.Node) []lockOp {
	var ops []lockOp
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A closure locking a mutex is its own scope (often a
			// goroutine body); charging it to the enclosing function
			// would misfire on every worker-pool pattern.
			return false
		case *ast.DeferStmt:
			if op := classifyLockOp(info, x.Call, true); op != nil {
				ops = append(ops, *op)
			} else if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { ...; mu.Unlock() }() — the closure's
				// unlocks run on every exit path, same as a direct defer.
				ast.Inspect(lit.Body, func(y ast.Node) bool {
					if call, ok := y.(*ast.CallExpr); ok {
						if op := classifyLockOp(info, call, true); op != nil {
							ops = append(ops, *op)
						}
					}
					return true
				})
			}
			return false // args of a deferred call can't lock here
		case *ast.CallExpr:
			if op := classifyLockOp(info, x, false); op != nil {
				ops = append(ops, *op)
			}
		}
		return true
	})
	return ops
}

// classifyLockOp matches a call against sync.Mutex/RWMutex lock methods
// and renders the receiver path. Calls whose receiver is not a simple
// ident/selector chain (map entries, function results) are skipped.
func classifyLockOp(info *types.Info, call *ast.CallExpr, defered bool) *lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil // TryLock results are conditional; RLocker is aliasing
	}
	recv := deref(info.TypeOf(sel.X))
	name := typeName(recv)
	if name != "sync.Mutex" && name != "sync.RWMutex" {
		return nil
	}
	path := renderPath(sel.X)
	if path == "" {
		return nil
	}
	return &lockOp{key: lockKey(path), method: fn.Name(), pos: call.Pos(), defered: defered}
}

// renderPath flattens an ident/selector chain ("s.mu", "t.pages.mu");
// anything else yields "".
func renderPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return renderPath(e.X)
		}
	}
	return ""
}

// applyLockOp advances the lock state for one operation, reporting
// flavor mismatches and double-locks when reporting is on.
func applyLockOp(pass *Pass, op lockOp, s dfState, reporting bool) {
	cur := s[op.key]
	switch op.method {
	case "Lock":
		if cur.bits&lpLocked != 0 && reporting {
			pass.Reportf(op.pos,
				"%s may already be write-locked on this path (locked at %s): double Lock self-deadlocks",
				op.key, pass.Pkg.Fset.Position(cur.pos))
		}
		if op.defered {
			return // defer mu.Lock() is nonsense but not ours to model
		}
		s[op.key] = dfVal{bits: cur.bits | lpLocked, pos: op.pos}
	case "RLock":
		if op.defered {
			return
		}
		s[op.key] = dfVal{bits: cur.bits | lpRLocked, pos: op.pos}
	case "Unlock":
		if cur.bits&lpRLocked != 0 && cur.bits&lpLocked == 0 && reporting {
			pass.Reportf(op.pos,
				"%s is read-locked (RLock at %s) but released with Unlock: flavor mismatch corrupts the reader count",
				op.key, pass.Pkg.Fset.Position(cur.pos))
		}
		// Both immediate and deferred unlock discharge the obligation:
		// a deferred unlock runs on every path out of the function.
		delete(s, op.key)
	case "RUnlock":
		if cur.bits&lpLocked != 0 && cur.bits&lpRLocked == 0 && reporting {
			pass.Reportf(op.pos,
				"%s is write-locked (Lock at %s) but released with RUnlock: flavor mismatch panics at runtime",
				op.key, pass.Pkg.Fset.Position(cur.pos))
		}
		delete(s, op.key)
	}
}
