package lint

import (
	"go/ast"
)

// AnalyzerTypeAssert bans unchecked type assertions in operator and planner
// code (internal/exec, internal/sql, internal/spark). An unchecked `x.(T)`
// is a latent panic wired to whatever data reaches it: in the executor that
// means a malformed plan or an extension operator crashes the whole query
// instead of failing it with a typed error. The comma-ok form and type
// switches are always fine; a genuinely-infallible assertion can carry
// //dashdb:nolint typeassert with a justification.
var AnalyzerTypeAssert = &Analyzer{
	Name:  "typeassert",
	Doc:   "no unchecked type assertions in internal/exec, internal/sql, internal/spark",
	Match: matchPath("internal/exec", "internal/sql", "internal/spark"),
	Run:   runTypeAssert,
}

func runTypeAssert(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// checked holds assertion nodes that appear in a comma-ok or
		// type-switch position and are therefore safe.
		checked := map[*ast.TypeAssertExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
					if ta, ok := n.Rhs[0].(*ast.TypeAssertExpr); ok {
						checked[ta] = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == 2 && len(n.Values) == 1 {
					if ta, ok := n.Values[0].(*ast.TypeAssertExpr); ok {
						checked[ta] = true
					}
				}
			case *ast.TypeSwitchStmt:
				switch stmt := n.Assign.(type) {
				case *ast.ExprStmt:
					if ta, ok := stmt.X.(*ast.TypeAssertExpr); ok {
						checked[ta] = true
					}
				case *ast.AssignStmt:
					if len(stmt.Rhs) == 1 {
						if ta, ok := stmt.Rhs[0].(*ast.TypeAssertExpr); ok {
							checked[ta] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil || checked[ta] {
				return true
			}
			pass.Reportf(ta.Pos(),
				"unchecked type assertion %s: use the comma-ok form and return a typed error instead of risking a panic", exprText(ta))
			return true
		})
	}
}

// exprText renders a short description of the assertion for the diagnostic.
func exprText(ta *ast.TypeAssertExpr) string {
	base := "x"
	if id, ok := ta.X.(*ast.Ident); ok {
		base = id.Name
	} else if sel, ok := ta.X.(*ast.SelectorExpr); ok {
		base = sel.Sel.Name
	}
	typ := "T"
	switch t := ta.Type.(type) {
	case *ast.Ident:
		typ = t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			typ = "*" + id.Name
		} else if sel, ok := t.X.(*ast.SelectorExpr); ok {
			typ = "*" + sel.Sel.Name
		}
	case *ast.SelectorExpr:
		typ = t.Sel.Name
	}
	return base + ".(" + typ + ")"
}
