// Package store is the negative droppederr fixture: handled errors,
// genuinely boolean blanks, and justified drops.
package store

import (
	"errors"
	"strconv"
)

var errClosed = errors.New("closed")

type writer struct{ closed bool }

func (w *writer) Close() error {
	if w.closed {
		return errClosed
	}
	w.closed = true
	return nil
}

func flush(w *writer) error {
	return w.Close()
}

func parse(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

func lookups(m map[string]int, v any) int {
	n, _ := m["k"] // second value is a bool, not an error: never flagged
	s, _ := v.(string)
	_ = s
	return n
}

func bestEffort(w *writer) {
	_ = w.Close() //dashdb:nolint droppederr double-close is harmless on teardown
}
