// Package exec mirrors the operator/decorator shape of dashdb's real exec
// package so the instrumentwrap analyzer can be exercised in isolation.
package exec

type Operator interface{ Next() (int, error) }
type VecOperator interface{ NextVec() (int, error) }

type RowAdapter struct{ Inner VecOperator }

func (r *RowAdapter) Next() (int, error) { return r.Inner.NextVec() }

type RowsToVecOp struct{ Child Operator }

func (r *RowsToVecOp) NextVec() (int, error) { return r.Child.Next() }

type ScanOp struct{}

func (s *ScanOp) Next() (int, error) { return 0, nil }

type StatsOp struct {
	Child Operator
	rows  int64
}

func (s *StatsOp) Next() (int, error) { return s.Child.Next() }

type VecStatsOp struct {
	Child VecOperator
	rows  int64
}

func (s *VecStatsOp) NextVec() (int, error) { return s.Child.NextVec() }

func Instrument(op Operator) Operator          { return &StatsOp{Child: op} }
func InstrumentVec(op VecOperator) VecOperator { return &VecStatsOp{Child: op} }

func bad(ra *RowAdapter, rv *RowsToVecOp) {
	_ = Instrument(ra)              //lint:expect instrumentwrap
	_ = InstrumentVec(rv)           //lint:expect instrumentwrap
	_ = &StatsOp{Child: ra}         //lint:expect instrumentwrap
	_ = &VecStatsOp{Child: rv}      //lint:expect instrumentwrap
	_ = StatsOp{Child: ra, rows: 0} //lint:expect instrumentwrap
	_ = &StatsOp{&RowAdapter{}, 0}  //lint:expect instrumentwrap
}
