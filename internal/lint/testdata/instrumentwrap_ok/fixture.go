// Package exec is the negative fixture: instrumenting ordinary operators
// and keeping the adapters' concrete types is exactly what the invariant
// wants.
package exec

type Operator interface{ Next() (int, error) }
type VecOperator interface{ NextVec() (int, error) }

type RowAdapter struct{ Inner VecOperator }

func (r *RowAdapter) Next() (int, error) { return r.Inner.NextVec() }

type RowsToVecOp struct{ Child Operator }

func (r *RowsToVecOp) NextVec() (int, error) { return r.Child.Next() }

type ScanOp struct{}

func (s *ScanOp) Next() (int, error) { return 0, nil }

type VecScanOp struct{}

func (s *VecScanOp) NextVec() (int, error) { return 0, nil }

type StatsOp struct{ Child Operator }

func (s *StatsOp) Next() (int, error) { return s.Child.Next() }

type VecStatsOp struct{ Child VecOperator }

func (s *VecStatsOp) NextVec() (int, error) { return s.Child.NextVec() }

// Instrument decorates generic operators but recurses *through* the bridge
// adapters, preserving their concrete types — the sanctioned pattern.
func Instrument(op Operator) Operator {
	switch o := op.(type) {
	case *RowAdapter:
		o.Inner = InstrumentVec(o.Inner)
		return o
	case *ScanOp:
		return &StatsOp{Child: o}
	}
	return op
}

func InstrumentVec(op VecOperator) VecOperator {
	switch o := op.(type) {
	case *RowsToVecOp:
		o.Child = Instrument(o.Child)
		return o
	case *VecScanOp:
		return &VecStatsOp{Child: o}
	}
	return op
}

func ok(scan *ScanOp, op Operator) {
	_ = Instrument(scan)
	_ = Instrument(op)
	_ = &StatsOp{Child: scan}
}
