// Package pool is the negative goroutine fixture: joined, channel-fed, and
// context-cancelled goroutines all have an ending.
package pool

import (
	"context"
	"sync"
)

func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func producer(out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			out <- i
		}
	}()
}

func consume(in <-chan int) {
	go func() {
		for range in {
		}
	}()
}

func watcher(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func drain(in chan int) {
	go drainLoop(in) // callee is handed the channel it ranges over
}

func drainLoop(in chan int) {
	for range in {
	}
}
