// Package shards exercises the nocopy analyzer: padded counter shards
// copied by value fork their counters.
package shards

// Shard is one worker's padded counter block.
//
//dashdb:nocopy
type Shard struct {
	Visited int64
	_       [56]byte
}

func sumByValue(sh Shard) int64 { //lint:expect nocopy
	return sh.Visited
}

func leak(shards []Shard) int64 {
	var n int64
	for _, sh := range shards { //lint:expect nocopy
		n += sh.Visited
	}
	first := shards[0] //lint:expect nocopy
	n += first.Visited
	p := &shards[1]
	snapshot := *p //lint:expect nocopy
	n += snapshot.Visited
	n += sumByValue(shards[0]) //lint:expect nocopy
	return n
}
