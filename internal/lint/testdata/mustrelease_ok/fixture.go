// Package release is the negative mustrelease fixture: every acquire is
// released on all paths, deferred, or escapes into a new owner.
package release

import "errors"

// Epoch is the pinned-epoch stand-in.
type Epoch struct{}

// Release unpins.
func (e *Epoch) Release() {}

// Rows reads through the pin.
func (e *Epoch) Rows() int { return 0 }

// Manager hands out pins.
type Manager struct{}

// Pin acquires an epoch pin.
func (m *Manager) Pin() *Epoch { return &Epoch{} }

// Spill is the spill-file stand-in.
type Spill struct{}

// Write appends.
func (f *Spill) Write(p []byte) (int, error) { return len(p), nil }

// Close releases the file.
func (f *Spill) Close() error { return nil }

// Reservation is the heap-grant stand-in.
type Reservation struct{}

// NewSpillFile opens a governed temp file.
func (r *Reservation) NewSpillFile(label string) (*Spill, error) { return &Spill{}, nil }

// Close returns the grant.
func (r *Reservation) Close() {}

// Governor hands out reservations.
type Governor struct{}

// Acquire grants a reservation.
func (g *Governor) Acquire(heap int) *Reservation { return &Reservation{} }

// holder owns a reservation transferred into it.
type holder struct {
	res *Reservation
}

var errBoom = errors.New("boom")

// deferredRelease is the canonical pattern: defer right after acquiring.
func deferredRelease(m *Manager) int {
	e := m.Pin()
	defer e.Release()
	return e.Rows()
}

// releasedOnAllPaths releases explicitly on both branches.
func releasedOnAllPaths(m *Manager, fast bool) int {
	e := m.Pin()
	if fast {
		n := e.Rows()
		e.Release()
		return n
	}
	e.Release()
	return 0
}

// errPathIsNil propagates the acquire's own error: on that path the
// file is nil and owes nothing.
func errPathIsNil(r *Reservation, rows [][]byte) error {
	f, err := r.NewSpillFile("run")
	if err != nil {
		return err
	}
	defer f.Close()
	for _, row := range rows {
		if _, err := f.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ownershipReturn transfers the obligation to the caller.
func ownershipReturn(g *Governor) *Reservation {
	res := g.Acquire(0)
	return res
}

// ownershipStore transfers the obligation to the struct.
func ownershipStore(g *Governor, h *holder) {
	res := g.Acquire(0)
	h.res = res
}

// deferredClosureRelease releases from inside a deferred closure.
func deferredClosureRelease(m *Manager) int {
	e := m.Pin()
	defer func() { e.Release() }()
	return e.Rows()
}

// panicPathExempt aborts the frame deliberately; panic paths owe no
// release (the process is going down or a recover owns cleanup).
func panicPathExempt(m *Manager, ok bool) {
	e := m.Pin()
	if !ok {
		panic("fixture: invariant broken")
	}
	e.Release()
}

// Conn is the pooled-connection stand-in (shardrpc.Pool.Get/Conn.Release).
type Conn struct{}

// Release returns the connection to the pool.
func (c *Conn) Release() {}

// Fail marks it broken (an allowed receiver use; Release still closes).
func (c *Conn) Fail() {}

// Pool hands out connections.
type Pool struct{}

// Get acquires a connection.
func (p *Pool) Get(addr string) (*Conn, error) { return &Conn{}, nil }

// connDoIdiom is the Pool.Do shape: release after the callback on every
// path, including the failure mark.
func connDoIdiom(p *Pool, fn func(*Conn) error) error {
	c, err := p.Get("addr")
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		c.Fail()
		c.Release()
		return err
	}
	c.Release()
	return nil
}

// connDeferred is the simple shape: defer right after acquiring.
func connDeferred(p *Pool) error {
	c, err := p.Get("addr")
	if err != nil {
		return err
	}
	defer c.Release()
	return nil
}
