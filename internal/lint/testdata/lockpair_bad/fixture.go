// Package lockbad exercises the lockpair analyzer: lock paths that leak
// the lock on an early return, mismatch acquisition/release flavors, or
// double-lock the same mutex along one path.
package lockbad

import (
	"errors"
	"sync"
)

type store struct {
	mu   sync.RWMutex
	vals map[string]int
}

var errMissing = errors.New("missing")

// leakOnError returns early with the write lock still held: every later
// caller of store deadlocks.
func leakOnError(s *store, key string, v int) error {
	s.mu.Lock() //lint:expect lockpair
	if s.vals == nil {
		return errMissing
	}
	s.vals[key] = v
	s.mu.Unlock()
	return nil
}

// flavorMismatchRead read-locks but write-unlocks, corrupting the
// RWMutex reader count.
func flavorMismatchRead(s *store, key string) int {
	s.mu.RLock()
	v := s.vals[key]
	s.mu.Unlock() //lint:expect lockpair
	return v
}

// flavorMismatchWrite write-locks but read-unlocks, which panics at
// runtime.
func flavorMismatchWrite(s *store, key string, v int) {
	s.mu.Lock()
	s.vals[key] = v
	s.mu.RUnlock() //lint:expect lockpair
}

// doubleLock re-locks what it already holds: self-deadlock.
func doubleLock(s *store, key string, v int) {
	s.mu.Lock()
	s.mu.Lock() //lint:expect lockpair
	s.vals[key] = v
	s.mu.Unlock()
}

var (
	mu   sync.Mutex
	hits int
)

// leakOneBranch unlocks only on the branch that did work.
func leakOneBranch(n int) {
	mu.Lock() //lint:expect lockpair
	if n > 0 {
		hits += n
		mu.Unlock()
	}
}
