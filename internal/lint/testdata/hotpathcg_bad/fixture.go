// Package hotcg exercises the hotpathcg analyzer: //dashdb:hotpath
// kernels reaching allocating, locking, or immediately-panicking code
// through in-module helpers the local hotpath analyzer never looks
// inside.
package hotcg

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

// describe formats its argument — an allocation two hops from the
// kernel.
func describe(x int) string {
	return fmt.Sprintf("row %d", x)
}

// render is the middle hop: clean itself, but reaches describe.
func render(x int) string {
	return describe(x)
}

// tally serializes every caller on a shared mutex.
func tally(n *int) {
	mu.Lock()
	*n++
	mu.Unlock()
}

// unimplemented is an abort stub: its body is a bare panic.
func unimplemented() {
	panic("hotcg: unimplemented")
}

// kernelAlloc reaches fmt.Sprintf through two in-module hops.
//
//dashdb:hotpath
func kernelAlloc(xs []int) int {
	total := 0
	for _, x := range xs {
		total += len(render(x)) //lint:expect hotpathcg
	}
	return total
}

// kernelLock takes a mutex per element.
//
//dashdb:hotpath
func kernelLock(xs []int) int {
	n := 0
	for range xs {
		tally(&n) //lint:expect hotpathcg
	}
	return n
}

// kernelAbort calls a panicking stub unconditionally: the "hot" path
// can never complete.
//
//dashdb:hotpath
func kernelAbort(xs []int) int {
	unimplemented() //lint:expect hotpathcg
	return len(xs)
}
