// Package store exercises the droppederr analyzer: errors silenced with _
// must not pass review unseen.
package store

import (
	"errors"
	"strconv"
)

var errClosed = errors.New("closed")

type writer struct{ closed bool }

func (w *writer) Close() error {
	if w.closed {
		return errClosed
	}
	w.closed = true
	return nil
}

func flush(w *writer) {
	_ = w.Close() //lint:expect droppederr
}

func parse(s string) int {
	n, _ := strconv.Atoi(s) //lint:expect droppederr
	return n
}

func swallow(w *writer) {
	err := w.Close()
	_ = err //lint:expect droppederr
}

func declare(s string) int {
	var n, _ = strconv.Atoi(s) //lint:expect droppederr
	return n
}
