// Package release exercises the mustrelease analyzer: protocol-acquired
// values that can reach function exit unreleased on some path. The types
// are local stand-ins for snapshot.Manager / mem.Governor /
// mem.Reservation (fixtures are stdlib-only); the analyzer matches them
// by receiver type name + method name under the fixture/ path prefix.
package release

import "errors"

// Epoch is the pinned-epoch stand-in.
type Epoch struct{}

// Release unpins.
func (e *Epoch) Release() {}

// Rows reads through the pin (an allowed receiver use).
func (e *Epoch) Rows() int { return 0 }

// Manager hands out pins.
type Manager struct{}

// Pin acquires an epoch pin.
func (m *Manager) Pin() *Epoch { return &Epoch{} }

// Spill is the spill-file stand-in.
type Spill struct{}

// Write appends.
func (f *Spill) Write(p []byte) (int, error) { return len(p), nil }

// Close releases the file.
func (f *Spill) Close() error { return nil }

// Reservation is the heap-grant stand-in.
type Reservation struct{}

// NewSpillFile opens a governed temp file.
func (r *Reservation) NewSpillFile(label string) (*Spill, error) { return &Spill{}, nil }

// Close returns the grant.
func (r *Reservation) Close() {}

// Governor hands out reservations.
type Governor struct{}

// Acquire grants a reservation.
func (g *Governor) Acquire(heap int) *Reservation { return &Reservation{} }

var errBoom = errors.New("boom")

// leakOnEarlyReturn releases on the happy path only: the error path
// returns with the pin still held.
func leakOnEarlyReturn(m *Manager, fail bool) error {
	e := m.Pin() //lint:expect mustrelease
	if fail {
		return errBoom
	}
	e.Release()
	return nil
}

// discardPin drops the pin on the floor.
func discardPin(m *Manager) {
	m.Pin() //lint:expect mustrelease
}

// discardSpill binds only the error, never the file.
func discardSpill(r *Reservation) error {
	_, err := r.NewSpillFile("run") //lint:expect mustrelease
	return err
}

// leakOneBranch closes the reservation only when work happened.
func leakOneBranch(g *Governor, n int) {
	res := g.Acquire(0) //lint:expect mustrelease
	if n > 0 {
		res.Close()
	}
}

// leakInLoop closes the file on the happy path but not when a write
// fails mid-run — the orphaned temp file survives until engine shutdown.
func leakInLoop(r *Reservation, rows [][]byte) error {
	f, err := r.NewSpillFile("run") //lint:expect mustrelease
	if err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := f.Write(row); err != nil {
			return err
		}
	}
	return f.Close()
}

// Conn is the pooled-connection stand-in (shardrpc.Pool.Get/Conn.Release).
type Conn struct{}

// Release returns the connection to the pool.
func (c *Conn) Release() {}

// Fail marks it broken without returning it.
func (c *Conn) Fail() {}

// Pool hands out connections.
type Pool struct{}

// Get acquires a connection.
func (p *Pool) Get(addr string) (*Conn, error) { return &Conn{}, nil }

// leakConnOnError marks the connection broken on the failure path but
// never releases it — the socket leaks until process exit.
func leakConnOnError(p *Pool, fail bool) error {
	c, err := p.Get("addr") //lint:expect mustrelease
	if err != nil {
		return err
	}
	if fail {
		c.Fail()
		return errBoom
	}
	c.Release()
	return nil
}
