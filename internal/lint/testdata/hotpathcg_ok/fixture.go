// Package hotcgok is the negative hotpathcg fixture: kernels whose
// helpers are clean, //dashdb:coldpath-annotated, hotpath kernels
// themselves, or abort stubs reached only through guards.
package hotcgok

import "fmt"

// double is a clean helper: no hazards however deep.
func double(x int) int { return x * 2 }

// boundsPanic is an abort stub; guarded calls to it are deliberate
// bounds checks, and nothing inside an abort stub counts as a hazard
// (the fmt.Sprintf below never runs on the hot path — and never
// outlines the caller, because the whole helper is already a call).
func boundsPanic(i, n int) {
	panic(fmt.Sprintf("hotcgok: index %d out of range [0,%d)", i, n))
}

// errNegative builds the failure error off the steady-state path; the
// annotation is the source-visible assertion that makes it exempt.
//
//dashdb:coldpath error construction runs only on failing inputs
func errNegative(x int) error {
	return fmt.Errorf("hotcgok: negative value %d", x)
}

// inner is itself a hotpath kernel: audited as its own root, never
// re-reported through callers.
//
//dashdb:hotpath
func inner(x int) int { return x + 1 }

// kernel stays clean through every hop.
//
//dashdb:hotpath
func kernel(xs []int) int {
	total := 0
	for i, x := range xs {
		if i >= len(xs) {
			boundsPanic(i, len(xs))
		}
		total += double(x) + inner(x)
	}
	return total
}

// kernelErr returns a cold-constructed error on the failure path.
//
//dashdb:hotpath
func kernelErr(xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if x < 0 {
			return 0, errNegative(x)
		}
		total += x
	}
	return total, nil
}
