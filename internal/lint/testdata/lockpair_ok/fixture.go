// Package lockok is the negative lockpair fixture: every acquisition is
// released on all paths with matching flavor, via defer, explicit
// unlocks on each branch, deferred closures, or a deliberate panic.
package lockok

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int
}

// deferUnlock is the canonical pattern: defer discharges the obligation
// on every exit path.
func (c *counter) deferUnlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// readPath pairs RLock with RUnlock.
func (c *counter) readPath() int {
	c.mu.RLock()
	n := c.n
	c.mu.RUnlock()
	return n
}

// bothBranches unlocks explicitly on each path to return.
func (c *counter) bothBranches(add bool) int {
	c.mu.Lock()
	if add {
		c.n++
		c.mu.Unlock()
		return c.n
	}
	c.mu.Unlock()
	return 0
}

// deferredClosure unlocks from inside a deferred closure, which runs on
// every exit path just like a direct defer.
func (c *counter) deferredClosure() {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	c.n++
}

// panicPathExempt abandons the frame deliberately; paths ending in
// panic owe no unlock.
func (c *counter) panicPathExempt(ok bool) {
	c.mu.Lock()
	if !ok {
		panic("lockok: invariant broken")
	}
	c.n++
	c.mu.Unlock()
}

// closureScope locks inside a function literal: the closure is its own
// scope (often a goroutine body) and must not charge the enclosing
// function.
func (c *counter) closureScope() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// loopLocked acquires and releases once per iteration.
func (c *counter) loopLocked(xs []int) {
	for range xs {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}
