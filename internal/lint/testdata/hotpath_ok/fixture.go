// Package kernels is the negative hotpath fixture: clean annotated kernels,
// and formatters outside any annotation.
package kernels

import (
	"fmt"
	"time"
)

// sumStride does pure arithmetic — exactly what a hotpath should be.
//
//dashdb:hotpath
func sumStride(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// timedScan is NOT annotated, so timers and formatters are fine here.
func timedScan(vals []int64) string {
	start := time.Now()
	s := sumStride(vals)
	return fmt.Sprintf("sum=%d in %v", s, time.Since(start))
}
