// Package pinning exercises the epochpin analyzer: executor/planner code
// calling the Table convenience methods pins a fresh epoch per call, so
// two calls in one statement can observe different data versions.
package pinning

// Table is a local stand-in for columnar.Table (fixtures are
// stdlib-only). Each method pins the table's current epoch on entry —
// the behavior the invariant forbids inside exec/plan.
type Table struct{ rows int }

// Rows reports the current epoch's live row count.
func (t *Table) Rows() int { return t.rows }

// Scan streams the current epoch.
func (t *Table) Scan(preds []int, fn func(int) bool) {}

// ParallelScanWithStats streams the current epoch with dop workers.
func (t *Table) ParallelScanWithStats(preds []int, dop int, fn func(int, int) bool) {}

// ColumnStats summarizes a column of the current epoch.
func (t *Table) ColumnStats(ci int) int { return 0 }

// ColumnDict resolves a column's dictionary in the current epoch.
func (t *Table) ColumnDict(ci int) *int { return nil }

// estimate consults table statistics per call — each call may see a
// different epoch than the scan that follows.
func estimate(t *Table) float64 {
	rows := t.Rows()         //lint:expect epochpin
	card := t.ColumnStats(0) //lint:expect epochpin
	return float64(rows) / float64(card+1)
}

// runScan drives scans directly off the table.
func runScan(t *Table, dop int) {
	if dop > 1 {
		t.ParallelScanWithStats(nil, dop, func(int, int) bool { return true }) //lint:expect epochpin
		return
	}
	t.Scan(nil, func(int) bool { return true }) //lint:expect epochpin
}

// eligibility checks compressed-execution eligibility off the current
// epoch instead of the statement's pinned snapshot.
func eligibility(t *Table, ci int) bool {
	return t.ColumnDict(ci) != nil //lint:expect epochpin
}
