// Package pinning holds the negative epochpin fixtures: reads go through
// a pinned Snapshot, so every access in a statement sees one epoch.
package pinning

// Table is a local stand-in for columnar.Table (fixtures are
// stdlib-only).
type Table struct{ rows int }

// Snapshot pins the current epoch and returns a read handle — the
// sanctioned way into table data for executor/planner code.
func (t *Table) Snapshot() *Snapshot { return &Snapshot{rows: t.rows} }

// Rows is forbidden in exec/plan, but monitoring-style callers may be
// granted an explicit, justified exemption.
func (t *Table) Rows() int { return t.rows }

// Snapshot is a local stand-in for columnar.Snapshot: methods mirror the
// Table surface but read the pinned epoch, so calling them is always
// allowed.
type Snapshot struct{ rows int }

// Release unpins the epoch.
func (s *Snapshot) Release() {}

// Rows reports the pinned epoch's live row count.
func (s *Snapshot) Rows() int { return s.rows }

// Scan streams the pinned epoch.
func (s *Snapshot) Scan(preds []int, fn func(int) bool) {}

// ColumnStats summarizes a column of the pinned epoch.
func (s *Snapshot) ColumnStats(ci int) int { return 0 }

// estimate pins once and reads statistics and cardinality from the same
// epoch.
func estimate(t *Table) float64 {
	snap := t.Snapshot()
	defer snap.Release()
	rows := snap.Rows()
	card := snap.ColumnStats(0)
	return float64(rows) / float64(card+1)
}

// runScan drives the scan through the pinned snapshot.
func runScan(t *Table) {
	snap := t.Snapshot()
	defer snap.Release()
	snap.Scan(nil, func(int) bool { return true })
}

// monitorRows is a sanctioned exemption: a monitoring probe that only
// wants "some recent value" and documents why.
func monitorRows(t *Table) int {
	return t.Rows() //dashdb:nolint epochpin monitoring probe reads any recent epoch
}
