// Package quiet proves //dashdb:nolint suppression works in both placements
// (trailing the line, and on the line above) and with analyzer lists.
package quiet

import "strconv"

type closer struct{}

func (c *closer) Close() error { return nil }

func drops(c *closer, s string) int {
	_ = c.Close() //dashdb:nolint droppederr teardown best-effort
	//dashdb:nolint droppederr parse failures fall back to zero
	n, _ := strconv.Atoi(s)
	return n
}

func assertAny(v any) string {
	return v.(string) //dashdb:nolint typeassert caller guarantees a string
}

func detach() {
	go loop() //dashdb:nolint goroutine process-lifetime metrics pump
}

func loop() {
	for {
	}
}
