//dashdb:nolint droppederr typeassert file-wide: fallback shims ignore parse errors by design
package quiet

import "strconv"

// fileScopeDrops would trip droppederr without the file-level directive
// above the package clause.
func fileScopeDrops(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// fileScopeAssert would trip typeassert without the file-level directive.
func fileScopeAssert(v any) int {
	return v.(int)
}
