// Package shards is the negative nocopy fixture: construction, pointer
// access, and by-index iteration never duplicate a shard.
package shards

// Shard is one worker's padded counter block.
//
//dashdb:nocopy
type Shard struct {
	Visited int64
	_       [56]byte
}

// Plain is not annotated, so by-value use is fine.
type Plain struct{ N int64 }

func newShards(dop int) []Shard {
	return make([]Shard, dop)
}

func shard(shards []Shard, w int) *Shard {
	return &shards[w]
}

func sum(shards []Shard) int64 {
	var n int64
	for i := range shards {
		n += shards[i].Visited
	}
	return n
}

func construct() *Shard {
	return &Shard{}
}

func plainCopies(p Plain) Plain {
	q := p
	return q
}
