// Package kernels exercises the hotpath analyzer: annotated functions must
// stay free of timers, formatters, and reflection.
package kernels

import (
	"fmt"
	"time"
)

// sumStride is a per-stride kernel.
//
//dashdb:hotpath
func sumStride(vals []int64) (int64, time.Duration) {
	start := time.Now() //lint:expect hotpath
	var s int64
	for _, v := range vals {
		s += v
	}
	return s, time.Since(start) //lint:expect hotpath
}

// decodeRow formats per row — the classic profile killer.
//
//dashdb:hotpath
func decodeRow(ids []int64) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("row-%d", id)) //lint:expect hotpath
	}
	return out
}
