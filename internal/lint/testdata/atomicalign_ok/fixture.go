// Package counters is the negative atomicalign fixture: 64-bit counters
// first in their struct, explicitly padded, or using the self-aligning
// atomic wrapper types.
package counters

import "sync/atomic"

// aligned leads with its 64-bit fields, so every offset is 0 mod 8.
type aligned struct {
	hits  int64
	total uint64
	ready int32
}

// padded re-aligns a later counter with explicit padding.
type padded struct {
	ready int32
	_     int32
	hits  int64
}

// wrapped relies on atomic.Int64's own alignment guarantee.
type wrapped struct {
	ready int32
	hits  atomic.Int64
}

func bump(a *aligned, p *padded, w *wrapped) int64 {
	atomic.AddInt64(&a.hits, 1)
	atomic.AddUint64(&a.total, 1)
	atomic.AddInt64(&p.hits, 1)
	w.hits.Add(1)
	var local int64
	atomic.AddInt64(&local, 1)
	return atomic.LoadInt64(&a.hits) + w.hits.Load() + local
}
