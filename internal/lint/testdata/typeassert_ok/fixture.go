// Package ops is the negative typeassert fixture: comma-ok assertions and
// type switches fail soft with typed errors.
package ops

import "errors"

type Operator interface{ Next() (int, error) }

type ScanOp struct{ n int }

func (s *ScanOp) Next() (int, error) { return s.n, nil }

type LimitOp struct {
	Child Operator
	Limit int
}

func (l *LimitOp) Next() (int, error) { return l.Limit, nil }

var errBad = errors.New("bad operator")

func pushdown(op Operator) (int, error) {
	scan, ok := op.(*ScanOp)
	if !ok {
		return 0, errBad
	}
	return scan.n, nil
}

func fuse(op Operator) (Operator, error) {
	switch o := op.(type) {
	case *LimitOp:
		return o.Child, nil
	case *ScanOp:
		return o, nil
	}
	return nil, errBad
}
