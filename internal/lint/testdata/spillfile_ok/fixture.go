// Package spill is the negative spillfile fixture: run files created
// through the governed type, Close paths that release every field, and
// structs whose spill state is owned by an enclosing operator.
package spill

import "os"

// SpillFile stands in for the governed run-file type (fixtures import
// only the standard library; the analyzer matches the type by name).
type SpillFile struct{ f *os.File }

func (s *SpillFile) Close() error { return s.f.Close() }

// sorter releases every run it holds.
type sorter struct {
	runs []*SpillFile
	pos  int
}

func (s *sorter) Close() error {
	var firstErr error
	for _, r := range s.runs {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.runs = nil
	return firstErr
}

// partition state has no Close of its own: the enclosing operator owns
// the file lifecycle, so the analyzer leaves it alone.
type partition struct {
	build *SpillFile
	rows  int
}

func (p *partition) reset() {
	p.build = nil
	p.rows = 0
}

// bootstrap is infrastructure, not an operator: a justified direct file
// creation documents itself with a nolint.
func bootstrap(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "bootstrap-*") //dashdb:nolint spillfile catalog bootstrap, not an operator run file
}
