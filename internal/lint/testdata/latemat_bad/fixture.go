// Package kernels exercises the latemat analyzer: hotpath executor
// kernels must keep dictionary codes encoded instead of decoding per
// element.
package kernels

// Dict is a local stand-in for encoding.Dict (fixtures are stdlib-only).
type Dict struct{ dom []string }

// Decode maps one code back to its value.
func (d *Dict) Decode(c uint64) string { return d.dom[c] }

// filterStride compares in value space by decoding every element — the
// exact anti-pattern operate-on-compressed-data execution forbids.
//
//dashdb:hotpath
func filterStride(d *Dict, codes []uint64, want string, sel []int) []int {
	out := sel[:0]
	for i, c := range codes {
		if d.Decode(c) == want { //lint:expect latemat
			out = append(out, i)
		}
	}
	return out
}

// groupKeys decodes inside the build loop instead of once per distinct
// group at emit.
//
//dashdb:hotpath
func groupKeys(d *Dict, codes []uint64) map[string]int {
	counts := make(map[string]int, len(codes))
	for _, c := range codes {
		counts[d.Decode(c)]++ //lint:expect latemat
	}
	return counts
}
