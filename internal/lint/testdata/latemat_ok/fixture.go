// Package kernels holds the negative latemat fixtures: code-space
// kernels, sanctioned materialization sites, non-hotpath helpers, and an
// explicitly suppressed decode.
package kernels

// Dict is a local stand-in for encoding.Dict (fixtures are stdlib-only).
type Dict struct{ dom []string }

// Decode maps one code back to its value.
func (d *Dict) Decode(c uint64) string { return d.dom[c] }

// filterCodes stays entirely in code space — the intended shape.
//
//dashdb:hotpath
func filterCodes(codes []uint64, lo, hi uint64, sel []int) []int {
	out := sel[:0]
	for i, c := range codes {
		if c-lo <= hi-lo {
			out = append(out, i)
		}
	}
	return out
}

// emitGroups is a sanctioned decode point: once per distinct group at
// emit, not once per input row.
//
//dashdb:hotpath
func emitGroups(d *Dict, groupCodes []uint64) []string {
	out := make([]string, len(groupCodes))
	for i, c := range groupCodes {
		out[i] = d.Decode(c)
	}
	return out
}

// materializeColumn is the projection's single materialization pass.
//
//dashdb:hotpath
func materializeColumn(d *Dict, codes []uint64) []string {
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = d.Decode(c)
	}
	return out
}

// debugValue is not a hotpath kernel, so decoding is fine.
func debugValue(d *Dict, c uint64) string { return d.Decode(c) }

// padUnmatched decodes one value on the cold outer-join padding path; the
// suppression documents why the invariant does not apply.
//
//dashdb:hotpath
func padUnmatched(d *Dict, c uint64) string {
	return d.Decode(c) //dashdb:nolint latemat cold path, runs once per unmatched row batch
}
