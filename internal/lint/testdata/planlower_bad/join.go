// Package lowering exercises the planlower analyzer: physical join
// operators must not be constructed outside the lowering package, or the
// planner's join-ordering and build-side passes silently stop applying.
package lowering

// Operator is a local stand-in for exec.Operator (fixtures are
// stdlib-only).
type Operator interface{ Open() error }

// HashJoinOp is a local stand-in for exec.HashJoinOp.
type HashJoinOp struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
}

// Open implements Operator.
func (j *HashJoinOp) Open() error { return nil }

// NestedLoopJoinOp is a local stand-in for exec.NestedLoopJoinOp.
type NestedLoopJoinOp struct {
	Left, Right Operator
}

// Open implements Operator.
func (j *NestedLoopJoinOp) Open() error { return nil }

// buildStarJoin hand-assembles a hash join, bypassing build-side
// selection — the exact anti-pattern the invariant forbids.
func buildStarJoin(fact, dim Operator) Operator {
	return &HashJoinOp{ //lint:expect planlower
		Left:     fact,
		Right:    dim,
		LeftKeys: []int{0}, RightKeys: []int{0},
	}
}

// crossProduct hand-assembles a nested-loop join.
func crossProduct(l, r Operator) Operator {
	j := NestedLoopJoinOp{Left: l, Right: r} //lint:expect planlower
	return &j
}
