// Package lowering holds the negative planlower fixtures: callers route
// join construction through the sanctioned constructors, and non-join
// operator literals stay unflagged.
package lowering

// Operator is a local stand-in for exec.Operator (fixtures are
// stdlib-only).
type Operator interface{ Open() error }

// HashJoinOp is a local stand-in for exec.HashJoinOp.
type HashJoinOp struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
}

// Open implements Operator.
func (j *HashJoinOp) Open() error { return nil }

// ScanOp is an ordinary operator; constructing it anywhere is fine.
type ScanOp struct{ Cols []int }

// Open implements Operator.
func (s *ScanOp) Open() error { return nil }

// HashJoin is the fixture's stand-in for the plan-package constructor;
// the real one lives in internal/plan, which the analyzer exempts by
// path.
func HashJoin(left, right Operator, lk, rk []int) *HashJoinOp {
	return &HashJoinOp{Left: left, Right: right, LeftKeys: lk, RightKeys: rk} //dashdb:nolint planlower fixture stand-in for the exempt lowering package
}

// buildStarJoin assembles the same plan through the constructor — the
// sanctioned shape for library callers.
func buildStarJoin(fact, dim Operator) Operator {
	return HashJoin(fact, dim, []int{0}, []int{0})
}

// scanOnly constructs a non-join operator literal, which is always fine.
func scanOnly() Operator {
	return &ScanOp{Cols: []int{0, 1}}
}
