// Package pool exercises the goroutine analyzer: library goroutines with no
// join and no cancellation leak past their caller.
package pool

import "sync/atomic"

var work atomic.Int64

func churn() {
	for i := 0; i < 1000; i++ {
		work.Add(1)
	}
}

func fireAndForget() {
	go churn()  //lint:expect goroutine
	go func() { //lint:expect goroutine
		for {
			work.Add(1)
		}
	}()
}
