// Package counters exercises the atomicalign analyzer: 64-bit atomics on
// fields that 32-bit targets cannot align.
package counters

import "sync/atomic"

// skewed puts a 4-byte field before the 64-bit counter: on GOARCH=386 the
// counter lands at offset 4 and atomic ops on it fault.
type skewed struct {
	ready int32
	hits  int64
	total uint64
}

type nested struct {
	tag  int32
	mode int32
	// inner starts at offset 8, so inner.hits (offset 4 within skewed)
	// lands at 12 — misaligned.
	inner skewed
}

func bump(s *skewed, n *nested) int64 {
	atomic.AddInt64(&s.hits, 1)         //lint:expect atomicalign
	atomic.AddUint64(&s.total, 1)       //lint:expect atomicalign
	atomic.StoreInt64(&n.inner.hits, 0) //lint:expect atomicalign
	return atomic.LoadInt64(&s.hits)    //lint:expect atomicalign
}
