// Package ops exercises the typeassert analyzer: unchecked assertions in
// operator-style code are latent panics.
package ops

import "errors"

type Operator interface{ Next() (int, error) }

type ScanOp struct{ n int }

func (s *ScanOp) Next() (int, error) { return s.n, nil }

type LimitOp struct {
	Child Operator
	Limit int
}

func (l *LimitOp) Next() (int, error) { return l.Limit, nil }

var errBad = errors.New("bad operator")

func pushdown(op Operator) (int, error) {
	scan := op.(*ScanOp) //lint:expect typeassert
	return scan.n, nil
}

func fuse(op Operator) Operator {
	return op.(*LimitOp).Child //lint:expect typeassert
}

func describe(v any) string {
	return v.(string) //lint:expect typeassert
}
