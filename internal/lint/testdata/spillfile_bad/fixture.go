// Package spill exercises the spillfile analyzer: executor packages must
// not mint temp files directly, and operator structs that hold run files
// must release them on their Close path.
package spill

import "os"

// SpillFile stands in for the governed run-file type (fixtures import
// only the standard library; the analyzer matches the type by name).
type SpillFile struct{ f *os.File }

func (s *SpillFile) Close() error { return s.f.Close() }

func rawRun(dir string) (*os.File, error) {
	return os.CreateTemp(dir, "run-*.spill") //lint:expect spillfile
}

func rawOverwrite(path string) (*os.File, error) {
	return os.Create(path) //lint:expect spillfile
}

func rawAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) //lint:expect spillfile
}

// sorter holds spill runs and declares Close, but Close forgets them.
type sorter struct {
	runs []*SpillFile //lint:expect spillfile
	pos  int
}

func (s *sorter) Close() error {
	s.pos = 0
	return nil
}

// joiner leaks through a direct field rather than a slice.
type joiner struct {
	build *SpillFile //lint:expect spillfile
	probe *SpillFile //lint:expect spillfile
}

func (j *joiner) Close() error { return nil }
