package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerHotPathCG extends the local hotpath analyzer with call-graph
// transitivity: a //dashdb:hotpath kernel must not reach allocating,
// locking, or unconditionally-panicking code through the in-module
// helpers it calls, however deep. The local analyzer already bans direct
// calls into the hotpathBanned table, so this one starts at the kernel's
// callees: every non-hotpath in-module function reachable from a kernel
// is scanned for banned stdlib calls (including fmt.Sprintf inside panic
// guards — never executed, but it pushes the helper past the inlining
// budget so the hot loop pays an outlined call per element), for
// sync.Mutex/RWMutex acquisition, and for abort stubs (functions whose
// body begins with panic) called unconditionally. Guarded calls to abort
// stubs are deliberate bounds checks and stay exempt, as does everything
// inside them. Functions annotated //dashdb:coldpath (error
// constructors, one-time setup) are likewise exempt: the annotation is
// the source-visible assertion that the helper only runs off the
// steady-state path.
//
// Reports are budgeted: at most three paths per kernel, each rendered as
// the call chain from the kernel to the hazard, anchored at the kernel's
// first-hop call site so the fix target is obvious.
var AnalyzerHotPathCG = &Analyzer{
	Name:    "hotpathcg",
	Doc:     "//dashdb:hotpath kernels must not transitively reach allocating/locking/panicking in-module code",
	Collect: collectHotPath,
	RunAll:  runHotPathCG,
}

// hotPathCGBudget caps path reports per kernel so one bad helper used
// everywhere does not drown the rest of the output.
const hotPathCGBudget = 3

func runHotPathCG(pp *ProgramPass) {
	g := buildCallGraph(pp.Pkgs)
	var roots []*cgNode
	for _, n := range g.nodes {
		if n.hot {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].fn.FullName() < roots[j].fn.FullName()
	})
	for _, root := range roots {
		checkHotRoot(pp, g, root)
	}
}

// bfsItem is one frontier entry: the edge being followed, the call chain
// from the root up to (excluding) the edge's target, and the first-hop
// call site inside the root that every diagnostic anchors on.
type bfsItem struct {
	edge     cgEdge
	path     []string
	firstPos token.Pos
}

func checkHotRoot(pp *ProgramPass, g *callGraph, root *cgNode) {
	reports := 0
	visited := map[*types.Func]bool{root.fn: true}
	var queue []bfsItem
	for _, e := range root.edges {
		queue = append(queue, bfsItem{edge: e, path: []string{funcDisplay(root.fn)}, firstPos: e.pos})
	}

	for len(queue) > 0 && reports < hotPathCGBudget {
		item := queue[0]
		queue = queue[1:]
		target := g.node(item.edge.to)
		if target == nil || visited[target.fn] {
			continue // out-of-module (stdlib callees are hazards, not nodes)
		}
		visited[target.fn] = true
		if target.hot {
			continue // annotated kernels are audited as their own roots
		}
		if target.cold {
			// //dashdb:coldpath asserts the function only runs off the
			// steady-state path (error constructors, one-time setup).
			// The annotation is the documented escape hatch: visible in
			// the source, greppable, and cheaper than nolint at every
			// kernel that reaches the helper.
			continue
		}
		chain := append(append([]string{}, item.path...), funcDisplay(target.fn))
		if target.aborts {
			if !item.edge.guarded && reports < hotPathCGBudget {
				pp.Reportf(root.pkg, item.firstPos,
					"hotpath function %s unconditionally reaches %s, which panics immediately: the kernel can never complete (path %s)",
					funcDisplay(root.fn), funcDisplay(target.fn), renderChain(chain))
				reports++
			}
			continue // abort stubs are off the hot path; nothing inside them counts
		}
		hazards := append([]cgHazard{}, target.hazards...)
		sort.Slice(hazards, func(i, j int) bool { return hazards[i].pos < hazards[j].pos })
		for _, h := range hazards {
			if reports >= hotPathCGBudget {
				break
			}
			pp.Reportf(root.pkg, item.firstPos,
				"hotpath function %s transitively %s at %s (path %s): hoist the hazard out of the helper or restructure the kernel",
				funcDisplay(root.fn), h.desc, target.pkg.Fset.Position(h.pos), renderChain(chain))
			reports++
		}
		for _, e := range target.edges {
			if !visited[e.to] {
				queue = append(queue, bfsItem{edge: e, path: chain, firstPos: item.firstPos})
			}
		}
	}
}

// funcDisplay renders a function as "pkg.Name" or "pkg.Recv.Name".
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// renderChain joins a call chain, eliding the middle beyond six hops.
func renderChain(chain []string) string {
	if len(chain) > 6 {
		head := chain[:3]
		tail := chain[len(chain)-2:]
		elided := fmt.Sprintf("… %d more …", len(chain)-5)
		chain = append(append(append([]string{}, head...), elided), tail...)
	}
	return strings.Join(chain, " -> ")
}
