package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerInstrumentWrap enforces the telemetry-weave invariant from the
// observability PR: the bridge adapters RowAdapter and RowsToVecOp must keep
// their concrete types because GroupByOp.VecIngest and HashJoinOp's
// vectorized build probe them with type assertions. Wrapping one in a
// StatsOp/VecStatsOp (directly, or by handing one to Instrument/
// InstrumentVec, which would if their adapter cases were ever dropped) hides
// the concrete type and silently disables the vectorized fast paths.
var AnalyzerInstrumentWrap = &Analyzer{
	Name: "instrumentwrap",
	Doc:  "Instrument/InstrumentVec and StatsOp/VecStatsOp must never wrap RowAdapter or RowsToVecOp",
	Run:  runInstrumentWrap,
}

// adapterName reports whether t is (a pointer to) one of the protected
// bridge adapter types declared in a package named "exec".
func adapterName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "exec" {
		return ""
	}
	switch obj.Name() {
	case "RowAdapter", "RowsToVecOp":
		return obj.Name()
	}
	return ""
}

// execFuncName returns the name of fn if it is one of the instrumenting
// entry points declared in a package named "exec".
func instrumentFuncName(info *types.Info, fn ast.Expr) string {
	var id *ast.Ident
	switch e := fn.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "exec" {
		return ""
	}
	switch obj.Name() {
	case "Instrument", "InstrumentVec":
		return obj.Name()
	}
	return ""
}

// statsOpName reports whether t is the StatsOp or VecStatsOp decorator type
// from a package named "exec".
func statsOpName(t types.Type) string {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "exec" {
		return ""
	}
	switch obj.Name() {
	case "StatsOp", "VecStatsOp":
		return obj.Name()
	}
	return ""
}

func runInstrumentWrap(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := instrumentFuncName(info, n.Fun)
				if fn == "" || len(n.Args) != 1 {
					return true
				}
				if tv, ok := info.Types[n.Args[0]]; ok {
					if ad := adapterName(tv.Type); ad != "" {
						pass.Reportf(n.Pos(),
							"%s must not be handed a *%s: the adapter's concrete type is probed by VecIngest/hash-join fast paths (see exec/instrument.go)", fn, ad)
					}
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok {
					return true
				}
				op := statsOpName(tv.Type)
				if op == "" {
					return true
				}
				for i, el := range n.Elts {
					var val ast.Expr
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Child" {
							continue
						}
						val = kv.Value
					} else if i == 0 {
						val = el // positional: Child is the first field
					} else {
						continue
					}
					if tv, ok := info.Types[val]; ok {
						if ad := adapterName(tv.Type); ad != "" {
							pass.Reportf(val.Pos(),
								"%s must not wrap *%s: stats decoration hides the adapter's concrete type from VecIngest/hash-join fast paths", op, ad)
						}
					}
				}
			}
			return true
		})
	}
}
