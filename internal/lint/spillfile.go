package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerSpillFile enforces the memory governor's temp-file contract in
// operator code. Spilling operators must obtain run files through
// mem.SpillFile (reservation-accounted, removed on Close, swept after a
// crash) — a direct os.Create/os.CreateTemp/os.OpenFile in an executor
// package bypasses all three guarantees and is how orphaned spill files
// accumulate. And any operator struct that both holds SpillFile fields
// and declares a Close method must actually release those fields on the
// Close path; a Close that forgets a run file leaks it until engine
// shutdown. Structs without a Close of their own (per-run or
// per-partition state owned by an enclosing operator) are exempt.
var AnalyzerSpillFile = &Analyzer{
	Name:  "spillfile",
	Doc:   "operator temp files go through mem.SpillFile, and SpillFile fields must be released on the Close path",
	Match: matchPath("internal/exec"),
	Run:   runSpillFile,
}

// rawTempFuncs are the os entry points that mint files outside the
// governed lifecycle.
var rawTempFuncs = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
}

func runSpillFile(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			if rawTempFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"os.%s in an executor package bypasses the memory governor's temp-file lifecycle; create run files via (*mem.Reservation).NewSpillFile", obj.Name())
			}
			return true
		})
	}
	checkSpillFieldsReleased(pass)
}

// holdsSpillFile reports whether t is, or transitively contains through
// pointers/slices/arrays/map values, a named type called "SpillFile".
func holdsSpillFile(t types.Type, depth int) bool {
	if depth > 4 || t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Name() == "SpillFile" {
			return true
		}
		// Do not descend into other named types: their own Close owns
		// their spill files (e.g. a run struct held by slice).
		return false
	}
	switch u := t.(type) {
	case *types.Pointer:
		return holdsSpillFile(u.Elem(), depth+1)
	case *types.Slice:
		return holdsSpillFile(u.Elem(), depth+1)
	case *types.Array:
		return holdsSpillFile(u.Elem(), depth+1)
	case *types.Map:
		return holdsSpillFile(u.Elem(), depth+1)
	}
	return false
}

// checkSpillFieldsReleased pairs every struct's SpillFile-holding fields
// with its Close method and requires Close to mention each such field.
func checkSpillFieldsReleased(pass *Pass) {
	info := pass.Pkg.Info

	// Gather struct declarations: type name -> SpillFile fields.
	type spillField struct {
		name string
		pos  ast.Node
	}
	structFields := map[string][]spillField{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					tv, ok := info.Types[field.Type]
					if !ok || !holdsSpillFile(tv.Type, 0) {
						continue
					}
					for _, name := range field.Names {
						structFields[ts.Name.Name] = append(structFields[ts.Name.Name],
							spillField{name: name.Name, pos: name})
					}
				}
			}
		}
	}
	if len(structFields) == 0 {
		return
	}

	// Find each type's Close method and the fields it mentions.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Close" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvName := receiverTypeName(fd.Recv.List[0].Type)
			fields, ok := structFields[recvName]
			if !ok {
				continue
			}
			mentioned := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					mentioned[sel.Sel.Name] = true
				}
				return true
			})
			for _, fld := range fields {
				if !mentioned[fld.name] {
					pass.Reportf(fld.pos.Pos(),
						"%s.%s holds spill files but %s.Close never releases it; leftover runs leak until engine shutdown",
						recvName, fld.name, recvName)
				}
			}
			delete(structFields, recvName)
		}
	}
}

// receiverTypeName unwraps a method receiver type expression to its
// identifier ("*SortOp" and "SortOp" both yield "SortOp").
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}
