package lint

import (
	"go/ast"
	gotypes "go/types"
	"strings"
)

// AnalyzerPlanLower enforces the logical-plan layering invariant: physical
// join operators (exec.HashJoinOp, exec.NestedLoopJoinOp) are constructed
// only by the lowering pass in internal/plan — which owns join ordering,
// build/probe side selection, and the column-order restore projection —
// and by internal/exec itself. A composite literal elsewhere silently
// bypasses those passes: the join still returns correct rows, which is
// exactly why only a linter catches it. Library callers that assemble
// executor trees directly (workload simulators, benchmarks) go through
// plan.HashJoin / plan.NestedLoopJoin instead.
var AnalyzerPlanLower = &Analyzer{
	Name: "planlower",
	Doc:  "exec join operators are constructed only in internal/plan and internal/exec; use plan.Lower or the plan constructors elsewhere",
	Match: func(path string) bool {
		if strings.HasPrefix(path, "fixture/") {
			return true
		}
		// The lowering pass and the executor itself are the sanctioned
		// construction sites.
		if strings.Contains(path, "internal/plan") || strings.Contains(path, "internal/exec") {
			return false
		}
		return true
	},
	Run: runPlanLower,
}

// isJoinOpType reports whether t is a *JoinOp-named operator type from
// the executor package (or a fixture's local stand-in).
func isJoinOpType(t gotypes.Type) bool {
	if p, ok := t.(*gotypes.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*gotypes.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "JoinOp") {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return strings.HasSuffix(pkg.Path(), "internal/exec") ||
		strings.HasPrefix(pkg.Path(), "fixture/")
}

func runPlanLower(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := info.TypeOf(cl)
			if t == nil || !isJoinOpType(t) {
				return true
			}
			name := t
			if p, ok := name.(*gotypes.Pointer); ok {
				name = p.Elem()
			}
			pass.Reportf(cl.Pos(),
				"%s constructed outside the physical-lowering package: route through plan.Lower (SQL) or plan.HashJoin/plan.NestedLoopJoin (library callers) so join ordering and build-side selection apply",
				name.(*gotypes.Named).Obj().Name())
			return true
		})
	}
}
