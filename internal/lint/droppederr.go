package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDroppedErr flags error values assigned to the blank identifier,
// repo-wide. A `_ = f()` or `v, _ := g()` that discards an error is how
// corruption hides: the deployment-simplicity story (paper §II.A) depends
// on the engine surfacing its own failures, not on an operator noticing a
// half-written spill file. Deliberate drops must say so with
// `//dashdb:nolint droppederr <why>` so the justification is in the diff.
var AnalyzerDroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "no error values assigned to _ without a //dashdb:nolint droppederr justification",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Tuple assignment: a, _ := f()
					results := tupleTypes(info, n.Rhs[0])
					for i, lhs := range n.Lhs {
						if isBlank(lhs) && i < len(results) && isErrorType(results[i]) {
							pass.Reportf(lhs.Pos(),
								"error result of %s dropped via _; handle it or annotate //dashdb:nolint droppederr with a reason", callName(n.Rhs[0]))
						}
					}
					return true
				}
				for i, lhs := range n.Lhs {
					if !isBlank(lhs) || i >= len(n.Rhs) {
						continue
					}
					if tv, ok := info.Types[n.Rhs[i]]; ok && isErrorType(tv.Type) {
						pass.Reportf(lhs.Pos(),
							"error value %s dropped via _; handle it or annotate //dashdb:nolint droppederr with a reason", callName(n.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) > 1 {
					results := tupleTypes(info, n.Values[0])
					for i, name := range n.Names {
						if name.Name == "_" && i < len(results) && isErrorType(results[i]) {
							pass.Reportf(name.Pos(),
								"error result of %s dropped via _; handle it or annotate //dashdb:nolint droppederr with a reason", callName(n.Values[0]))
						}
					}
					return true
				}
				for i, name := range n.Names {
					if name.Name != "_" || i >= len(n.Values) {
						continue
					}
					if tv, ok := info.Types[n.Values[i]]; ok && isErrorType(tv.Type) {
						pass.Reportf(name.Pos(),
							"error value %s dropped via _; handle it or annotate //dashdb:nolint droppederr with a reason", callName(n.Values[i]))
					}
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// tupleTypes returns the per-position result types of a (possibly
// multi-value) expression.
func tupleTypes(info *types.Info, e ast.Expr) []types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tup.Len())
		for i := 0; i < tup.Len(); i++ {
			out[i] = tup.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// callName names the dropped expression for the diagnostic.
func callName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return fn.Name + "()"
		case *ast.SelectorExpr:
			return fn.Sel.Name + "()"
		}
		return "call"
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "expression"
}
