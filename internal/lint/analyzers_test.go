package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectation is one //lint:expect marker: analyzer `name` must fire on
// `line` of `file`.
type expectation struct {
	file string
	line int
	name string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d [%s]", filepath.Base(e.file), e.line, e.name)
}

// readExpectations scans a fixture dir for //lint:expect markers. A marker
// may name several analyzers: //lint:expect droppederr typeassert
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := os.Open(full)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "//lint:expect")
			if idx < 0 {
				continue
			}
			names := strings.Fields(text[idx+len("//lint:expect"):])
			if len(names) == 0 {
				t.Fatalf("%s:%d: //lint:expect with no analyzer names", full, line)
			}
			for _, n := range names {
				out = append(out, expectation{file: full, line: line, name: n})
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestFixtures runs the FULL analyzer suite over every fixture directory
// and requires the findings to match the //lint:expect markers exactly.
// *_ok fixtures carry no markers, so they double as negative tests for
// every analyzer at once.
func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	testdata := filepath.Join(root, "internal", "lint", "testdata")
	entries, err := os.ReadDir(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(testdata, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := loader.LoadFixtureDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) != 0 {
				t.Fatalf("fixture must type-check cleanly, got: %v", pkg.TypeErrors)
			}
			want := readExpectations(t, dir)
			got := Run([]*Package{pkg}, All())

			type key struct {
				file string
				line int
				name string
			}
			wantSet := map[key]bool{}
			for _, w := range want {
				wantSet[key{w.file, w.line, w.name}] = true
			}
			gotSet := map[key]bool{}
			for _, d := range got {
				gotSet[key{d.File, d.Line, d.Analyzer}] = true
			}
			var problems []string
			for k := range wantSet {
				if !gotSet[k] {
					problems = append(problems, fmt.Sprintf("missing: %s:%d [%s]", filepath.Base(k.file), k.line, k.name))
				}
			}
			for k := range gotSet {
				if !wantSet[k] {
					problems = append(problems, fmt.Sprintf("unexpected: %s:%d [%s]", filepath.Base(k.file), k.line, k.name))
				}
			}
			if len(problems) > 0 {
				sort.Strings(problems)
				for _, d := range got {
					t.Logf("got: %s", d)
				}
				t.Fatalf("diagnostic mismatch:\n  %s", strings.Join(problems, "\n  "))
			}
		})
	}
}

// TestAnalyzerRoster pins the suite: the PR's acceptance criteria require
// at least 6 distinct invariants, each with positive and negative fixtures.
func TestAnalyzerRoster(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("analyzer suite has %d analyzers, want >= 6", len(all))
	}
	root := moduleRoot(t)
	testdata := filepath.Join(root, "internal", "lint", "testdata")
	for _, a := range all {
		pos := a.Name + "_bad"
		if a.Name == "droppederr" || a.Name == "typeassert" || a.Name == "goroutine" {
			// These also have dedicated suppression coverage in nolint_ok.
		}
		if _, err := os.Stat(filepath.Join(testdata, pos)); err != nil {
			t.Errorf("analyzer %s has no positive fixture %s", a.Name, pos)
		}
		neg := a.Name + "_ok"
		if _, err := os.Stat(filepath.Join(testdata, neg)); err != nil {
			t.Errorf("analyzer %s has no negative fixture %s", a.Name, neg)
		}
	}
}

// TestNolintScopes pins the two //dashdb:nolint scopes directly against
// collectNolint: a directive above the package clause covers the whole
// file (and only the analyzers it names), while a line directive covers
// exactly its line. The nolint_ok fixture exercises both end-to-end;
// this test makes the scope boundaries themselves explicit.
func TestNolintScopes(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "nolint_ok")
	pkg, err := NewLoader(root).LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	set := collectNolint([]*Package{pkg})

	fileScoped := filepath.Join(dir, "filescope.go")
	for _, name := range []string{"droppederr", "typeassert"} {
		if !set.covers(Diagnostic{File: fileScoped, Line: 999, Analyzer: name}) {
			t.Errorf("file-level directive does not suppress %s across the whole file", name)
		}
	}
	if set.covers(Diagnostic{File: fileScoped, Line: 999, Analyzer: "goroutine"}) {
		t.Error("file-level directive suppressed an analyzer it does not name")
	}

	lineScoped := filepath.Join(dir, "fixture.go")
	// Line 12 carries a trailing droppederr directive; neighboring lines
	// must stay unsuppressed.
	if !set.covers(Diagnostic{File: lineScoped, Line: 12, Analyzer: "droppederr"}) {
		t.Error("trailing directive does not suppress its own line")
	}
	for _, line := range []int{11, 15} {
		if set.covers(Diagnostic{File: lineScoped, Line: line, Analyzer: "droppederr"}) {
			t.Errorf("line directive leaked to line %d: line scope must stay line-sized", line)
		}
	}
}

// TestByName exercises the analyzer-subset flag plumbing.
func TestByName(t *testing.T) {
	got, err := ByName("droppederr, typeassert")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "droppederr" || got[1].Name != "typeassert" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
}
