package shardrpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"dashdb/internal/sql"
	"dashdb/internal/telemetry"
	"dashdb/internal/types"
)

// Control-plane messages, gob-encoded into frame payloads. Statements
// travel as parsed ASTs (sql.RegisterWire + types.Value's gob codec):
// the coordinator rewrites trees — partial-aggregate select lists,
// shuffle-table substitution — and ships them, so no SQL renderer
// exists anywhere in the protocol.

// Hello opens a connection; the server answers FrameOK.
type Hello struct {
	Node string // client's node name, for server logs/telemetry
}

// PingInfo answers FramePing: which shards this server currently hosts.
type PingInfo struct {
	Node   string
	Shards []int
}

// ExecReq runs one parsed statement on one hosted shard. The response is
// FrameResultHdr, zero or more FrameRows, an optional FrameStats, then
// FrameDone — or FrameErr.
type ExecReq struct {
	ShardID   int
	Dialect   sql.Dialect
	Stmt      sql.Statement
	SQL       string // original text, for telemetry/history on the shard
	WithStats bool   // collect ANALYZE records for coordinator merge
	// Token is the statement's idempotency token for DML (0 = none): a
	// shard that already applied and logged this token acknowledges the
	// request without re-executing, so a failover retry after a lost
	// reply cannot double-apply (see the Server applied log).
	Token uint64
}

// ResultHdr carries the non-row part of a core.Result.
type ResultHdr struct {
	Columns      []string
	RowsAffected int64
	Message      string
}

// InsertHdr prefixes a FrameInsert payload; the row block follows
// immediately after the gob stream (see appendGob/splitGob).
type InsertHdr struct {
	ShardID int
	Table   string
	NRows   int
	// Token is the idempotency token shared by every shard bucket of one
	// logical insert (0 = none); same replay protection as ExecReq.Token.
	Token uint64
}

// TableSpec is the catalog entry shipped with AdoptReq so an adopting
// node can reopen (or create) the shard-local slice of every table.
type TableSpec struct {
	Name         string
	ID           uint32
	Schema       types.Schema
	DistributeBy string // "" for replicated tables
	Replicated   bool
}

// ShardAssign tells a server to host one shard with the per-shard
// resources computed by the coordinator: after a failover the surviving
// nodes run more shards each, so every shard gets a smaller buffer
// pool, SORTHEAP/HASHHEAP and DOP (paper Figure 9).
type ShardAssign struct {
	ID          int
	MemBytes    int64
	SortHeap    int64
	HashHeap    int64
	Parallelism int
}

// AdoptReq asks a server to host shards from clusterfs-persisted state.
// Reason is "bootstrap", "failover", "grow" or "shrink" (telemetry).
type AdoptReq struct {
	Shards []ShardAssign
	Tables []TableSpec
	Reason string
}

// ReleaseReq asks a server to stop hosting shards (elastic re-shard:
// the shards move to another node; their file-sets stay on clusterfs).
type ReleaseReq struct {
	Shards []int
}

// RowCountReq asks for a table's live row count on one shard.
type RowCountReq struct {
	ShardID int
	Table   string
}

// PartLoc is one shuffle destination: the server address and the shard
// (= partition owner) on it. Addr "" means the partition stays on the
// sending server (loopback short-circuit).
type PartLoc struct {
	Addr    string
	ShardID int
}

// FragmentReq runs a scan/filter fragment on a shard and shuffles its
// output: the shard executes Sel locally, hash-partitions the result
// rows on Keys across len(Parts) peers, and streams the batches to each
// partition's owner. SenderID/Senders let receivers count per-sender
// EOFs. The response is FrameOK (after the fragment has fully shuffled)
// or FrameErr.
type FragmentReq struct {
	Query    uint64 // coordinator-assigned distributed query ID
	Stage    int    // shuffle stage within the query (0=build, 1=probe)
	ShardID  int
	Dialect  sql.Dialect
	Sel      *sql.SelectStmt
	Keys     []int // key column ordinals in the fragment's output
	Parts    []PartLoc
	SenderID int
	Senders  int
}

// JoinFragReq runs the consuming side of a shuffle join on a shard: the
// server materializes the rows delivered to this shard's partition for
// both stages as the nicknames BuildName/ProbeName, then executes Sel
// (which references those nicknames) in a scratch engine. The response
// is the same stream shape as ExecReq.
type JoinFragReq struct {
	Query       uint64
	ShardID     int
	Part        int // partition ordinal this shard consumes
	Dialect     sql.Dialect
	BuildStage  int
	ProbeStage  int
	BuildName   string
	ProbeName   string
	BuildSchema types.Schema
	ProbeSchema types.Schema
	Senders     int // senders per stage
	Sel         *sql.SelectStmt
	SQL         string
	WithStats   bool
}

// StatsMsg wraps the per-shard ANALYZE record for FrameStats.
type StatsMsg struct {
	Record telemetry.QueryRecord
}

// shuffleHdr is the binary prefix of FrameShuffleData/FrameShuffleEOF
// payloads: uvarint query, stage, partition, sender; data frames append
// a row block. Kept binary (not gob) because it is the per-batch hot
// path.
type shuffleHdr struct {
	Query  uint64
	Stage  int
	Part   int
	Sender int
}

func appendShuffleHdr(dst []byte, h shuffleHdr) []byte {
	dst = binary.AppendUvarint(dst, h.Query)
	dst = binary.AppendUvarint(dst, uint64(h.Stage))
	dst = binary.AppendUvarint(dst, uint64(h.Part))
	dst = binary.AppendUvarint(dst, uint64(h.Sender))
	return dst
}

func decodeShuffleHdr(b []byte) (shuffleHdr, []byte, error) {
	var h shuffleHdr
	var n int
	if h.Query, n = binary.Uvarint(b); n <= 0 {
		return h, nil, fmt.Errorf("shardrpc: shuffle header: truncated query")
	}
	b = b[n:]
	stage, n := binary.Uvarint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("shardrpc: shuffle header: truncated stage")
	}
	b = b[n:]
	part, n := binary.Uvarint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("shardrpc: shuffle header: truncated partition")
	}
	b = b[n:]
	sender, n := binary.Uvarint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("shardrpc: shuffle header: truncated sender")
	}
	b = b[n:]
	h.Stage, h.Part, h.Sender = int(stage), int(part), int(sender)
	return h, b, nil
}

// encodeGob gob-encodes a message for a frame payload.
func encodeGob(msg any) ([]byte, error) {
	sql.RegisterWire()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		return nil, fmt.Errorf("shardrpc: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeGob decodes a frame payload into msg, returning any trailing
// bytes after the gob stream (FrameInsert carries a row block there).
func decodeGob(payload []byte, msg any) ([]byte, error) {
	sql.RegisterWire()
	r := bytes.NewReader(payload)
	if err := gob.NewDecoder(r).Decode(msg); err != nil {
		return nil, fmt.Errorf("shardrpc: decode: %w", err)
	}
	return payload[len(payload)-r.Len():], nil
}
