package shardrpc

import (
	"fmt"
	"sync"
	"time"

	"dashdb/internal/exec"
	"dashdb/internal/types"
)

// Shuffle transport. Each server owns a ShuffleRouter holding one inbox
// per (query, stage, partition). Sending shards deliver row batches
// with FrameShuffleData and announce completion with FrameShuffleEOF;
// an inbox is drained once it has seen one EOF from every sender. The
// router is created before any fragment runs, so batches that arrive
// before the consuming join fragment starts simply queue in the inbox.

// DefaultShuffleWait bounds how long a reader waits for the next batch
// before concluding a peer died mid-shuffle (the failover path then
// re-plans against the surviving membership).
const DefaultShuffleWait = 30 * time.Second

type inboxKey struct {
	query uint64
	stage int
	part  int
}

type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	batches [][]types.Row
	eofs    int
	senders int // 0 until the consumer declares the expected count
	armed   bool
	err     error
}

func newInbox() *inbox {
	in := &inbox{}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// ShuffleRouter owns every inbox on one server.
type ShuffleRouter struct {
	Wait time.Duration // max Recv wait; DefaultShuffleWait if 0

	mu      sync.Mutex
	inboxes map[inboxKey]*inbox
}

// NewShuffleRouter returns an empty router.
func NewShuffleRouter() *ShuffleRouter {
	return &ShuffleRouter{Wait: DefaultShuffleWait, inboxes: make(map[inboxKey]*inbox)}
}

func (r *ShuffleRouter) inbox(k inboxKey) *inbox {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.inboxes[k]
	if !ok {
		in = newInbox()
		r.inboxes[k] = in
	}
	return in
}

// Deliver queues one batch for a partition (called by the server on
// FrameShuffleData and by the loopback sink).
func (r *ShuffleRouter) Deliver(query uint64, stage, part int, rows []types.Row) {
	in := r.inbox(inboxKey{query, stage, part})
	in.mu.Lock()
	in.batches = append(in.batches, rows)
	in.mu.Unlock()
	in.cond.Broadcast()
}

// EOF records one sender's completion for a partition.
func (r *ShuffleRouter) EOF(query uint64, stage, part int) {
	in := r.inbox(inboxKey{query, stage, part})
	in.mu.Lock()
	in.eofs++
	in.mu.Unlock()
	in.cond.Broadcast()
}

// Source returns the exec.ShuffleSource for one partition, declaring
// how many senders must EOF before the stream ends.
func (r *ShuffleRouter) Source(query uint64, stage, part, senders int) exec.ShuffleSource {
	in := r.inbox(inboxKey{query, stage, part})
	in.mu.Lock()
	in.senders = senders
	in.armed = true
	in.mu.Unlock()
	in.cond.Broadcast()
	return &inboxSource{in: in, wait: r.waitFor()}
}

func (r *ShuffleRouter) waitFor() time.Duration {
	if r.Wait > 0 {
		return r.Wait
	}
	return DefaultShuffleWait
}

// FailQuery poisons every inbox of a query so blocked readers unblock
// with an error (server shutdown, peer death).
func (r *ShuffleRouter) FailQuery(query uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, in := range r.inboxes {
		if k.query != query {
			continue
		}
		in.mu.Lock()
		if in.err == nil {
			in.err = err
		}
		in.mu.Unlock()
		in.cond.Broadcast()
	}
}

// Drop discards a query's inboxes after its fragments finish.
func (r *ShuffleRouter) Drop(query uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.inboxes {
		if k.query == query {
			delete(r.inboxes, k)
		}
	}
}

// InboxCount reports how many inboxes the router currently holds
// (leak checks: abandoned queries must not accumulate state).
func (r *ShuffleRouter) InboxCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inboxes)
}

// DropPart discards one partition's inboxes (all stages) once its
// consuming fragment finished; other partitions of the same query may
// still be draining on this server.
func (r *ShuffleRouter) DropPart(query uint64, part int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.inboxes {
		if k.query == query && k.part == part {
			delete(r.inboxes, k)
		}
	}
}

type inboxSource struct {
	in   *inbox
	wait time.Duration
}

// Recv implements exec.ShuffleSource.
func (s *inboxSource) Recv() ([]types.Row, error) {
	in := s.in
	deadline := time.Now().Add(s.wait)
	// The timer callback must hold in.mu before broadcasting: a bare
	// Broadcast can fire between the reader's deadline check and its
	// cond.Wait, and with a dead peer (the very case the timeout exists
	// for) no later Deliver/EOF would ever wake the reader again.
	timer := time.AfterFunc(s.wait, func() {
		in.mu.Lock()
		defer in.mu.Unlock()
		in.cond.Broadcast()
	})
	defer timer.Stop()
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if in.err != nil {
			return nil, in.err
		}
		if len(in.batches) > 0 {
			rows := in.batches[0]
			in.batches = in.batches[1:]
			return rows, nil
		}
		if in.armed && in.eofs >= in.senders {
			return nil, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shardrpc: shuffle read timed out after %v (%d/%d senders done)", s.wait, in.eofs, in.senders)
		}
		in.cond.Wait()
	}
}

// netSink is the sending half: an exec.ShuffleSink that routes each
// partition's batches to its owner, short-circuiting partitions this
// server owns straight into the local router.
type netSink struct {
	pool   *Pool
	router *ShuffleRouter
	self   string // this server's address, for loopback detection
	query  uint64
	stage  int
	sender int
	parts  []PartLoc
}

// NewNetSink builds the sink a fragment writes its shuffle output to.
func NewNetSink(pool *Pool, router *ShuffleRouter, self string, query uint64, stage, sender int, parts []PartLoc) exec.ShuffleSink {
	return &netSink{pool: pool, router: router, self: self, query: query, stage: stage, sender: sender, parts: parts}
}

func (s *netSink) local(p int) bool {
	return s.parts[p].Addr == "" || s.parts[p].Addr == s.self
}

// Send implements exec.ShuffleSink.
func (s *netSink) Send(part int, rows []types.Row) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("shardrpc: shuffle partition %d of %d", part, len(s.parts))
	}
	if s.local(part) {
		s.router.Deliver(s.query, s.stage, part, rows)
		return nil
	}
	return s.pool.SendShuffle(s.parts[part].Addr, shuffleHdr{Query: s.query, Stage: s.stage, Part: part, Sender: s.sender}, rows)
}

// Flush implements exec.ShuffleSink: one EOF per partition.
func (s *netSink) Flush() error {
	for p := range s.parts {
		if s.local(p) {
			s.router.EOF(s.query, s.stage, p)
			continue
		}
		if err := s.pool.SendShuffle(s.parts[p].Addr, shuffleHdr{Query: s.query, Stage: s.stage, Part: p, Sender: s.sender}, nil); err != nil {
			return err
		}
	}
	return nil
}
