package shardrpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"dashdb/internal/telemetry"
	"dashdb/internal/types"
)

// Connection pool. Get hands out a *Conn (dialing if no idle connection
// exists); Release is the single release point — it returns a healthy
// connection to the idle list and closes a broken one. Every Get must
// be paired with Release on all paths (the mustrelease lint enforces
// this protocol).

// Pool default tunables.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultIOTimeout   = 30 * time.Second
	defaultMaxIdle     = 4

	// Retry policy for transient errors (dial refused, connection
	// reset): up to DefaultAttempts tries with doubling backoff from
	// retryBackoff.
	DefaultAttempts = 3
	retryBackoff    = 25 * time.Millisecond
)

// Conn is one pooled protocol connection.
type Conn struct {
	pool   *Pool
	addr   string
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	broken bool
}

// Pool manages connections to shard servers, keyed by address.
type Pool struct {
	DialTimeout time.Duration
	IOTimeout   time.Duration
	MaxIdle     int // per address
	Node        string

	mu     sync.Mutex
	idle   map[string][]*Conn
	closed bool
}

// NewPool returns a pool with default timeouts.
func NewPool(node string) *Pool {
	return &Pool{
		DialTimeout: DefaultDialTimeout,
		IOTimeout:   DefaultIOTimeout,
		MaxIdle:     defaultMaxIdle,
		Node:        node,
		idle:        make(map[string][]*Conn),
	}
}

// Get returns a connection to addr, reusing an idle one when available.
// The caller must call Release on every path.
func (p *Pool) Get(addr string) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("shardrpc: pool closed")
	}
	if free := p.idle[addr]; len(free) > 0 {
		c := free[len(free)-1]
		p.idle[addr] = free[:len(free)-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.dial(addr)
}

func (p *Pool) dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, p.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: dial %s: %w", addr, err)
	}
	c := &Conn{
		pool: p,
		addr: addr,
		c:    nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		bw:   bufio.NewWriterSize(nc, 64<<10),
	}
	hello, err := encodeGob(&Hello{Node: p.Node})
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.write(FrameHello, hello); err != nil {
		nc.Close()
		return nil, err
	}
	if t, payload, err := c.read(); err != nil {
		nc.Close()
		return nil, err
	} else if t == FrameErr {
		nc.Close()
		return nil, fmt.Errorf("shardrpc: %s: %s", addr, payload)
	} else if t != FrameOK {
		nc.Close()
		return nil, fmt.Errorf("shardrpc: %s: unexpected hello reply %d", addr, t)
	}
	return c, nil
}

// Release returns the connection to the pool, or closes it if it broke
// (I/O error, mid-stream abandon). The single release point for the
// Get/Release protocol.
func (c *Conn) Release() {
	p := c.pool
	if c.broken {
		c.c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle[c.addr]) >= p.MaxIdle {
		p.mu.Unlock()
		c.c.Close()
		return
	}
	p.idle[c.addr] = append(p.idle[c.addr], c)
	p.mu.Unlock()
}

// Fail marks the connection broken so Release closes it instead of
// recycling: the protocol stream position is unknown after an error.
func (c *Conn) Fail() { c.broken = true }

// Close closes the pool and every idle connection.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, free := range p.idle {
		for _, c := range free {
			c.c.Close()
		}
	}
	p.idle = nil
}

// write sends one frame under the write deadline and flushes.
func (c *Conn) write(t FrameType, payload []byte) error {
	c.c.SetWriteDeadline(time.Now().Add(c.pool.IOTimeout))
	if err := WriteFrame(c.bw, t, payload); err != nil {
		c.broken = true
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return fmt.Errorf("shardrpc: flush to %s: %w", c.addr, err)
	}
	return nil
}

// read receives one frame under the read deadline.
func (c *Conn) read() (FrameType, []byte, error) {
	c.c.SetReadDeadline(time.Now().Add(c.pool.IOTimeout))
	t, payload, err := ReadFrame(c.br)
	if err != nil {
		c.broken = true
	}
	return t, payload, err
}

// call sends a request frame and reads a single reply frame, mapping
// FrameErr to an error.
func (c *Conn) call(t FrameType, payload []byte) (FrameType, []byte, error) {
	if err := c.write(t, payload); err != nil {
		return FrameInvalid, nil, err
	}
	rt, rp, err := c.read()
	if err != nil {
		return FrameInvalid, nil, err
	}
	if rt == FrameErr {
		return FrameInvalid, nil, &RemoteError{Addr: c.addr, Msg: string(rp)}
	}
	return rt, rp, nil
}

// RemoteError is an error reported by the far side: the request reached
// the server and failed there, so it is NOT transient — retrying would
// re-execute it.
type RemoteError struct {
	Addr string
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("shardrpc: %s: %s", e.Addr, e.Msg) }

// IsTransient reports whether an error is worth a retry on a fresh
// connection: dial failures and transport-level breakage before any
// server-side effect. Remote errors and statement failures are not.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection refused") || strings.Contains(s, "connection reset") || strings.Contains(s, "broken pipe")
}

// Do runs fn with a pooled connection, retrying with doubling backoff
// on transient transport errors. ONLY safe for idempotent requests
// (reads, pings, adopt/release which are level-triggered); DML callers
// must pass attempts=1.
func (p *Pool) Do(addr string, attempts int, fn func(*Conn) error) error {
	if attempts < 1 {
		attempts = 1
	}
	backoff := retryBackoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var c *Conn
		c, err = p.Get(addr)
		if err == nil {
			err = fn(c)
			c.Release()
		}
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// Ping probes a server, returning the shards it hosts.
func (p *Pool) Ping(addr string) (PingInfo, error) {
	var info PingInfo
	err := p.Do(addr, 1, func(c *Conn) error {
		t, payload, err := c.call(FramePing, nil)
		if err != nil {
			return err
		}
		if t != FramePong {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected ping reply %d", addr, t)
		}
		_, err = decodeGob(payload, &info)
		return err
	})
	return info, err
}

// Result is a decoded response stream: header, rows and the optional
// per-shard ANALYZE record.
type Result struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int64
	Message      string
	Stats        *telemetry.QueryRecord
}

// readResultStream consumes ResultHdr/Rows/Stats frames until Done.
func (c *Conn) readResultStream() (*Result, error) {
	res := &Result{}
	sawHdr := false
	for {
		t, payload, err := c.read()
		if err != nil {
			return nil, err
		}
		switch t {
		case FrameErr:
			return nil, &RemoteError{Addr: c.addr, Msg: string(payload)}
		case FrameResultHdr:
			var hdr ResultHdr
			if _, err := decodeGob(payload, &hdr); err != nil {
				c.Fail()
				return nil, err
			}
			res.Columns = hdr.Columns
			res.RowsAffected = hdr.RowsAffected
			res.Message = hdr.Message
			sawHdr = true
		case FrameRows:
			rows, err := DecodeRowBlock(payload)
			if err != nil {
				c.Fail()
				return nil, err
			}
			res.Rows = append(res.Rows, rows...)
		case FrameStats:
			var sm StatsMsg
			if _, err := decodeGob(payload, &sm); err != nil {
				c.Fail()
				return nil, err
			}
			rec := sm.Record
			res.Stats = &rec
		case FrameDone:
			if !sawHdr {
				c.Fail()
				return nil, fmt.Errorf("shardrpc: %s: response stream without header", c.addr)
			}
			return res, nil
		default:
			c.Fail()
			return nil, fmt.Errorf("shardrpc: %s: unexpected frame %d in response stream", c.addr, t)
		}
	}
}

// Exec runs one parsed statement on a shard. Not retried: the statement
// may have side effects.
func (p *Pool) Exec(addr string, req ExecReq) (*Result, error) {
	var res *Result
	err := p.Do(addr, 1, func(c *Conn) error {
		payload, err := encodeGob(&req)
		if err != nil {
			return err
		}
		if err := c.write(FrameExec, payload); err != nil {
			return err
		}
		res, err = c.readResultStream()
		return err
	})
	return res, err
}

// Insert ships pre-routed rows to a shard's table. The token (nonzero)
// lets a shard that already durably applied this bucket — but whose
// reply was lost to a node death — acknowledge a coordinator retry
// without inserting the rows twice.
func (p *Pool) Insert(addr string, shardID int, table string, token uint64, rows []types.Row) error {
	hdr, err := encodeGob(&InsertHdr{ShardID: shardID, Table: table, NRows: len(rows), Token: token})
	if err != nil {
		return err
	}
	payload, err := EncodeRowBlock(hdr, rows)
	if err != nil {
		return err
	}
	return p.Do(addr, 1, func(c *Conn) error {
		t, _, err := c.call(FrameInsert, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected insert reply %d", addr, t)
		}
		return nil
	})
}

// Adopt asks a server to host shards. Level-triggered and idempotent,
// so transient failures retry.
func (p *Pool) Adopt(addr string, req AdoptReq) error {
	payload, err := encodeGob(&req)
	if err != nil {
		return err
	}
	return p.Do(addr, DefaultAttempts, func(c *Conn) error {
		t, _, err := c.call(FrameAdopt, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected adopt reply %d", addr, t)
		}
		return nil
	})
}

// Release asks a server to stop hosting shards.
func (p *Pool) Release(addr string, shards []int) error {
	payload, err := encodeGob(&ReleaseReq{Shards: shards})
	if err != nil {
		return err
	}
	return p.Do(addr, DefaultAttempts, func(c *Conn) error {
		t, _, err := c.call(FrameRelease, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected release reply %d", addr, t)
		}
		return nil
	})
}

// RowCount returns a shard table's live row count. Read-only, retried.
func (p *Pool) RowCount(addr string, shardID int, table string) (int64, error) {
	payload, err := encodeGob(&RowCountReq{ShardID: shardID, Table: table})
	if err != nil {
		return 0, err
	}
	var n int64
	err = p.Do(addr, DefaultAttempts, func(c *Conn) error {
		t, rp, err := c.call(FrameRowCount, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected rowcount reply %d", addr, t)
		}
		_, err = decodeGob(rp, &n)
		return err
	})
	return n, err
}

// Fragment runs a scan fragment that shuffles its output. The call
// returns once the shard has fully shuffled (FrameOK).
func (p *Pool) Fragment(addr string, req FragmentReq) error {
	payload, err := encodeGob(&req)
	if err != nil {
		return err
	}
	return p.Do(addr, 1, func(c *Conn) error {
		t, _, err := c.call(FrameFragment, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected fragment reply %d", addr, t)
		}
		return nil
	})
}

// JoinFrag runs the consuming side of a shuffle join on a shard and
// returns its partial result.
func (p *Pool) JoinFrag(addr string, req JoinFragReq) (*Result, error) {
	var res *Result
	err := p.Do(addr, 1, func(c *Conn) error {
		payload, err := encodeGob(&req)
		if err != nil {
			return err
		}
		if err := c.write(FrameJoinFrag, payload); err != nil {
			return err
		}
		res, err = c.readResultStream()
		return err
	})
	return res, err
}

// DropShuffle asks a server to discard every shuffle inbox of a
// distributed query: the coordinator broadcasts it after abandoning a
// failed attempt, so partially delivered batches don't sit in server
// memory for the process lifetime.
func (p *Pool) DropShuffle(addr string, query uint64) error {
	payload := binary.AppendUvarint(nil, query)
	return p.Do(addr, 1, func(c *Conn) error {
		t, _, err := c.call(FrameShuffleDrop, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected shuffle drop reply %d", addr, t)
		}
		return nil
	})
}

// SendShuffle ships one shuffle batch (or EOF when rows is nil) to the
// partition owner's server.
func (p *Pool) SendShuffle(addr string, h shuffleHdr, rows []types.Row) error {
	payload := appendShuffleHdr(nil, h)
	ft := FrameShuffleEOF
	if rows != nil {
		ft = FrameShuffleData
		var err error
		payload, err = EncodeRowBlock(payload, rows)
		if err != nil {
			return err
		}
	}
	return p.Do(addr, 1, func(c *Conn) error {
		t, _, err := c.call(ft, payload)
		if err != nil {
			return err
		}
		if t != FrameOK {
			c.Fail()
			return fmt.Errorf("shardrpc: %s: unexpected shuffle reply %d", addr, t)
		}
		return nil
	})
}
