package shardrpc

import (
	"bufio"
	"net"
	"time"
)

// serverConn is the server side of one protocol connection: buffered
// framing with a write deadline (a dead client must not wedge a handler
// goroutine mid-response). Reads carry no deadline — idle coordinator
// connections are normal.
type serverConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

const serverWriteTimeout = 30 * time.Second

func (c *serverConn) init() {
	c.br = bufio.NewReaderSize(c.nc, 64<<10)
	c.bw = bufio.NewWriterSize(c.nc, 64<<10)
}

func (c *serverConn) read() (FrameType, []byte, error) {
	c.nc.SetReadDeadline(time.Time{})
	return ReadFrame(c.br)
}

func (c *serverConn) write(t FrameType, payload []byte) error {
	c.nc.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}
