package shardrpc

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"dashdb/internal/clusterfs"
	"dashdb/internal/sql"
	"dashdb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, FrameType(1+i%4), p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		ft, got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != FrameType(1+i%4) {
			t.Fatalf("frame %d: type %d", i, ft)
		}
		if len(got) != len(p) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0x00, 1, 1, 0, 0, 0, 0, 0},        // bad magic
		{frameMagic, 9, 1, 0, 0, 0, 0, 0},  // bad version
		{frameMagic, 1, 0, 0, 0, 0, 0, 0},  // invalid type
		{frameMagic, 1, 99, 0, 0, 0, 0, 0}, // type out of range
		{frameMagic, 1, 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}, // oversized
	}
	for i, c := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: accepted garbage header", i)
		}
	}
}

func sampleRows() []types.Row {
	return []types.Row{
		{types.NewInt(1), types.NewString("north"), types.NewFloat(1.5), types.NewBool(true)},
		{types.NewInt(-7), types.NewString("north"), types.NewFloat(math.NaN()), types.NewBool(false)},
		{types.NullOf(types.KindInt), types.NewString("south"), types.NullOf(types.KindFloat), types.NullOf(types.KindBool)},
		{types.NewInt(1 << 40), types.NewString("unique-once"), types.NewFloat(-0.0), types.NewBool(true)},
		{types.NewInt(0), types.NewString("north"), types.NewDate(19000), types.NewTimestamp(1e9)},
	}
}

func TestRowBlockRoundTrip(t *testing.T) {
	rows := sampleRows()
	block, err := EncodeRowBlock(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRowBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			a, b := rows[i][j], got[i][j]
			if a.Kind() != b.Kind() || a.IsNull() != b.IsNull() {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
			if a.IsNull() {
				continue
			}
			if a.Kind() == types.KindFloat {
				if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
					t.Fatalf("row %d col %d: float bits differ", i, j)
				}
				continue
			}
			if types.Compare(a, b) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
	// The repeated "north" strings must have earned a dictionary slot:
	// the block stores the literal once plus codes, so it must be
	// smaller than inline encoding of 3x "north" + the rest.
	if n := bytes.Count(block, []byte("north")); n != 1 {
		t.Fatalf("dictionary not applied: %d inline copies of repeated string", n)
	}
	if n := bytes.Count(block, []byte("unique-once")); n != 1 {
		t.Fatalf("unique string should ship inline once, found %d", n)
	}
}

func TestRowBlockEmpty(t *testing.T) {
	block, err := EncodeRowBlock(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeRowBlock(block)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

// FuzzShuffleFrame fuzzes the two network-facing decoders with raw
// bytes: they must never panic or over-allocate, only return errors.
func FuzzShuffleFrame(f *testing.F) {
	block, _ := EncodeRowBlock(nil, sampleRows())
	f.Add(block)
	var buf bytes.Buffer
	WriteFrame(&buf, FrameShuffleData, appendShuffleHdr(nil, shuffleHdr{Query: 9, Stage: 1, Part: 2, Sender: 3}))
	f.Add(buf.Bytes())
	f.Add([]byte{frameMagic, frameVersion, byte(FrameRows), 0, 0, 0, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeRowBlock(data)
		if h, rest, err := decodeShuffleHdr(data); err == nil {
			_ = h
			DecodeRowBlock(rest)
		}
		ReadFrame(bytes.NewReader(data))
	})
}

// TestWireStatementRoundTrip gob-ships a rewritten AST the way the
// coordinator does and checks the tree survives (the types.Value gob
// codec carries the literals).
func TestWireStatementRoundTrip(t *testing.T) {
	stmts := []string{
		"SELECT region, SUM(amount), COUNT(*) FROM sales WHERE amount > 10.5 AND region <> 'x' GROUP BY region ORDER BY 2 DESC",
		"SELECT a.id, b.v FROM a JOIN b ON a.id = b.id WHERE b.v IN (1, 2, 3)",
		"SELECT CASE WHEN x IS NULL THEN 0 ELSE x + 1 END FROM t",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
	}
	for _, src := range stmts {
		st, err := sql.Parse(src, sql.DialectANSI)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		payload, err := encodeGob(&ExecReq{ShardID: 3, Stmt: st, SQL: src})
		if err != nil {
			t.Fatalf("%s: encode: %v", src, err)
		}
		var got ExecReq
		rest, err := decodeGob(payload, &got)
		if err != nil {
			t.Fatalf("%s: decode: %v", src, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", src, len(rest))
		}
		if !reflect.DeepEqual(st, got.Stmt) {
			t.Fatalf("%s: AST did not survive the wire:\n%#v\nvs\n%#v", src, st, got.Stmt)
		}
	}
}

func TestDecodeGobTrailingBytes(t *testing.T) {
	hdr, err := encodeGob(&InsertHdr{ShardID: 1, Table: "t", NRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	block, err := EncodeRowBlock(hdr, sampleRows()[:2])
	if err != nil {
		t.Fatal(err)
	}
	var got InsertHdr
	rest, err := decodeGob(block, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "t" || got.NRows != 2 {
		t.Fatalf("header %+v", got)
	}
	rows, err := DecodeRowBlock(rest)
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
}

// startTestServer brings up a server hosting two shards with one table.
func startTestServer(t *testing.T, fs *clusterfs.FS) *Server {
	t.Helper()
	s := NewServer("testnode", fs)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	req := AdoptReq{
		Shards: []ShardAssign{
			{ID: 0, MemBytes: 8 << 20, SortHeap: 1 << 20, HashHeap: 1 << 20, Parallelism: 2},
			{ID: 1, MemBytes: 8 << 20, SortHeap: 1 << 20, HashHeap: 1 << 20, Parallelism: 2},
		},
		Tables: []TableSpec{{
			Name: "sales",
			ID:   1,
			Schema: types.Schema{
				{Name: "id", Kind: types.KindInt},
				{Name: "region", Kind: types.KindString, Nullable: true},
				{Name: "amount", Kind: types.KindFloat, Nullable: true},
			},
			DistributeBy: "id",
		}},
		Reason: "bootstrap",
	}
	if err := s.Adopt(req); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerExecInsertRoundTrip(t *testing.T) {
	fs := clusterfs.New()
	s := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()

	rows := []types.Row{
		{types.NewInt(1), types.NewString("north"), types.NewFloat(10)},
		{types.NewInt(2), types.NewString("south"), types.NewFloat(20)},
	}
	if err := p.Insert(s.Addr(), 0, "sales", 1, rows); err != nil {
		t.Fatal(err)
	}
	n, err := p.RowCount(s.Addr(), 0, "sales")
	if err != nil || n != 2 {
		t.Fatalf("rowcount %d err %v", n, err)
	}
	st, err := sql.Parse("SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region", sql.DialectANSI)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: st, WithStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "north" {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Stats == nil {
		t.Fatal("no shard ANALYZE record")
	}
	// Statement errors surface as RemoteError, and the connection stays
	// usable for the next request.
	bad, _ := sql.Parse("SELECT nope FROM missing", sql.DialectANSI)
	if _, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: bad}); err == nil {
		t.Fatal("expected remote error")
	} else if !strings.Contains(strings.ToLower(err.Error()), "missing") {
		t.Fatalf("unexpected error %v", err)
	}
	if _, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: st}); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}
	// Ping reports hosted shards.
	info, err := p.Ping(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Shards) != 2 || info.Node != "testnode" {
		t.Fatalf("ping %+v", info)
	}
}

func TestAdoptAcrossServers(t *testing.T) {
	fs := clusterfs.New()
	s1 := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()
	rows := []types.Row{
		{types.NewInt(1), types.NewString("north"), types.NewFloat(10)},
		{types.NewInt(2), types.NewString("south"), types.NewFloat(20)},
	}
	if err := p.Insert(s1.Addr(), 1, "sales", 2, rows); err != nil {
		t.Fatal(err)
	}
	// "Kill" server 1; a second server over the SAME filesystem adopts
	// shard 1 with smaller budgets and sees the data (Figure 9).
	s1.Close()
	s2 := NewServer("survivor", fs)
	if err := s2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	err := s2.Adopt(AdoptReq{
		Shards: []ShardAssign{{ID: 1, MemBytes: 4 << 20, SortHeap: 512 << 10, HashHeap: 512 << 10, Parallelism: 1}},
		Tables: []TableSpec{{
			Name: "sales", ID: 1,
			Schema: types.Schema{
				{Name: "id", Kind: types.KindInt},
				{Name: "region", Kind: types.KindString, Nullable: true},
				{Name: "amount", Kind: types.KindFloat, Nullable: true},
			},
		}},
		Reason: "failover",
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.RowCount(s2.Addr(), 1, "sales")
	if err != nil || n != 2 {
		t.Fatalf("adopted rowcount %d err %v", n, err)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	fs := clusterfs.New()
	s := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()
	c1, err := p.Get(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c1.Release()
	c2, err := p.Get(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("healthy connection was not reused")
	}
	c2.Fail()
	c2.Release()
	c3, err := p.Get(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Release()
	if c3 == c2 {
		t.Fatal("broken connection was recycled")
	}
}

// TestInsertTokenReplay: a re-sent insert with the same token must not
// duplicate rows — the lost-reply failover retry case. The applied log
// lives on clusterfs, so the dedup must also hold when another server
// adopts the shard after a node death.
func TestInsertTokenReplay(t *testing.T) {
	fs := clusterfs.New()
	s := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()
	rows := []types.Row{
		{types.NewInt(1), types.NewString("north"), types.NewFloat(10)},
		{types.NewInt(2), types.NewString("south"), types.NewFloat(20)},
	}
	for i := 0; i < 3; i++ {
		if err := p.Insert(s.Addr(), 0, "sales", 77, rows); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if n, err := p.RowCount(s.Addr(), 0, "sales"); err != nil || n != 2 {
		t.Fatalf("replayed insert duplicated rows: n=%d err=%v", n, err)
	}
	// Token 0 opts out of dedup.
	if err := p.Insert(s.Addr(), 0, "sales", 0, rows); err != nil {
		t.Fatal(err)
	}
	if n, _ := p.RowCount(s.Addr(), 0, "sales"); n != 4 {
		t.Fatalf("token-0 insert should append: n=%d", n)
	}
	// Kill the server; an adopter over the same filesystem must still
	// recognize the token.
	s.Close()
	s2 := NewServer("survivor", fs)
	if err := s2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Adopt(AdoptReq{
		Shards: []ShardAssign{{ID: 0, MemBytes: 4 << 20, SortHeap: 512 << 10, HashHeap: 512 << 10, Parallelism: 1}},
		Tables: []TableSpec{{
			Name: "sales", ID: 1,
			Schema: types.Schema{
				{Name: "id", Kind: types.KindInt},
				{Name: "region", Kind: types.KindString, Nullable: true},
				{Name: "amount", Kind: types.KindFloat, Nullable: true},
			},
		}},
		Reason: "failover",
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(s2.Addr(), 0, "sales", 77, rows); err != nil {
		t.Fatal(err)
	}
	if n, err := p.RowCount(s2.Addr(), 0, "sales"); err != nil || n != 4 {
		t.Fatalf("adopter re-applied a logged token: n=%d err=%v", n, err)
	}
}

// TestExecTokenReplay: non-idempotent DML retried with the same token
// must acknowledge with the recorded affected count instead of applying
// twice (UPDATE amount = amount + 1 must not add 2).
func TestExecTokenReplay(t *testing.T) {
	fs := clusterfs.New()
	s := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()
	if err := p.Insert(s.Addr(), 0, "sales", 5, []types.Row{
		{types.NewInt(1), types.NewString("north"), types.NewFloat(10)},
	}); err != nil {
		t.Fatal(err)
	}
	upd, err := sql.Parse("UPDATE sales SET amount = amount + 1 WHERE id = 1", sql.DialectANSI)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: upd, Token: 9})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: upd, Token: 9})
	if err != nil {
		t.Fatal(err)
	}
	if replay.RowsAffected != first.RowsAffected {
		t.Fatalf("replay affected %d, first %d", replay.RowsAffected, first.RowsAffected)
	}
	check := func(want float64) {
		t.Helper()
		q, _ := sql.Parse("SELECT amount FROM sales WHERE id = 1", sql.DialectANSI)
		res, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: q})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Float(); got != want {
			t.Fatalf("amount %v, want %v", got, want)
		}
	}
	check(11) // applied once, not twice
	// A fresh token applies again.
	if _, err := p.Exec(s.Addr(), ExecReq{ShardID: 0, Stmt: upd, Token: 10}); err != nil {
		t.Fatal(err)
	}
	check(12)
}

// TestShuffleDropFrame: FrameShuffleDrop discards every inbox of one
// query and leaves other queries' inboxes alone.
func TestShuffleDropFrame(t *testing.T) {
	fs := clusterfs.New()
	s := startTestServer(t, fs)
	p := NewPool("coord")
	defer p.Close()
	rows := []types.Row{{types.NewInt(1)}}
	if err := p.SendShuffle(s.Addr(), shuffleHdr{Query: 7, Stage: 0, Part: 1, Sender: 0}, rows); err != nil {
		t.Fatal(err)
	}
	if err := p.SendShuffle(s.Addr(), shuffleHdr{Query: 8, Stage: 0, Part: 0, Sender: 0}, rows); err != nil {
		t.Fatal(err)
	}
	if got := s.Router().InboxCount(); got != 2 {
		t.Fatalf("inboxes %d, want 2", got)
	}
	if err := p.DropShuffle(s.Addr(), 7); err != nil {
		t.Fatal(err)
	}
	if got := s.Router().InboxCount(); got != 1 {
		t.Fatalf("inboxes after drop %d, want 1 (query 8 untouched)", got)
	}
}

// TestShuffleRecvTimeout: with a dead peer (no EOF ever arrives), Recv
// must return the timeout error rather than blocking forever — the
// timer broadcast must not be lost between the deadline check and
// cond.Wait.
func TestShuffleRecvTimeout(t *testing.T) {
	r := NewShuffleRouter()
	r.Wait = 50 * time.Millisecond
	src := r.Source(1, 0, 0, 2) // two senders, neither will ever EOF
	done := make(chan error, 1)
	go func() {
		_, err := src.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned success with senders outstanding")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv blocked far past its timeout (lost wakeup)")
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(&RemoteError{Addr: "x", Msg: "boom"}) {
		t.Fatal("remote errors must not retry")
	}
	if !IsTransient(errFake("connection refused")) {
		t.Fatal("dial refusal should retry")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }
