package shardrpc

import (
	"encoding/binary"
	"fmt"
	"math"

	"dashdb/internal/types"
)

// Row block codec: the bulk-row payload inside FrameRows, FrameInsert
// and FrameShuffleData frames. It extends the encoding/rowcodec spill
// layout (tag byte = kind | 0x80-null, varint ints, 8-byte LE floats,
// length-prefixed strings) with a per-block string dictionary: strings
// that repeat within the block are written once up front and every
// occurrence ships as a dict code (tag bit 0x40 + uvarint index). This
// is the wire-level analogue of the engine's code-carrying vectors —
// shards cannot assume their column dictionaries agree (each shard
// builds its own domains), so the block is its own dictionary scope and
// the codes are always decodable by the receiver alone.
//
// Layout:
//
//	uvarint  row count
//	uvarint  dictionary size
//	per entry: uvarint length + bytes
//	per row:
//	  uvarint column count
//	  per column:
//	    byte   tag = kind (low 5 bits) | 0x80 NULL | 0x40 dict code
//	    varint            bool/int/date/timestamp payload
//	    8 bytes LE        float bits
//	    uvarint           dict code (0x40 set)
//	    uvarint + bytes   inline string (0x40 clear)
const (
	blockNullBit = 0x80
	blockDictBit = 0x40
	blockKindMax = 0x3F
)

// EncodeRowBlock appends the block encoding of rows to dst.
func EncodeRowBlock(dst []byte, rows []types.Row) ([]byte, error) {
	// First pass: count string occurrences; strings seen twice or more
	// earn a dictionary slot.
	counts := make(map[string]int)
	for _, r := range rows {
		for _, v := range r {
			if v.Kind() == types.KindString && !v.IsNull() {
				counts[v.Str()]++
			}
		}
	}
	dict := make(map[string]uint64)
	var entries []string
	for _, r := range rows {
		for _, v := range r {
			if v.Kind() != types.KindString || v.IsNull() {
				continue
			}
			s := v.Str()
			if counts[s] < 2 {
				continue
			}
			if _, ok := dict[s]; !ok {
				dict[s] = uint64(len(entries))
				entries = append(entries, s)
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, s := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	for _, r := range rows {
		dst = binary.AppendUvarint(dst, uint64(len(r)))
		for _, v := range r {
			k := v.Kind()
			if k > blockKindMax {
				return nil, fmt.Errorf("shardrpc: cannot encode %v value", k)
			}
			tag := byte(k)
			if v.IsNull() {
				dst = append(dst, tag|blockNullBit)
				continue
			}
			switch k {
			case types.KindBool, types.KindInt, types.KindDate, types.KindTimestamp:
				dst = append(dst, tag)
				dst = binary.AppendVarint(dst, v.Int())
			case types.KindFloat:
				dst = append(dst, tag)
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
			case types.KindString:
				s := v.Str()
				if code, ok := dict[s]; ok {
					dst = append(dst, tag|blockDictBit)
					dst = binary.AppendUvarint(dst, code)
				} else {
					dst = append(dst, tag)
					dst = binary.AppendUvarint(dst, uint64(len(s)))
					dst = append(dst, s...)
				}
			default:
				return nil, fmt.Errorf("shardrpc: cannot encode %v value", k)
			}
		}
	}
	return dst, nil
}

// blockReader decodes a row block from a byte slice with allocation
// guards: every length read is checked against the remaining input
// before any allocation, so a hostile block cannot demand more memory
// than its own size.
type blockReader struct {
	b   []byte
	pos int
}

func (br *blockReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(br.b[br.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("shardrpc: row block: truncated uvarint")
	}
	br.pos += n
	return x, nil
}

func (br *blockReader) varint() (int64, error) {
	x, n := binary.Varint(br.b[br.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("shardrpc: row block: truncated varint")
	}
	br.pos += n
	return x, nil
}

func (br *blockReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(br.b)-br.pos) {
		return nil, fmt.Errorf("shardrpc: row block: %d bytes wanted, %d left", n, len(br.b)-br.pos)
	}
	out := br.b[br.pos : br.pos+int(n)]
	br.pos += int(n)
	return out, nil
}

// DecodeRowBlock decodes one row block.
func DecodeRowBlock(data []byte) ([]types.Row, error) {
	br := &blockReader{b: data}
	nRows, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	nDict, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if nDict > uint64(len(data)) {
		return nil, fmt.Errorf("shardrpc: row block: dict size %d exceeds block", nDict)
	}
	dict := make([]string, 0, nDict)
	for i := uint64(0); i < nDict; i++ {
		ln, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := br.bytes(ln)
		if err != nil {
			return nil, err
		}
		dict = append(dict, string(b))
	}
	// Each row costs at least one byte of input; same for each column.
	if nRows > uint64(len(data)) {
		return nil, fmt.Errorf("shardrpc: row block: row count %d exceeds block", nRows)
	}
	rows := make([]types.Row, 0, nRows)
	for i := uint64(0); i < nRows; i++ {
		nCols, err := br.uvarint()
		if err != nil {
			return nil, err
		}
		if nCols > uint64(len(data)-br.pos) {
			return nil, fmt.Errorf("shardrpc: row block: column count %d exceeds block", nCols)
		}
		row := make(types.Row, 0, nCols)
		for c := uint64(0); c < nCols; c++ {
			if br.pos >= len(br.b) {
				return nil, fmt.Errorf("shardrpc: row block: truncated row")
			}
			tag := br.b[br.pos]
			br.pos++
			kind := types.Kind(tag & blockKindMax)
			if tag&blockNullBit != 0 {
				row = append(row, types.NullOf(kind))
				continue
			}
			switch kind {
			case types.KindBool:
				x, err := br.varint()
				if err != nil {
					return nil, err
				}
				row = append(row, types.NewBool(x != 0))
			case types.KindInt, types.KindDate, types.KindTimestamp:
				x, err := br.varint()
				if err != nil {
					return nil, err
				}
				switch kind {
				case types.KindInt:
					row = append(row, types.NewInt(x))
				case types.KindDate:
					row = append(row, types.NewDate(x))
				default:
					row = append(row, types.NewTimestamp(x))
				}
			case types.KindFloat:
				b, err := br.bytes(8)
				if err != nil {
					return nil, err
				}
				row = append(row, types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			case types.KindString:
				if tag&blockDictBit != 0 {
					code, err := br.uvarint()
					if err != nil {
						return nil, err
					}
					if code >= uint64(len(dict)) {
						return nil, fmt.Errorf("shardrpc: row block: dict code %d of %d", code, len(dict))
					}
					row = append(row, types.NewString(dict[code]))
				} else {
					ln, err := br.uvarint()
					if err != nil {
						return nil, err
					}
					b, err := br.bytes(ln)
					if err != nil {
						return nil, err
					}
					row = append(row, types.NewString(string(b)))
				}
			default:
				return nil, fmt.Errorf("shardrpc: row block: bad tag %#x", tag)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
