package shardrpc

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"dashdb/internal/catalog"
	"dashdb/internal/clusterfs"
	"dashdb/internal/columnar"
	"dashdb/internal/core"
	"dashdb/internal/exec"
	"dashdb/internal/sql"
	"dashdb/internal/types"
)

// Server hosts shard engines behind the frame protocol: one OS process
// per node in the paper's deployment. All shard state lives on the
// clustered filesystem, so hosting is a soft association — Adopt opens
// a shard's file-set with the resources the coordinator computed,
// Release drops it, and the same shard can be adopted elsewhere after a
// node death without copying data (§II.E, Figure 9).
type Server struct {
	node   string
	fs     *clusterfs.FS
	pool   *Pool
	router *ShuffleRouter

	mu      sync.RWMutex
	engines map[int]*engineSlot

	appliedMu sync.Mutex // serializes applied-log read-modify-write cycles

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	ln     net.Listener
	addr   string
	wg     sync.WaitGroup
	closed atomic.Bool
}

type engineSlot struct {
	db     *core.DB
	assign ShardAssign
}

// NewServer returns a server over the shared filesystem; it hosts no
// shards until Adopt.
func NewServer(node string, fs *clusterfs.FS) *Server {
	return &Server{
		node:    node,
		fs:      fs,
		pool:    NewPool(node),
		router:  NewShuffleRouter(),
		engines: make(map[int]*engineSlot),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Router exposes the shuffle router (tests and in-process coordinators).
func (s *Server) Router() *ShuffleRouter { return s.router }

// Start listens on addr ("host:0" picks a free port) and serves until
// Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shardrpc: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.addr = ln.Addr().String()
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.addr }

// Node returns the server's node name.
func (s *Server) Node() string { return s.node }

// Shards returns the sorted IDs of the shards this server hosts.
func (s *Server) Shards() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.engines))
	for id := range s.engines {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Engine returns a hosted shard's engine (in-process coordinators and
// the monitoring views).
func (s *Server) Engine(shardID int) (*core.DB, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.engines[shardID]
	if !ok {
		return nil, false
	}
	return slot.db, true
}

// Close stops accepting, persists every hosted shard and shuts down.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.connMu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	for id, slot := range s.engines {
		persistEngine(slot.db)
		slot.db.Close()
		delete(s.engines, id)
	}
	s.mu.Unlock()
	s.pool.Close()
}

// Adopt hosts shards with the given resources, reopening their state
// from the clustered filesystem. Idempotent: adopting an already-hosted
// shard with identical resources is a no-op; changed resources persist
// and reopen the engine with the new budgets (the post-failover "same
// data, smaller heaps" reconfiguration).
func (s *Server) Adopt(req AdoptReq) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range req.Shards {
		if slot, ok := s.engines[a.ID]; ok {
			if slot.assign == a {
				if err := s.ensureTablesLocked(slot, req.Tables); err != nil {
					return err
				}
				continue
			}
			persistEngine(slot.db)
			slot.db.Close()
			delete(s.engines, a.ID)
		}
		db := core.Open(core.Config{
			BufferPoolBytes: int(a.MemBytes),
			Parallelism:     a.Parallelism,
			SortHeapBytes:   a.SortHeap,
			HashHeapBytes:   a.HashHeap,
			Store:           s.fs.ShardStore(a.ID),
		})
		slot := &engineSlot{db: db, assign: a}
		if err := s.ensureTablesLocked(slot, req.Tables); err != nil {
			db.Close()
			return err
		}
		s.engines[a.ID] = slot
	}
	return nil
}

// ensureTablesLocked opens (or creates empty) the shard-local slice of
// every table the coordinator knows about.
func (s *Server) ensureTablesLocked(slot *engineSlot, tables []TableSpec) error {
	var maxID uint32
	for _, t := range tables {
		if t.ID > maxID {
			maxID = t.ID
		}
		if _, ok := slot.db.Table(t.Name); ok {
			continue
		}
		cfg := columnar.Config{Pool: slot.db.Pool(), Store: s.fs.ShardStore(slot.assign.ID)}
		tbl, err := columnar.OpenTable(t.ID, t.Schema, cfg)
		if err != nil {
			// No persisted meta yet: a freshly created shard slice.
			tbl = columnar.NewTable(t.ID, t.Name, t.Schema, cfg)
		}
		if err := slot.db.Catalog().CreateTable(tbl, false); err != nil {
			return fmt.Errorf("shardrpc: adopt shard %d table %s: %w", slot.assign.ID, t.Name, err)
		}
	}
	slot.db.Catalog().EnsureNextID(maxID + 1)
	return nil
}

// Release stops hosting shards after persisting them; their file-sets
// stay on the clustered filesystem for the next owner.
func (s *Server) Release(ids []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		slot, ok := s.engines[id]
		if !ok {
			continue
		}
		persistEngine(slot.db)
		slot.db.Close()
		delete(s.engines, id)
	}
}

// persistEngine saves every table's metadata (including the open
// stride) so another process can reopen the shard losslessly.
func persistEngine(db *core.DB) {
	for _, name := range db.Catalog().TableNames() {
		if tbl, ok := db.Table(name); ok {
			tbl.SaveMeta() //nolint:errcheck — best effort on shutdown
		}
	}
}

// --- DML idempotency ---------------------------------------------------------

// A DML reply can be lost after the shard durably applied the statement:
// the connection breaks between persist and reply read, or the node dies
// right after persisting and a survivor adopts the already-updated state.
// The coordinator's failover retry would then re-apply the statement. To
// close that window each shard keeps a small log of recently applied
// statement tokens on the clustered filesystem, written immediately
// after the engine persists: a retry whose token is already logged is
// acknowledged (with the recorded affected count) without re-executing.
// The log lives in the shard's file-set, so it follows the shard to
// whichever node adopts it after a death. Residual at-least-once window:
// a crash between the engine persist and the token write re-applies one
// statement — two back-to-back clusterfs writes apart, versus the whole
// persist→reply round trip without the log. Concurrent coordinators
// racing distinct DML on one shard can also evict each other's tokens
// once the log wraps (appliedKeep entries), so retries are deduplicated
// best-effort, not transactionally.

// appliedKeep bounds the per-shard applied-token log.
const appliedKeep = 32

type appliedEntry struct {
	Token        uint64
	RowsAffected int64
}

type appliedLog struct {
	Recent []appliedEntry // newest last, at most appliedKeep
}

func appliedPath(shardID int) string {
	return fmt.Sprintf("shards/%04d/applied", shardID)
}

// lookupApplied reports whether this shard already applied the token,
// and the affected count recorded for it.
func (s *Server) lookupApplied(shardID int, token uint64) (int64, bool) {
	if token == 0 {
		return 0, false
	}
	s.appliedMu.Lock()
	defer s.appliedMu.Unlock()
	lg := s.readAppliedLocked(shardID)
	for _, e := range lg.Recent {
		if e.Token == token {
			return e.RowsAffected, true
		}
	}
	return 0, false
}

func (s *Server) readAppliedLocked(shardID int) appliedLog {
	var lg appliedLog
	data, err := s.fs.ReadFile(appliedPath(shardID))
	if err != nil {
		return lg
	}
	decodeGob(data, &lg) //nolint:errcheck — a corrupt log reads as empty
	return lg
}

// markApplied logs a token after the shard state it covers is persisted.
func (s *Server) markApplied(shardID int, token uint64, affected int64) {
	if token == 0 {
		return
	}
	s.appliedMu.Lock()
	defer s.appliedMu.Unlock()
	lg := s.readAppliedLocked(shardID)
	lg.Recent = append(lg.Recent, appliedEntry{Token: token, RowsAffected: affected})
	if len(lg.Recent) > appliedKeep {
		lg.Recent = lg.Recent[len(lg.Recent)-appliedKeep:]
	}
	if data, err := encodeGob(&lg); err == nil {
		s.fs.WriteFile(appliedPath(shardID), data)
	}
}

func (s *Server) engine(shardID int) (*engineSlot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.engines[shardID]
	if !ok {
		return nil, fmt.Errorf("shard %d not hosted on %s", shardID, s.node)
	}
	return slot, nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// handleConn serves one protocol connection: Hello first, then a
// request/response loop. Request handling errors answer FrameErr and
// keep the connection (framing stays intact because payloads are always
// fully read); transport errors end it.
func (s *Server) handleConn(nc net.Conn) {
	s.connMu.Lock()
	s.conns[nc] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, nc)
		s.connMu.Unlock()
		nc.Close()
	}()
	c := serverConn{nc: nc}
	c.init()
	t, _, err := c.read()
	if err != nil || t != FrameHello {
		return
	}
	if err := c.write(FrameOK, nil); err != nil {
		return
	}
	for !s.closed.Load() {
		t, payload, err := c.read()
		if err != nil {
			return
		}
		if err := s.dispatch(&c, t, payload); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(c *serverConn, t FrameType, payload []byte) error {
	reply := func(err error) error {
		if err != nil {
			return c.write(FrameErr, []byte(err.Error()))
		}
		return c.write(FrameOK, nil)
	}
	switch t {
	case FramePing:
		info, err := encodeGob(&PingInfo{Node: s.node, Shards: s.Shards()})
		if err != nil {
			return reply(err)
		}
		return c.write(FramePong, info)
	case FrameExec:
		return s.handleExec(c, payload)
	case FrameInsert:
		return reply(s.handleInsert(payload))
	case FrameFragment:
		return reply(s.handleFragment(payload))
	case FrameJoinFrag:
		return s.handleJoinFrag(c, payload)
	case FrameShuffleData, FrameShuffleEOF:
		return reply(s.handleShuffle(t, payload))
	case FrameShuffleDrop:
		q, n := binary.Uvarint(payload)
		if n <= 0 {
			return reply(fmt.Errorf("shuffle drop: truncated query id"))
		}
		s.router.Drop(q)
		return reply(nil)
	case FrameAdopt:
		var req AdoptReq
		if _, err := decodeGob(payload, &req); err != nil {
			return reply(err)
		}
		return reply(s.Adopt(req))
	case FrameRelease:
		var req ReleaseReq
		if _, err := decodeGob(payload, &req); err != nil {
			return reply(err)
		}
		s.Release(req.Shards)
		return reply(nil)
	case FrameRowCount:
		return s.handleRowCount(c, payload)
	default:
		return reply(fmt.Errorf("unexpected frame type %d", t))
	}
}

// writeResultStream streams a core.Result: header, row blocks, optional
// stats, done.
func writeResultStream(c *serverConn, res *core.Result, withStats bool) error {
	hdr, err := encodeGob(&ResultHdr{Columns: res.Columns, RowsAffected: res.RowsAffected, Message: res.Message})
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	if err := c.write(FrameResultHdr, hdr); err != nil {
		return err
	}
	const blockRows = 4096
	for off := 0; off < len(res.Rows); off += blockRows {
		end := min(off+blockRows, len(res.Rows))
		block, err := EncodeRowBlock(nil, res.Rows[off:end])
		if err != nil {
			return c.write(FrameErr, []byte(err.Error()))
		}
		if err := c.write(FrameRows, block); err != nil {
			return err
		}
	}
	if withStats && res.Stats != nil {
		sm, err := encodeGob(&StatsMsg{Record: *res.Stats})
		if err != nil {
			return c.write(FrameErr, []byte(err.Error()))
		}
		if err := c.write(FrameStats, sm); err != nil {
			return err
		}
	}
	return c.write(FrameDone, nil)
}

// isReadOnly reports whether a statement mutates shard state (used to
// decide whether to persist table metadata afterwards).
func isReadOnly(st sql.Statement) bool {
	switch st.(type) {
	case *sql.SelectStmt, *sql.ExplainStmt, *sql.ValuesStmt, *sql.SetStmt:
		return true
	}
	return false
}

func (s *Server) handleExec(c *serverConn, payload []byte) error {
	var req ExecReq
	if _, err := decodeGob(payload, &req); err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	slot, err := s.engine(req.ShardID)
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	write := !isReadOnly(req.Stmt)
	if write {
		if affected, ok := s.lookupApplied(req.ShardID, req.Token); ok {
			// Lost-reply retry of a statement this shard already durably
			// applied: acknowledge without re-executing it.
			return writeResultStream(c, &core.Result{RowsAffected: affected, Message: "OK"}, false)
		}
	}
	sess := slot.db.NewSession()
	sess.SetDialect(req.Dialect)
	res, err := sess.ExecParsed(req.Stmt)
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	if write {
		persistEngine(slot.db)
		s.markApplied(req.ShardID, req.Token, res.RowsAffected)
	}
	return writeResultStream(c, res, req.WithStats)
}

func (s *Server) handleInsert(payload []byte) error {
	var hdr InsertHdr
	rest, err := decodeGob(payload, &hdr)
	if err != nil {
		return err
	}
	rows, err := DecodeRowBlock(rest)
	if err != nil {
		return err
	}
	slot, err := s.engine(hdr.ShardID)
	if err != nil {
		return err
	}
	if _, ok := s.lookupApplied(hdr.ShardID, hdr.Token); ok {
		return nil // this bucket already landed durably; retry after a lost reply
	}
	tbl, ok := slot.db.Table(hdr.Table)
	if !ok {
		return fmt.Errorf("shard %d missing table %s", hdr.ShardID, hdr.Table)
	}
	if err := tbl.InsertBatch(rows); err != nil {
		return err
	}
	if err := tbl.SaveMeta(); err != nil {
		return err
	}
	s.markApplied(hdr.ShardID, hdr.Token, int64(len(rows)))
	return nil
}

func (s *Server) handleFragment(payload []byte) error {
	var req FragmentReq
	if _, err := decodeGob(payload, &req); err != nil {
		return err
	}
	slot, err := s.engine(req.ShardID)
	if err != nil {
		return err
	}
	sess := slot.db.NewSession()
	sess.SetDialect(req.Dialect)
	res, err := sess.ExecParsed(req.Sel)
	if err != nil {
		return err
	}
	sch := make(types.Schema, len(res.Columns))
	for i, name := range res.Columns {
		sch[i] = types.Column{Name: name, Nullable: true}
	}
	w := &exec.ShuffleWriterOp{
		Child: exec.NewValues(sch, res.Rows),
		Keys:  req.Keys,
		Parts: len(req.Parts),
		Sink:  NewNetSink(s.pool, s.router, s.addr, req.Query, req.Stage, req.SenderID, req.Parts),
	}
	if _, err := exec.Drain(w); err != nil {
		return err
	}
	return nil
}

func (s *Server) handleShuffle(t FrameType, payload []byte) error {
	h, rest, err := decodeShuffleHdr(payload)
	if err != nil {
		return err
	}
	if t == FrameShuffleEOF {
		s.router.EOF(h.Query, h.Stage, h.Part)
		return nil
	}
	rows, err := DecodeRowBlock(rest)
	if err != nil {
		return err
	}
	s.router.Deliver(h.Query, h.Stage, h.Part, rows)
	return nil
}

// shuffleNick adapts one shuffle partition into a catalog nickname: the
// join fragment's scratch engine scans it like any remote table. The
// drain is cached so plan rescans see the same rows.
type shuffleNick struct {
	sch types.Schema
	src exec.ShuffleSource

	once sync.Once
	rows []types.Row
	err  error
}

func (n *shuffleNick) Schema() types.Schema { return n.sch }
func (n *shuffleNick) Origin() string       { return "MPP-SHUFFLE" }

func (n *shuffleNick) ScanAll() ([]types.Row, error) {
	n.once.Do(func() {
		for {
			batch, err := n.src.Recv()
			if err != nil {
				n.err = err
				return
			}
			if batch == nil {
				return
			}
			n.rows = append(n.rows, batch...)
		}
	})
	return n.rows, n.err
}

var _ catalog.RemoteSource = (*shuffleNick)(nil)

func (s *Server) handleJoinFrag(c *serverConn, payload []byte) error {
	var req JoinFragReq
	if _, err := decodeGob(payload, &req); err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	slot, err := s.engine(req.ShardID)
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	// The scratch engine inherits the shard's post-failover budgets, so
	// reduced SORTHEAP/HASHHEAP and DOP govern the join itself (and the
	// 8KB-heap parity tests exercise mid-join spills here).
	scratch := core.Open(core.Config{
		BufferPoolBytes: int(slot.assign.MemBytes),
		Parallelism:     slot.assign.Parallelism,
		SortHeapBytes:   slot.assign.SortHeap,
		HashHeapBytes:   slot.assign.HashHeap,
	})
	defer scratch.Close()
	defer s.router.DropPart(req.Query, req.Part)
	build := &shuffleNick{sch: req.BuildSchema, src: s.router.Source(req.Query, req.BuildStage, req.Part, req.Senders)}
	probe := &shuffleNick{sch: req.ProbeSchema, src: s.router.Source(req.Query, req.ProbeStage, req.Part, req.Senders)}
	if err := scratch.Catalog().CreateNickname(req.BuildName, build); err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	if err := scratch.Catalog().CreateNickname(req.ProbeName, probe); err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	sess := scratch.NewSession()
	sess.SetDialect(req.Dialect)
	res, err := sess.ExecParsed(req.Sel)
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	return writeResultStream(c, res, req.WithStats)
}

func (s *Server) handleRowCount(c *serverConn, payload []byte) error {
	var req RowCountReq
	if _, err := decodeGob(payload, &req); err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	slot, err := s.engine(req.ShardID)
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	tbl, ok := slot.db.Table(req.Table)
	if !ok {
		return c.write(FrameErr, []byte(fmt.Sprintf("shard %d missing table %s", req.ShardID, req.Table)))
	}
	n, err := encodeGob(int64(tbl.Rows()))
	if err != nil {
		return c.write(FrameErr, []byte(err.Error()))
	}
	return c.write(FrameOK, n)
}
