// Package shardrpc is the MPP wire boundary: a length-prefixed binary
// frame protocol over TCP that puts each shard engine behind a server
// process, plus the connection pool and the partitioned-hash shuffle
// transport the coordinator and shards use to move rows. It realizes the
// paper's §II.E deployment — dashDB Local containers on a clustered
// filesystem, shards re-associated between nodes on failure or
// grow/shrink — as real processes instead of the in-process simulation
// in internal/mpp.
//
// Frame layout (all multi-byte integers big-endian):
//
//	byte    magic 0xD5
//	byte    version 1
//	byte    frame type
//	byte    flags (reserved, 0)
//	uint32  payload length (<= MaxFrame)
//	...     payload
//
// Control/meta payloads are gob (messages.go); bulk row payloads use the
// block codec in rowblock.go, which extends the encoding/rowcodec spill
// layout with a per-block string dictionary so repeated strings ship as
// dict codes.
package shardrpc

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	frameMagic   = 0xD5
	frameVersion = 1

	// MaxFrame bounds a single frame payload (64 MiB): a corrupt or
	// hostile length prefix must not become an allocation.
	MaxFrame = 64 << 20

	headerLen = 8
)

// FrameType discriminates protocol frames.
type FrameType uint8

// Frame types. Request frames are even-ish groupings by role; every
// request is answered by OK/Err or a typed response stream ending in
// Done.
const (
	FrameInvalid FrameType = iota
	FrameHello             // gob Hello: first frame on a connection
	FrameOK                // gob payload or empty: generic success
	FrameErr               // utf-8 error text
	FramePing              // empty: liveness probe
	FramePong              // gob PingInfo
	FrameExec              // gob ExecReq: run one statement on a shard
	FrameResultHdr         // gob ResultHdr: columns/affected/message
	FrameRows              // row block: result rows
	FrameStats             // gob telemetry.QueryRecord
	FrameDone              // empty: end of a response stream
	FrameInsert            // gob InsertHdr then row block in same payload
	FrameFragment          // gob FragmentReq: scan fragment -> shuffle
	FrameJoinFrag          // gob JoinFragReq: consume shuffles, run join
	FrameShuffleData       // binary shuffle header + row block
	FrameShuffleEOF        // binary shuffle header, sender is done
	FrameAdopt             // gob AdoptReq: host these shards
	FrameRelease           // gob ReleaseReq: stop hosting these shards
	FrameRowCount          // gob RowCountReq
	FrameShuffleDrop       // uvarint query id: discard that query's shuffle inboxes
	frameTypeMax
)

func (t FrameType) valid() bool { return t > FrameInvalid && t < frameTypeMax }

// WriteFrame writes one frame. The caller owns buffering (Conn writes
// through a bufio.Writer and flushes per message).
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("shardrpc: frame payload %d exceeds %d", len(payload), MaxFrame)
	}
	var hdr [headerLen]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[2] = byte(t)
	hdr[3] = 0
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shardrpc: write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("shardrpc: write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing magic, version and the MaxFrame
// allocation guard. io.EOF before any header byte is returned as io.EOF
// so callers can treat clean connection close distinctly.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return FrameInvalid, nil, io.EOF
		}
		return FrameInvalid, nil, fmt.Errorf("shardrpc: read frame header: %w", err)
	}
	if hdr[0] != frameMagic {
		return FrameInvalid, nil, fmt.Errorf("shardrpc: bad magic %#x", hdr[0])
	}
	if hdr[1] != frameVersion {
		return FrameInvalid, nil, fmt.Errorf("shardrpc: protocol version %d (want %d)", hdr[1], frameVersion)
	}
	t := FrameType(hdr[2])
	if !t.valid() {
		return FrameInvalid, nil, fmt.Errorf("shardrpc: bad frame type %d", hdr[2])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxFrame {
		return FrameInvalid, nil, fmt.Errorf("shardrpc: frame payload %d exceeds %d", n, MaxFrame)
	}
	if n == 0 {
		return t, nil, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return FrameInvalid, nil, fmt.Errorf("shardrpc: read frame payload: %w", err)
	}
	return t, payload, nil
}
