package spark

import (
	"fmt"
	"math"

	"dashdb/internal/types"
)

// GLMFamily selects the generalized linear model link.
type GLMFamily uint8

const (
	// Gaussian is ordinary least-squares linear regression.
	Gaussian GLMFamily = iota
	// Binomial is logistic regression.
	Binomial
)

// GLMConfig tunes training.
type GLMConfig struct {
	Family     GLMFamily
	Iterations int
	LearnRate  float64
	L2         float64
}

// GLMModel is a fitted generalized linear model — the "ready to use
// analytic algorithms like GLM" of §II.D, trained with distributed
// gradient aggregation over the dataset's partitions (each partition's
// gradient is computed by its worker, then merged, MLlib-style).
type GLMModel struct {
	Weights   []float64 // per feature
	Intercept float64
	Family    GLMFamily
	Loss      []float64 // training loss per iteration
}

// glmGrad is the per-partition gradient accumulator.
type glmGrad struct {
	g    []float64
	g0   float64
	loss float64
	n    int
}

// TrainGLM fits a GLM over the dataset's label and feature columns.
func (d *Dataset) TrainGLM(labelCol int, featureCols []int, cfg GLMConfig) (*GLMModel, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.1
	}
	nf := len(featureCols)
	if nf == 0 {
		return nil, fmt.Errorf("spark: GLM needs at least one feature column")
	}
	model := &GLMModel{Weights: make([]float64, nf), Family: cfg.Family}

	// Feature standardization constants (single pass).
	type stats struct {
		sum, sumSq []float64
		n          int
	}
	st, err := AggregateTyped(d,
		func() *stats { return &stats{sum: make([]float64, nf), sumSq: make([]float64, nf)} },
		func(s *stats, row types.Row) *stats {
			for i, fc := range featureCols {
				v, ok := row[fc].AsFloat()
				if !ok {
					return s
				}
				s.sum[i] += v
				s.sumSq[i] += v * v
			}
			s.n++
			return s
		},
		func(x, y *stats) *stats {
			for i := range x.sum {
				x.sum[i] += y.sum[i]
				x.sumSq[i] += y.sumSq[i]
			}
			x.n += y.n
			return x
		},
	)
	if err != nil {
		return nil, err
	}
	if st.n == 0 {
		return nil, fmt.Errorf("spark: GLM has no usable training rows")
	}
	mean := make([]float64, nf)
	scale := make([]float64, nf)
	for i := range mean {
		mean[i] = st.sum[i] / float64(st.n)
		variance := st.sumSq[i]/float64(st.n) - mean[i]*mean[i]
		if variance < 1e-12 {
			scale[i] = 1
		} else {
			scale[i] = math.Sqrt(variance)
		}
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		w, b := model.Weights, model.Intercept
		grad, err := AggregateTyped(d,
			func() *glmGrad { return &glmGrad{g: make([]float64, nf)} },
			func(gr *glmGrad, row types.Row) *glmGrad {
				yv, ok := row[labelCol].AsFloat()
				if !ok {
					return gr
				}
				x := make([]float64, nf)
				for i, fc := range featureCols {
					v, ok := row[fc].AsFloat()
					if !ok {
						return gr
					}
					x[i] = (v - mean[i]) / scale[i]
				}
				pred := b
				for i := range x {
					pred += w[i] * x[i]
				}
				var resid float64
				switch cfg.Family {
				case Binomial:
					p := 1 / (1 + math.Exp(-pred))
					resid = p - yv
					eps := 1e-12
					gr.loss += -(yv*math.Log(p+eps) + (1-yv)*math.Log(1-p+eps))
				default:
					resid = pred - yv
					gr.loss += resid * resid / 2
				}
				for i := range x {
					gr.g[i] += resid * x[i]
				}
				gr.g0 += resid
				gr.n++
				return gr
			},
			func(x, y *glmGrad) *glmGrad {
				for i := range x.g {
					x.g[i] += y.g[i]
				}
				x.g0 += y.g0
				x.loss += y.loss
				x.n += y.n
				return x
			},
		)
		if err != nil {
			return nil, err
		}
		if grad.n == 0 {
			return nil, fmt.Errorf("spark: GLM has no usable training rows")
		}
		n := float64(grad.n)
		for i := range model.Weights {
			model.Weights[i] -= cfg.LearnRate * (grad.g[i]/n + cfg.L2*model.Weights[i])
		}
		model.Intercept -= cfg.LearnRate * grad.g0 / n
		model.Loss = append(model.Loss, grad.loss/n)
	}

	// Fold standardization back into the reported coefficients.
	raw := make([]float64, nf)
	b0 := model.Intercept
	for i := range raw {
		raw[i] = model.Weights[i] / scale[i]
		b0 -= model.Weights[i] * mean[i] / scale[i]
	}
	model.Weights = raw
	model.Intercept = b0
	return model, nil
}

// Predict scores one feature vector.
func (m *GLMModel) Predict(x []float64) float64 {
	pred := m.Intercept
	for i, w := range m.Weights {
		pred += w * x[i]
	}
	if m.Family == Binomial {
		return 1 / (1 + math.Exp(-pred))
	}
	return pred
}

// KMeansModel is a fitted k-means clustering (MLlib's other flagship).
type KMeansModel struct {
	Centers    [][]float64
	Iterations int
}

// KMeans clusters the feature columns into k groups using Lloyd's
// algorithm with distributed assignment (per-partition partial sums).
func (d *Dataset) KMeans(featureCols []int, k, maxIter int) (*KMeansModel, error) {
	X, _, err := d.Features(featureCols[0], featureCols...)
	if err != nil {
		return nil, err
	}
	if len(X) < k || k < 1 {
		return nil, fmt.Errorf("spark: k-means needs at least k=%d rows, have %d", k, len(X))
	}
	nf := len(featureCols)
	// Deterministic init: evenly spaced points of the collected set.
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = append([]float64(nil), X[i*len(X)/k]...)
	}
	model := &KMeansModel{Centers: centers}
	type partial struct {
		sum [][]float64
		cnt []int
	}
	for iter := 0; iter < maxIter; iter++ {
		model.Iterations = iter + 1
		p, err := AggregateTyped(d,
			func() *partial {
				pp := &partial{sum: make([][]float64, k), cnt: make([]int, k)}
				for i := range pp.sum {
					pp.sum[i] = make([]float64, nf)
				}
				return pp
			},
			func(pp *partial, row types.Row) *partial {
				x := make([]float64, nf)
				for i, fc := range featureCols {
					v, ok := row[fc].AsFloat()
					if !ok {
						return pp
					}
					x[i] = v
				}
				best, bestD := 0, math.Inf(1)
				for ci, c := range centers {
					dd := 0.0
					for i := range c {
						diff := x[i] - c[i]
						dd += diff * diff
					}
					if dd < bestD {
						best, bestD = ci, dd
					}
				}
				for i := range x {
					pp.sum[best][i] += x[i]
				}
				pp.cnt[best]++
				return pp
			},
			func(x, y *partial) *partial {
				for ci := range x.sum {
					for i := range x.sum[ci] {
						x.sum[ci][i] += y.sum[ci][i]
					}
					x.cnt[ci] += y.cnt[ci]
				}
				return x
			},
		)
		if err != nil {
			return nil, err
		}
		moved := 0.0
		for ci := range centers {
			if p.cnt[ci] == 0 {
				continue
			}
			for i := range centers[ci] {
				nc := p.sum[ci][i] / float64(p.cnt[ci])
				moved += math.Abs(nc - centers[ci][i])
				centers[ci][i] = nc
			}
		}
		if moved < 1e-9 {
			break
		}
	}
	return model, nil
}

// Assign returns the index of the nearest center.
func (m *KMeansModel) Assign(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for ci, c := range m.Centers {
		dd := 0.0
		for i := range c {
			diff := x[i] - c[i]
			dd += diff * diff
		}
		if dd < bestD {
			best, bestD = ci, dd
		}
	}
	return best
}
