package spark

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func restFixture(t *testing.T) (*Dispatcher, *RESTServer) {
	t.Helper()
	_, d := newDispatcher(t, 500)
	d.RegisterApp("count", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "")
		if err != nil {
			return nil, err
		}
		return ds.Count(), nil
	})
	d.RegisterApp("slow", func(ctx *Context) (interface{}, error) {
		for i := 0; i < 500; i++ {
			time.Sleep(2 * time.Millisecond)
			ctx.checkCancelled()
		}
		return nil, nil
	})
	srv, err := NewRESTServer(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return d, srv
}

func postJob(t *testing.T, srv *RESTServer, user, app string) (int64, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": user, "app": app})
	resp, err := http.Post(srv.URL()+"/spark/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]int64
	json.NewDecoder(resp.Body).Decode(&out)
	return out["jobId"], resp.StatusCode
}

func TestRESTSubmitStatusList(t *testing.T) {
	d, srv := restFixture(t)
	id, code := postJob(t, srv, "ana", "count")
	if code != http.StatusAccepted || id == 0 {
		t.Fatalf("submit: %d id=%d", code, id)
	}
	if _, err := d.Wait(id); err != nil {
		t.Fatal(err)
	}
	// Status.
	resp, err := http.Get(fmt.Sprintf("%s/spark/jobs/%d?user=ana", srv.URL(), id))
	if err != nil {
		t.Fatal(err)
	}
	var job jobJSON
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if job.State != "DONE" || job.App != "count" {
		t.Fatalf("status %+v", job)
	}
	// List.
	resp, err = http.Get(srv.URL() + "/spark/jobs?user=ana")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []jobJSON
	json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].JobID != id {
		t.Fatalf("list %+v", jobs)
	}
}

func TestRESTIsolationAndCancel(t *testing.T) {
	_, srv := restFixture(t)
	id, _ := postJob(t, srv, "ana", "slow")
	// Another user cannot see or cancel it.
	resp, _ := http.Get(fmt.Sprintf("%s/spark/jobs/%d?user=bob", srv.URL(), id))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-user status %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/spark/jobs/%d?user=bob", srv.URL(), id), nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-user cancel %d", resp.StatusCode)
	}
	resp.Body.Close()
	// The owner cancels.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/spark/jobs/%d?user=ana", srv.URL(), id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["state"] != "CANCELLED" {
		t.Fatalf("cancel %+v", out)
	}
}

func TestRESTErrors(t *testing.T) {
	_, srv := restFixture(t)
	// Unregistered app.
	if _, code := postJob(t, srv, "ana", "ghost"); code != http.StatusNotFound {
		t.Fatalf("unknown app: %d", code)
	}
	// Missing user on list.
	resp, _ := http.Get(srv.URL() + "/spark/jobs")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing user: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad job id.
	resp, _ = http.Get(srv.URL() + "/spark/jobs/not-a-number?user=ana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Bad method.
	req, _ := http.NewRequest(http.MethodPut, srv.URL()+"/spark/jobs", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("bad method: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
