// Package spark is a from-scratch reproduction of dashDB Local's
// integrated Apache Spark runtime (paper §II.D, Figures 6–7): a Spark
// Dispatcher co-resident with the database, one Cluster Manager per user
// (isolation: "different users could not see what other users are
// doing"), and one Worker per database shard that fetches its data
// *collocated* over a local socket with optional predicate pushdown
// ("an additional where clause could be pushed to the database to
// transfer only the data really needed").
//
// It is not Apache Spark: it is the closest synthetic equivalent that
// exercises the same architecture — partitioned datasets with a
// functional API, job submission/monitoring, socket-based typed row
// transfer, and MLlib-style algorithms (GLM, k-means) — per the
// substitution rules in DESIGN.md.
package spark

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dashdb/internal/core"
	"dashdb/internal/types"
)

// wireValue is the gob-encodable form of types.Value.
type wireValue struct {
	Kind uint8
	Null bool
	I    int64
	F    float64
	S    string
}

func toWire(v types.Value) wireValue {
	w := wireValue{Kind: uint8(v.Kind()), Null: v.IsNull()}
	if w.Null {
		return w
	}
	switch v.Kind() {
	case types.KindBool:
		if v.Bool() {
			w.I = 1
		}
	case types.KindInt, types.KindDate, types.KindTimestamp:
		w.I = v.Int()
	case types.KindFloat:
		w.F = v.Float()
	case types.KindString:
		w.S = v.Str()
	}
	return w
}

func fromWire(w wireValue) types.Value {
	k := types.Kind(w.Kind)
	if w.Null {
		return types.NullOf(k)
	}
	switch k {
	case types.KindBool:
		return types.NewBool(w.I != 0)
	case types.KindInt:
		return types.NewInt(w.I)
	case types.KindDate:
		return types.NewDate(w.I)
	case types.KindTimestamp:
		return types.NewTimestamp(w.I)
	case types.KindFloat:
		return types.NewFloat(w.F)
	case types.KindString:
		return types.NewString(w.S)
	default:
		return types.Null
	}
}

// fetchRequest asks a shard's data server for a table's local rows,
// optionally filtered by a pushed-down WHERE clause.
type fetchRequest struct {
	Table string
	Where string // SQL predicate text; empty = full transfer
	Cols  []string
}

// fetchChunk is one streamed batch of rows.
type fetchChunk struct {
	Rows [][]wireValue
	Last bool
	Err  string
}

// DataServer exposes one shard engine's tables over a local TCP socket —
// the default socket communication between the database process and the
// Spark process of Figure 7.
type DataServer struct {
	db       *core.DB
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	wg       sync.WaitGroup // joins the accept loop and per-conn handlers
	bytesOut atomic.Int64
	rowsOut  atomic.Int64
}

// NewDataServer starts a data server for the engine on an ephemeral
// loopback port.
func NewDataServer(db *core.DB) (*DataServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("spark: data server listen: %w", err)
	}
	s := &DataServer{db: db, ln: ln}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's dial address.
func (s *DataServer) Addr() string { return s.ln.Addr().String() }

// BytesSent returns the cumulative payload row count sent — the transfer
// metric for the pushdown experiment F-H.
func (s *DataServer) BytesSent() int64 { return s.bytesOut.Load() }

// RowsSent returns the cumulative rows sent.
func (s *DataServer) RowsSent() int64 { return s.rowsOut.Load() }

// Close stops the server and joins the accept loop and every in-flight
// connection handler, so no goroutine outlives the server.
func (s *DataServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *DataServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *DataServer) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req fetchRequest
	if err := dec.Decode(&req); err != nil {
		return
	}
	if err := s.stream(req, enc); err != nil {
		enc.Encode(fetchChunk{Last: true, Err: err.Error()})
	}
}

// stream evaluates the request against the local shard and streams rows.
// The pushed-down WHERE compiles into the same columnar scan predicates a
// SQL query would use, so data skipping and SWAR evaluation apply before
// a single row crosses the socket.
func (s *DataServer) stream(req fetchRequest, enc *gob.Encoder) error {
	if _, ok := s.db.Table(req.Table); !ok {
		return fmt.Errorf("spark: table %s not found on shard", req.Table)
	}
	sess := s.db.NewSession()
	where := ""
	if req.Where != "" {
		where = " WHERE " + req.Where
	}
	proj := "*"
	if len(req.Cols) > 0 {
		proj = ""
		for i, c := range req.Cols {
			if i > 0 {
				proj += ", "
			}
			proj += c
		}
	}
	res, err := sess.Query("SELECT " + proj + " FROM " + req.Table + where)
	if err != nil {
		return err
	}
	const chunkRows = 512
	for off := 0; off < len(res.Rows); off += chunkRows {
		end := off + chunkRows
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		ch := fetchChunk{}
		for _, r := range res.Rows[off:end] {
			wr := make([]wireValue, len(r))
			sz := 0
			for i, v := range r {
				wr[i] = toWire(v)
				sz += 17 + len(wr[i].S)
			}
			ch.Rows = append(ch.Rows, wr)
			s.bytesOut.Add(int64(sz))
		}
		s.rowsOut.Add(int64(len(ch.Rows)))
		if err := enc.Encode(ch); err != nil {
			return err
		}
	}
	return enc.Encode(fetchChunk{Last: true})
}

// fetch dials a data server and pulls the requested rows.
func fetch(addr string, req fetchRequest) ([]types.Row, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("spark: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(req); err != nil {
		return nil, err
	}
	var rows []types.Row
	for {
		var ch fetchChunk
		if err := dec.Decode(&ch); err != nil {
			return nil, fmt.Errorf("spark: fetch stream: %w", err)
		}
		if ch.Err != "" {
			return nil, fmt.Errorf("spark: remote: %s", ch.Err)
		}
		for _, wr := range ch.Rows {
			row := make(types.Row, len(wr))
			for i, w := range wr {
				row[i] = fromWire(w)
			}
			rows = append(rows, row)
		}
		if ch.Last {
			return rows, nil
		}
	}
}
