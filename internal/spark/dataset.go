package spark

import (
	"fmt"
	"sort"
	"sync"

	"dashdb/internal/types"
)

// Context is the handle an application uses to reach its user's cluster:
// the analogue of SparkContext/SparkSession.
type Context struct {
	cm  *ClusterManager
	job *Job
}

// User returns the submitting user.
func (c *Context) User() string { return c.cm.user }

// checkCancelled aborts the application when its job was cancelled.
func (c *Context) checkCancelled() {
	select {
	case <-c.job.cancel:
		panic(cancelledPanic{id: c.job.ID})
	default:
	}
}

// Dataset is a partitioned collection of rows with a functional API — the
// RDD/DataFrame stand-in. One partition per worker, fetched collocated
// from that worker's shard.
type Dataset struct {
	ctx        *Context
	cols       []string
	partitions [][]types.Row
}

// Table loads a table as a Dataset with every worker fetching its own
// shard's rows over the socket channel. where is an optional SQL
// predicate pushed down to each shard ("to transfer only the data really
// needed"); cols optionally projects columns.
func (c *Context) Table(table, where string, cols ...string) (*Dataset, error) {
	c.checkCancelled()
	parts := make([][]types.Row, len(c.cm.workers))
	errs := make([]error, len(c.cm.workers))
	var wg sync.WaitGroup
	for i, w := range c.cm.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			rows, err := fetch(w.DataAddr, fetchRequest{Table: table, Where: where, Cols: cols})
			parts[i], errs[i] = rows, err
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{ctx: c, cols: cols, partitions: parts}, nil
}

// Parallelize distributes in-memory rows across the workers.
func (c *Context) Parallelize(rows []types.Row) *Dataset {
	n := len(c.cm.workers)
	if n == 0 {
		n = 1
	}
	parts := make([][]types.Row, n)
	for i, r := range rows {
		parts[i%n] = append(parts[i%n], r)
	}
	return &Dataset{ctx: c, partitions: parts}
}

// Partitions returns the partition count.
func (d *Dataset) Partitions() int { return len(d.partitions) }

// Count returns the total number of rows.
func (d *Dataset) Count() int {
	d.ctx.checkCancelled()
	n := 0
	for _, p := range d.partitions {
		n += len(p)
	}
	return n
}

// Collect gathers every row to the driver, in partition order.
func (d *Dataset) Collect() []types.Row {
	d.ctx.checkCancelled()
	var out []types.Row
	for _, p := range d.partitions {
		out = append(out, p...)
	}
	return out
}

// Map applies fn to every row, partition-parallel.
func (d *Dataset) Map(fn func(types.Row) types.Row) *Dataset {
	return d.transform(func(part []types.Row) []types.Row {
		out := make([]types.Row, len(part))
		for i, r := range part {
			out[i] = fn(r)
		}
		return out
	})
}

// Filter keeps rows where fn returns true, partition-parallel.
func (d *Dataset) Filter(fn func(types.Row) bool) *Dataset {
	return d.transform(func(part []types.Row) []types.Row {
		var out []types.Row
		for _, r := range part {
			if fn(r) {
				out = append(out, r)
			}
		}
		return out
	})
}

// transform runs a per-partition function concurrently (one goroutine per
// partition simulates one task per worker).
func (d *Dataset) transform(fn func([]types.Row) []types.Row) *Dataset {
	d.ctx.checkCancelled()
	parts := make([][]types.Row, len(d.partitions))
	var wg sync.WaitGroup
	for i, p := range d.partitions {
		wg.Add(1)
		go func(i int, p []types.Row) {
			defer wg.Done()
			parts[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	return &Dataset{ctx: d.ctx, cols: d.cols, partitions: parts}
}

// Aggregate folds every partition with seqOp then merges partials with
// combOp (the treeAggregate shape MLlib uses for gradients).
func (d *Dataset) Aggregate(zero func() interface{}, seqOp func(acc interface{}, row types.Row) interface{}, combOp func(a, b interface{}) interface{}) interface{} {
	d.ctx.checkCancelled()
	partials := make([]interface{}, len(d.partitions))
	var wg sync.WaitGroup
	for i, p := range d.partitions {
		wg.Add(1)
		go func(i int, p []types.Row) {
			defer wg.Done()
			acc := zero()
			for _, r := range p {
				acc = seqOp(acc, r)
			}
			partials[i] = acc
		}(i, p)
	}
	wg.Wait()
	if len(partials) == 0 {
		return zero()
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combOp(acc, p)
	}
	return acc
}

// AccTypeError reports an Aggregate contract violation: a seqOp or combOp
// returned an accumulator of the wrong dynamic type.
type AccTypeError struct {
	Want string
	Got  interface{}
}

func (e *AccTypeError) Error() string {
	return fmt.Sprintf("spark: aggregate accumulator is %T, want %s", e.Got, e.Want)
}

// AggregateTyped is Aggregate with a typed accumulator. It centralizes the
// interface{} boundary in one place with comma-ok conversions, so ML call
// sites carry no unchecked type assertions: a mismatched accumulator (a
// broken seqOp/combOp contract) surfaces as an *AccTypeError instead of a
// panic in the middle of a distributed job.
func AggregateTyped[T any](d *Dataset, zero func() T, seqOp func(T, types.Row) T, combOp func(T, T) T) (T, error) {
	res := d.Aggregate(
		func() interface{} { return zero() },
		func(acc interface{}, row types.Row) interface{} {
			a, ok := acc.(T)
			if !ok {
				return acc // preserve the bad value; reported after the fold
			}
			return seqOp(a, row)
		},
		func(x, y interface{}) interface{} {
			a, aok := x.(T)
			b, bok := y.(T)
			if !aok {
				return x
			}
			if !bok {
				return y
			}
			return combOp(a, b)
		},
	)
	out, ok := res.(T)
	if !ok {
		var want T
		return want, &AccTypeError{Want: fmt.Sprintf("%T", want), Got: res}
	}
	return out, nil
}

// ReduceByKey groups rows by the key column ordinal and reduces the value
// column ordinal with fn (a minimal shuffle).
func (d *Dataset) ReduceByKey(keyCol, valCol int, fn func(a, b types.Value) types.Value) map[types.Value]types.Value {
	d.ctx.checkCancelled()
	out := make(map[types.Value]types.Value)
	for _, p := range d.partitions {
		for _, r := range p {
			k, v := r[keyCol], r[valCol]
			if prev, ok := out[k]; ok {
				out[k] = fn(prev, v)
			} else {
				out[k] = v
			}
		}
	}
	return out
}

// SortedKeys renders a ReduceByKey result deterministically for reports.
func SortedKeys(m map[types.Value]types.Value) []types.Value {
	keys := make([]types.Value, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return types.Compare(keys[i], keys[j]) < 0 })
	return keys
}

// Features extracts float feature vectors plus a label column for the ML
// algorithms; rows with NULL in any used column are skipped.
func (d *Dataset) Features(labelCol int, featureCols ...int) (X [][]float64, y []float64, err error) {
	d.ctx.checkCancelled()
	for _, p := range d.partitions {
		for _, r := range p {
			if labelCol >= len(r) {
				return nil, nil, fmt.Errorf("spark: label column %d out of range", labelCol)
			}
			lv, ok := r[labelCol].AsFloat()
			if !ok {
				continue
			}
			vec := make([]float64, len(featureCols))
			skip := false
			for i, fc := range featureCols {
				if fc >= len(r) {
					return nil, nil, fmt.Errorf("spark: feature column %d out of range", fc)
				}
				fv, ok := r[fc].AsFloat()
				if !ok {
					skip = true
					break
				}
				vec[i] = fv
			}
			if skip {
				continue
			}
			X = append(X, vec)
			y = append(y, lv)
		}
	}
	return X, y, nil
}
