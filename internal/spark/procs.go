package spark

import (
	"fmt"

	"dashdb/internal/core"
	"dashdb/internal/types"
)

// RegisterProcedures installs the SQL stored-procedure interface of §II.D
// ("SQL Stored Procedure interfaces to submit or cancel Spark
// applications") on an engine:
//
//	CALL SPARK_SUBMIT('appName')          → one row: job id
//	CALL SPARK_CANCEL(jobID)              → OK
//	CALL SPARK_STATUS(jobID)              → one row: id, app, state, error
//	CALL SPARK_WAIT(jobID)                → blocks; one row: id, state
//
// The calling session's user keys the per-user cluster manager.
func RegisterProcedures(db *core.DB, d *Dispatcher) {
	db.RegisterProcedure("SPARK_SUBMIT", func(s *core.Session, args []types.Value) (*core.Result, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("spark: SPARK_SUBMIT expects (appName)")
		}
		id, err := d.Submit(s.User(), args[0].Str())
		if err != nil {
			return nil, err
		}
		return &core.Result{
			Columns: []string{"JOB_ID"},
			Rows:    []types.Row{{types.NewInt(id)}},
		}, nil
	})
	db.RegisterProcedure("SPARK_CANCEL", func(s *core.Session, args []types.Value) (*core.Result, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("spark: SPARK_CANCEL expects (jobID)")
		}
		id, _ := args[0].AsInt()
		if err := d.Cancel(id); err != nil {
			return nil, err
		}
		return &core.Result{Message: "CANCELLED"}, nil
	})
	db.RegisterProcedure("SPARK_STATUS", func(s *core.Session, args []types.Value) (*core.Result, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("spark: SPARK_STATUS expects (jobID)")
		}
		id, _ := args[0].AsInt()
		job, err := d.Status(s.User(), id)
		if err != nil {
			return nil, err
		}
		return &core.Result{
			Columns: []string{"JOB_ID", "APP", "STATE", "ERROR"},
			Rows: []types.Row{{
				types.NewInt(job.ID),
				types.NewString(job.App),
				types.NewString(job.State.String()),
				types.NewString(job.Err),
			}},
		}, nil
	})
	db.RegisterProcedure("SPARK_WAIT", func(s *core.Session, args []types.Value) (*core.Result, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("spark: SPARK_WAIT expects (jobID)")
		}
		id, _ := args[0].AsInt()
		if _, err := d.Wait(id); err != nil {
			return nil, err
		}
		job, err := d.Status(s.User(), id)
		if err != nil {
			return nil, err
		}
		return &core.Result{
			Columns: []string{"JOB_ID", "STATE"},
			Rows:    []types.Row{{types.NewInt(job.ID), types.NewString(job.State.String())}},
		}, nil
	})
}
