package spark

import (
	"fmt"
	"sync"
	"time"

	"dashdb/internal/mpp"
)

// JobState tracks a submitted application's lifecycle.
type JobState uint8

const (
	// JobQueued means the job awaits a worker slot.
	JobQueued JobState = iota
	// JobRunning means the application is executing.
	JobRunning
	// JobDone means the application finished successfully.
	JobDone
	// JobFailed means the application returned an error.
	JobFailed
	// JobCancelled means the job was cancelled by the user.
	JobCancelled
)

// String names the state.
func (s JobState) String() string {
	return [...]string{"QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED"}[s]
}

// Job is one submitted application, as visible through the monitoring
// interface (§II.D: "REST API interface to run, cancel, or monitor Spark
// applications").
type Job struct {
	ID        int64
	User      string
	App       string
	State     JobState
	Submitted time.Time
	Finished  time.Time
	Err       string
	cancel    chan struct{}
	done      chan struct{}
	result    interface{}
}

// App is a Spark application: a function over a Context.
type App func(ctx *Context) (interface{}, error)

// Dispatcher is the main controller for every Spark request (Figure 6).
// It creates one ClusterManager per user so users are isolated from each
// other, and dispatches submitted applications onto that user's managers.
type Dispatcher struct {
	cluster *mpp.Cluster

	mu       sync.Mutex
	managers map[string]*ClusterManager
	apps     map[string]App
	jobs     map[int64]*Job
	nextID   int64
	servers  []*DataServer // one per shard, shared by all users
}

// NewDispatcher starts the integrated analytics runtime over the MPP
// cluster: one data server per shard (collocated access) and an empty
// manager map.
func NewDispatcher(cluster *mpp.Cluster) (*Dispatcher, error) {
	d := &Dispatcher{
		cluster:  cluster,
		managers: make(map[string]*ClusterManager),
		apps:     make(map[string]App),
		jobs:     make(map[int64]*Job),
	}
	for _, sh := range cluster.Shards() {
		srv, err := NewDataServer(sh.DB)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.servers = append(d.servers, srv)
	}
	return d, nil
}

// Close stops every data server.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.servers {
		s.Close()
	}
}

// TransferStats sums the socket traffic of all shard data servers — the
// measurement behind the pushdown experiment.
func (d *Dispatcher) TransferStats() (rows, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.servers {
		rows += s.RowsSent()
		bytes += s.BytesSent()
	}
	return rows, bytes
}

// RegisterApp publishes an application under a name, making it callable
// through spark_submit and the SQL stored procedure interface.
func (d *Dispatcher) RegisterApp(name string, app App) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.apps[name] = app
}

// managerFor returns (creating if needed) the user's cluster manager:
// "for each user Apache Spark starts an own Spark Cluster Manager".
func (d *Dispatcher) managerFor(user string) *ClusterManager {
	d.mu.Lock()
	defer d.mu.Unlock()
	cm, ok := d.managers[user]
	if !ok {
		cm = newClusterManager(user, d)
		d.managers[user] = cm
	}
	return cm
}

// Managers returns the number of live per-user cluster managers.
func (d *Dispatcher) Managers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.managers)
}

// Submit runs a registered application asynchronously for the user and
// returns its job ID (the REST submit).
func (d *Dispatcher) Submit(user, appName string) (int64, error) {
	d.mu.Lock()
	app, ok := d.apps[appName]
	d.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("spark: application %s is not registered", appName)
	}
	return d.submitFunc(user, appName, app), nil
}

// SubmitFunc runs an ad-hoc application (the notebook / one-click
// deployment path).
func (d *Dispatcher) SubmitFunc(user, name string, app App) int64 {
	return d.submitFunc(user, name, app)
}

func (d *Dispatcher) submitFunc(user, name string, app App) int64 {
	d.mu.Lock()
	d.nextID++
	job := &Job{
		ID:        d.nextID,
		User:      user,
		App:       name,
		State:     JobQueued,
		Submitted: time.Now(),
		cancel:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	d.jobs[job.ID] = job
	d.mu.Unlock()

	cm := d.managerFor(user)
	go func() {
		defer close(job.done)
		d.setState(job, JobRunning, "")
		ctx := &Context{cm: cm, job: job}
		result, err := func() (res interface{}, err error) {
			defer func() {
				if r := recover(); r != nil {
					if c, ok := r.(cancelledPanic); ok {
						err = fmt.Errorf("spark: job %d cancelled", c.id)
						return
					}
					err = fmt.Errorf("spark: application panic: %v", r)
				}
			}()
			return app(ctx)
		}()
		select {
		case <-job.cancel:
			d.setState(job, JobCancelled, "cancelled by user")
			return
		default:
		}
		if err != nil {
			d.setState(job, JobFailed, err.Error())
			return
		}
		d.mu.Lock()
		job.result = result
		d.mu.Unlock()
		d.setState(job, JobDone, "")
	}()
	return job.ID
}

func (d *Dispatcher) setState(job *Job, st JobState, errMsg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if job.State == JobCancelled {
		return
	}
	job.State = st
	job.Err = errMsg
	if st == JobDone || st == JobFailed || st == JobCancelled {
		job.Finished = time.Now()
	}
}

// Wait blocks until the job completes and returns its result.
func (d *Dispatcher) Wait(id int64) (interface{}, error) {
	d.mu.Lock()
	job, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("spark: job %d not found", id)
	}
	<-job.done
	d.mu.Lock()
	defer d.mu.Unlock()
	if job.State == JobFailed || job.State == JobCancelled {
		return nil, fmt.Errorf("spark: job %d %s: %s", id, job.State, job.Err)
	}
	return job.result, nil
}

// Cancel requests job cancellation (best effort: checked at dataset
// materialization points).
func (d *Dispatcher) Cancel(id int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	job, ok := d.jobs[id]
	if !ok {
		return fmt.Errorf("spark: job %d not found", id)
	}
	if job.State == JobQueued || job.State == JobRunning {
		job.State = JobCancelled
		close(job.cancel)
	}
	return nil
}

// Status returns a snapshot of the job (the monitor interface). The user
// argument enforces isolation: users see only their own jobs.
func (d *Dispatcher) Status(user string, id int64) (Job, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	job, ok := d.jobs[id]
	if !ok || job.User != user {
		return Job{}, fmt.Errorf("spark: job %d not found for user %s", id, user)
	}
	return *job, nil
}

// Jobs lists the user's jobs (isolation as in Status).
func (d *Dispatcher) Jobs(user string) []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Job
	for _, j := range d.jobs {
		if j.User == user {
			out = append(out, *j)
		}
	}
	return out
}

// cancelledPanic unwinds an application when its job is cancelled.
type cancelledPanic struct{ id int64 }

// ClusterManager owns the per-user worker set: one worker per database
// shard, each bound to that shard's collocated data server.
type ClusterManager struct {
	user    string
	d       *Dispatcher
	workers []*Worker
}

func newClusterManager(user string, d *Dispatcher) *ClusterManager {
	cm := &ClusterManager{user: user, d: d}
	for i, sh := range d.cluster.Shards() {
		cm.workers = append(cm.workers, &Worker{
			Shard:    sh.ID,
			DataAddr: d.servers[i].Addr(),
		})
	}
	return cm
}

// Workers returns the manager's worker count (== shard count).
func (cm *ClusterManager) Workers() int { return len(cm.workers) }

// Worker executes partition tasks against one shard's data server.
type Worker struct {
	Shard    int
	DataAddr string
}
