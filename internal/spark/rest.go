package spark

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RESTServer exposes the dispatcher over HTTP — §II.D's first integration
// method: "REST API interface to run, cancel, or monitor Spark
// applications in dashDB".
//
//	POST   /spark/jobs            {"user": "...", "app": "..."} → {"jobId": n}
//	GET    /spark/jobs?user=u     → [job, ...]
//	GET    /spark/jobs/{id}?user=u → job
//	DELETE /spark/jobs/{id}?user=u → {"state": "CANCELLED"}
//
// The user parameter scopes every request: per-user isolation exactly as
// in the programmatic API.
type RESTServer struct {
	d  *Dispatcher
	ln net.Listener
	wg sync.WaitGroup // joins the HTTP serve loop on Close
}

// jobJSON is the wire form of a job snapshot.
type jobJSON struct {
	JobID     int64  `json:"jobId"`
	User      string `json:"user"`
	App       string `json:"app"`
	State     string `json:"state"`
	Submitted string `json:"submitted"`
	Error     string `json:"error,omitempty"`
}

func toJobJSON(j Job) jobJSON {
	return jobJSON{
		JobID:     j.ID,
		User:      j.User,
		App:       j.App,
		State:     j.State.String(),
		Submitted: j.Submitted.UTC().Format(time.RFC3339),
		Error:     j.Err,
	}
}

// NewRESTServer starts the HTTP interface on an ephemeral loopback port.
func NewRESTServer(d *Dispatcher) (*RESTServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("spark: REST listen: %w", err)
	}
	s := &RESTServer{d: d, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/spark/jobs", s.handleJobs)
	mux.HandleFunc("/spark/jobs/", s.handleJob)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve exits with a "use of closed network connection" error when
		// Close tears the listener down; that is the shutdown signal, not a
		// failure.
		_ = http.Serve(ln, mux) //dashdb:nolint droppederr listener close is the shutdown path
	}()
	return s, nil
}

// URL returns the server's base address, e.g. "http://127.0.0.1:43210".
func (s *RESTServer) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server and joins its serve loop.
func (s *RESTServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleJobs serves POST (submit) and GET (list).
func (s *RESTServer) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			User string `json:"user"`
			App  string `json:"app"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.User == "" || req.App == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("user and app are required"))
			return
		}
		id, err := s.d.Submit(req.User, req.App)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int64{"jobId": id})
	case http.MethodGet:
		user := r.URL.Query().Get("user")
		if user == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("user query parameter is required"))
			return
		}
		jobs := s.d.Jobs(user)
		out := make([]jobJSON, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, toJobJSON(j))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleJob serves GET (status) and DELETE (cancel) for one job.
func (s *RESTServer) handleJob(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/spark/jobs/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", idStr))
		return
	}
	user := r.URL.Query().Get("user")
	if user == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user query parameter is required"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		job, err := s.d.Status(user, id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, toJobJSON(job))
	case http.MethodDelete:
		// Isolation: verify ownership before cancelling.
		if _, err := s.d.Status(user, id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if err := s.d.Cancel(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": JobCancelled.String()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}
