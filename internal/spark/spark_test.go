package spark

import (
	"math"
	"testing"
	"time"

	"dashdb/internal/mpp"
	"dashdb/internal/types"
)

func testCluster(t testing.TB, rows int) *mpp.Cluster {
	t.Helper()
	c, err := mpp.NewCluster([]mpp.NodeSpec{
		{Name: "A", Cores: 4, MemBytes: 32 << 20},
		{Name: "B", Cores: 4, MemBytes: 32 << 20},
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	schema := types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "x1", Kind: types.KindFloat, Nullable: true},
		{Name: "x2", Kind: types.KindFloat, Nullable: true},
		{Name: "label", Kind: types.KindFloat, Nullable: true},
	}
	if err := c.CreateTable("points", schema, mpp.TableOptions{DistributeBy: "id"}); err != nil {
		t.Fatal(err)
	}
	var batch []types.Row
	for i := 0; i < rows; i++ {
		x1 := float64(i%100) / 10
		x2 := float64((i*7)%100) / 10
		label := 3*x1 - 2*x2 + 5 // exact linear relationship
		batch = append(batch, types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(x1),
			types.NewFloat(x2),
			types.NewFloat(label),
		})
	}
	if err := c.Insert("points", batch); err != nil {
		t.Fatal(err)
	}
	return c
}

func newDispatcher(t testing.TB, rows int) (*mpp.Cluster, *Dispatcher) {
	t.Helper()
	c := testCluster(t, rows)
	d, err := NewDispatcher(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return c, d
}

func TestDatasetTableLoad(t *testing.T) {
	_, d := newDispatcher(t, 1000)
	id := d.SubmitFunc("alice", "load", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "")
		if err != nil {
			return nil, err
		}
		return ds.Count(), nil
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 1000 {
		t.Fatalf("count %v", res)
	}
}

func TestDatasetPartitionsMatchShards(t *testing.T) {
	c, d := newDispatcher(t, 400)
	id := d.SubmitFunc("alice", "parts", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "")
		if err != nil {
			return nil, err
		}
		return ds.Partitions(), nil
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != len(c.Shards()) {
		t.Fatalf("partitions %v, shards %d", res, len(c.Shards()))
	}
}

func TestPushdownReducesTransfer(t *testing.T) {
	_, d := newDispatcher(t, 2000)
	run := func(where string) int64 {
		before, _ := d.TransferStats()
		id := d.SubmitFunc("alice", "q", func(ctx *Context) (interface{}, error) {
			ds, err := ctx.Table("points", where)
			if err != nil {
				return nil, err
			}
			return ds.Count(), nil
		})
		if _, err := d.Wait(id); err != nil {
			t.Fatal(err)
		}
		after, _ := d.TransferStats()
		return after - before
	}
	full := run("")
	pushed := run("id < 100")
	if full != 2000 {
		t.Fatalf("full transfer rows %d", full)
	}
	if pushed != 100 {
		t.Fatalf("pushdown transfer rows %d, want 100", pushed)
	}
}

func TestMapFilterCollect(t *testing.T) {
	_, d := newDispatcher(t, 500)
	id := d.SubmitFunc("alice", "mf", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "", "ID", "X1")
		if err != nil {
			return nil, err
		}
		doubled := ds.Map(func(r types.Row) types.Row {
			return types.Row{r[0], types.NewFloat(r[1].Float() * 2)}
		})
		big := doubled.Filter(func(r types.Row) bool { return r[1].Float() > 15 })
		return big.Count(), nil
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	// x1 in [0,9.9], doubled > 15 ⇔ x1 > 7.5 ⇔ i%100 in 76..99 → 24%.
	if res.(int) != 500*24/100 {
		t.Fatalf("filtered count %v", res)
	}
}

func TestReduceByKey(t *testing.T) {
	_, d := newDispatcher(t, 100)
	id := d.SubmitFunc("alice", "rbk", func(ctx *Context) (interface{}, error) {
		rows := []types.Row{
			{types.NewString("a"), types.NewInt(1)},
			{types.NewString("b"), types.NewInt(10)},
			{types.NewString("a"), types.NewInt(2)},
		}
		ds := ctx.Parallelize(rows)
		m := ds.ReduceByKey(0, 1, func(a, b types.Value) types.Value {
			return types.NewInt(a.Int() + b.Int())
		})
		return m[types.NewString("a")].Int(), nil
	})
	res, err := d.Wait(id)
	if err != nil || res.(int64) != 3 {
		t.Fatalf("reduceByKey %v err %v", res, err)
	}
}

func TestGLMLinearRegression(t *testing.T) {
	_, d := newDispatcher(t, 2000)
	id := d.SubmitFunc("alice", "glm", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "")
		if err != nil {
			return nil, err
		}
		return ds.TrainGLM(3, []int{1, 2}, GLMConfig{Family: Gaussian, Iterations: 500, LearnRate: 0.3})
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	m := res.(*GLMModel)
	// True model: label = 3*x1 - 2*x2 + 5.
	if math.Abs(m.Weights[0]-3) > 0.05 || math.Abs(m.Weights[1]+2) > 0.05 || math.Abs(m.Intercept-5) > 0.2 {
		t.Fatalf("GLM fit w=%v b=%v", m.Weights, m.Intercept)
	}
	if m.Loss[len(m.Loss)-1] > m.Loss[0] {
		t.Fatal("loss did not decrease")
	}
	if p := m.Predict([]float64{1, 1}); math.Abs(p-6) > 0.3 {
		t.Fatalf("predict %v", p)
	}
}

func TestGLMLogisticRegression(t *testing.T) {
	_, d := newDispatcher(t, 100)
	id := d.SubmitFunc("alice", "logit", func(ctx *Context) (interface{}, error) {
		// Separable data: label = 1 iff x > 5.
		var rows []types.Row
		for i := 0; i < 400; i++ {
			x := float64(i % 10)
			label := 0.0
			if x > 5 {
				label = 1
			}
			rows = append(rows, types.Row{types.NewFloat(x), types.NewFloat(label)})
		}
		ds := ctx.Parallelize(rows)
		return ds.TrainGLM(1, []int{0}, GLMConfig{Family: Binomial, Iterations: 400, LearnRate: 0.5})
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	m := res.(*GLMModel)
	if m.Predict([]float64{9}) < 0.8 || m.Predict([]float64{1}) > 0.2 {
		t.Fatalf("logistic fit predicts %v / %v", m.Predict([]float64{9}), m.Predict([]float64{1}))
	}
}

func TestKMeans(t *testing.T) {
	_, d := newDispatcher(t, 100)
	id := d.SubmitFunc("alice", "kmeans", func(ctx *Context) (interface{}, error) {
		var rows []types.Row
		for i := 0; i < 50; i++ {
			rows = append(rows, types.Row{types.NewFloat(float64(i % 5)), types.NewFloat(0)})
			rows = append(rows, types.Row{types.NewFloat(100 + float64(i%5)), types.NewFloat(0)})
		}
		ds := ctx.Parallelize(rows)
		return ds.KMeans([]int{0, 1}, 2, 20)
	})
	res, err := d.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	m := res.(*KMeansModel)
	lo, hi := m.Centers[0][0], m.Centers[1][0]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-2) > 1 || math.Abs(hi-102) > 1 {
		t.Fatalf("centers %v", m.Centers)
	}
	if m.Assign([]float64{1, 0}) == m.Assign([]float64{101, 0}) {
		t.Fatal("assignment does not separate clusters")
	}
}

func TestPerUserIsolation(t *testing.T) {
	_, d := newDispatcher(t, 100)
	idA := d.SubmitFunc("alice", "a", func(ctx *Context) (interface{}, error) { return 1, nil })
	idB := d.SubmitFunc("bob", "b", func(ctx *Context) (interface{}, error) { return 2, nil })
	d.Wait(idA)
	d.Wait(idB)
	if d.Managers() != 2 {
		t.Fatalf("managers %d, want one per user", d.Managers())
	}
	// Users cannot see each other's jobs.
	if _, err := d.Status("alice", idB); err == nil {
		t.Fatal("alice must not see bob's job")
	}
	if jobs := d.Jobs("alice"); len(jobs) != 1 || jobs[0].ID != idA {
		t.Fatalf("alice's jobs %v", jobs)
	}
}

func TestJobLifecycleAndFailure(t *testing.T) {
	_, d := newDispatcher(t, 10)
	id := d.SubmitFunc("alice", "boom", func(ctx *Context) (interface{}, error) {
		return nil, errFromApp
	})
	if _, err := d.Wait(id); err == nil {
		t.Fatal("failing app must surface error")
	}
	st, _ := d.Status("alice", id)
	if st.State != JobFailed {
		t.Fatalf("state %v", st.State)
	}
	// Panic containment.
	id2 := d.SubmitFunc("alice", "panic", func(ctx *Context) (interface{}, error) {
		panic("kaboom")
	})
	if _, err := d.Wait(id2); err == nil {
		t.Fatal("panicking app must surface error")
	}
	// Unregistered app.
	if _, err := d.Submit("alice", "ghost"); err == nil {
		t.Fatal("unregistered app must fail")
	}
}

var errFromApp = errTest("app failed")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestJobCancel(t *testing.T) {
	_, d := newDispatcher(t, 100)
	started := make(chan bool)
	id := d.SubmitFunc("alice", "slow", func(ctx *Context) (interface{}, error) {
		close(started)
		for i := 0; i < 1000; i++ {
			time.Sleep(time.Millisecond)
			ctx.checkCancelled()
		}
		return nil, nil
	})
	<-started
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(id); err == nil {
		t.Fatal("cancelled job must not succeed")
	}
	st, _ := d.Status("alice", id)
	if st.State != JobCancelled {
		t.Fatalf("state %v", st.State)
	}
}

func TestRegisteredAppAndSQLProcedures(t *testing.T) {
	c, d := newDispatcher(t, 500)
	d.RegisterApp("countPoints", func(ctx *Context) (interface{}, error) {
		ds, err := ctx.Table("points", "")
		if err != nil {
			return nil, err
		}
		return ds.Count(), nil
	})
	// SQL interface on shard 0's engine.
	db := c.Shards()[0].DB
	RegisterProcedures(db, d)
	sess := db.NewSession()
	sess.SetUser("carol")
	r, err := sess.Exec(`CALL SPARK_SUBMIT('countPoints')`)
	if err != nil {
		t.Fatal(err)
	}
	jobID := r.Rows[0][0].Int()
	if _, err := sess.Exec(`CALL SPARK_WAIT(` + r.Rows[0][0].String() + `)`); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Exec(`CALL SPARK_STATUS(` + r.Rows[0][0].String() + `)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows[0][2].Str() != "DONE" {
		t.Fatalf("status %v", st.Rows[0])
	}
	res, err := d.Wait(jobID)
	if err != nil || res.(int) != 500 {
		t.Fatalf("result %v err %v", res, err)
	}
}

func TestDataServerErrors(t *testing.T) {
	_, d := newDispatcher(t, 10)
	id := d.SubmitFunc("alice", "missing", func(ctx *Context) (interface{}, error) {
		_, err := ctx.Table("no_such_table", "")
		return nil, err
	})
	if _, err := d.Wait(id); err == nil {
		t.Fatal("missing table must fail")
	}
}
