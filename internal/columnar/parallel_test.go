package columnar

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/types"
)

// buildParallelTable loads n rows spanning several sealed strides plus an
// open stride: (id INT, grp INT nullable, val FLOAT).
func buildParallelTable(t testing.TB, n int) *Table {
	t.Helper()
	schema := types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "grp", Kind: types.KindInt, Nullable: true},
		{Name: "val", Kind: types.KindFloat},
	}
	tbl := NewTable(1, "ptab", schema, Config{})
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		grp := types.NewInt(int64(i % 7))
		if i%13 == 0 {
			grp = types.Null
		}
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			grp,
			types.NewFloat(float64(i%100) * 0.5),
		})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// collectScan drains a serial scan into (rowid, id-value) pairs.
func collectScan(t *testing.T, tbl *Table, preds []Pred) map[int64]int64 {
	t.Helper()
	got := map[int64]int64{}
	err := tbl.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			got[b.RowID(i)] = b.Value(0, i).Int()
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParallelScanMatchesSerial(t *testing.T) {
	// 4 sealed strides + a partial open stride.
	tbl := buildParallelTable(t, 4*page.StrideSize+217)
	predSets := [][]Pred{
		nil,
		{{Col: 0, Op: encoding.OpGE, Val: types.NewInt(1000)}},
		{{Col: 1, Op: encoding.OpEQ, Val: types.NewInt(3)}},
		{{Col: 0, Op: encoding.OpGE, Val: types.NewInt(100)}, {Col: 0, Op: encoding.OpLT, Val: types.NewInt(2000)}},
		{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(-1)}}, // empty
	}
	for pi, preds := range predSets {
		want := collectScan(t, tbl, preds)
		for _, dop := range []int{1, 2, 3, 8, 64} {
			var mu sync.Mutex
			got := map[int64]int64{}
			err := tbl.ParallelScan(preds, dop, func(_ int, b *Batch) bool {
				local := make(map[int64]int64, b.Len())
				for i := 0; i < b.Len(); i++ {
					local[b.RowID(i)] = b.Value(0, i).Int()
				}
				mu.Lock()
				for k, v := range local {
					got[k] = v
				}
				mu.Unlock()
				return true
			})
			if err != nil {
				t.Fatalf("preds %d dop %d: %v", pi, dop, err)
			}
			if len(got) != len(want) {
				t.Fatalf("preds %d dop %d: %d rows, want %d", pi, dop, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("preds %d dop %d: row %d = %d, want %d", pi, dop, k, got[k], v)
				}
			}
		}
	}
}

func TestParallelScanPerWorkerState(t *testing.T) {
	tbl := buildParallelTable(t, 3*page.StrideSize+10)
	const dop = 4
	// Per-worker tallies written without locks: ParallelScan guarantees a
	// worker never runs its callback concurrently with itself.
	counts := make([]int, dop)
	err := tbl.ParallelScan(nil, dop, func(w int, b *Batch) bool {
		if w < 0 || w >= dop {
			t.Errorf("worker index %d out of range", w)
			return false
		}
		counts[w] += b.Len()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tbl.Rows() {
		t.Fatalf("workers saw %d rows, want %d", total, tbl.Rows())
	}
}

func TestParallelScanCancel(t *testing.T) {
	tbl := buildParallelTable(t, 8*page.StrideSize)
	var delivered atomic.Int64
	err := tbl.ParallelScan(nil, 4, func(_ int, b *Batch) bool {
		return delivered.Add(1) < 2 // cancel after two batches
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := delivered.Load(); n >= 8 {
		t.Fatalf("cancellation did not stop the scan: %d batches", n)
	}
}

func TestParallelScanDeletesAndSkipping(t *testing.T) {
	tbl := buildParallelTable(t, 4*page.StrideSize)
	if _, err := tbl.DeleteWhere([]Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(100)}}); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(int64(page.StrideSize))}}
	tbl.ResetStats()
	want := collectScan(t, tbl, preds)
	serialStats := tbl.Stats()
	tbl.ResetStats()
	var mu sync.Mutex
	var ids []int64
	err := tbl.ParallelScan(preds, 4, func(_ int, b *Batch) bool {
		mu.Lock()
		for i := 0; i < b.Len(); i++ {
			ids = append(ids, b.RowID(i))
		}
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	parStats := tbl.Stats()
	if len(ids) != len(want) {
		t.Fatalf("parallel %d rows, serial %d", len(ids), len(want))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, ok := want[id]; !ok {
			t.Fatalf("row %d not in serial result", id)
		}
	}
	if parStats.StridesSkipped != serialStats.StridesSkipped {
		t.Fatalf("data skipping diverged: parallel %d serial %d",
			parStats.StridesSkipped, serialStats.StridesSkipped)
	}
}

// failAfterStore serves a limited number of page reads, then fails: the
// parallel scan must surface the storage fault as an error from any worker.
type failAfterStore struct {
	inner PageStore
	reads atomic.Int64
	limit int64
}

func (f *failAfterStore) WritePage(id page.ID, data []byte) error { return f.inner.WritePage(id, data) }
func (f *failAfterStore) DeletePage(id page.ID) error             { return f.inner.DeletePage(id) }
func (f *failAfterStore) DeletePages(table uint32) error          { return f.inner.DeletePages(table) }
func (f *failAfterStore) ReadPage(id page.ID) ([]byte, error) {
	if f.reads.Add(1) > f.limit {
		return nil, fmt.Errorf("injected storage fault")
	}
	return f.inner.ReadPage(id)
}

func TestParallelScanStorageFault(t *testing.T) {
	store := &failAfterStore{inner: NewMemStore(), limit: 1 << 30}
	schema := types.Schema{{Name: "id", Kind: types.KindInt}}
	tbl := NewTable(9, "faulty", schema, Config{Store: store, Pool: nil})
	var rows []types.Row
	for i := 0; i < 4*page.StrideSize; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	// Tiny pool so reads go to the store, then make the store fail.
	store.limit = store.reads.Load() // every further read fails
	err := tbl.ParallelScan(nil, 4, func(_ int, b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			_ = b.Value(0, i)
		}
		return true
	})
	if err == nil {
		t.Fatal("expected storage fault to surface as scan error")
	}
}
