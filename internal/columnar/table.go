// Package columnar implements the column-organized table of the BLU-style
// engine: the paper's seven architectural techniques meet here. Values are
// reduced to codes by the encoding layer (§II.B.1–2), stored column-wise
// in bit-packed pages of 1,024-tuple strides (§II.B.3), summarized by a
// per-stride synopsis for data skipping (§II.B.4), cached by the buffer
// pool (§II.B.5), and scanned with word-parallel SWAR predicate kernels
// (§II.B.6) a stride at a time (§II.B.7).
//
// Concurrency model (DESIGN.md §13): the table is split into a
// writer-private build side and immutable published epochs. All mutation
// runs under the writer mutex, accumulates in private buffers, and ends by
// publishing a fresh immutable tableState through an epoch manager —
// one atomic pointer swap. Readers pin an epoch and scan it without any
// lock on the table: sealed pages are immutable, the open tail is
// copy-on-seal (published epochs hold capacity-clamped views the writer
// never writes into), tombstones are copy-on-write, and page reclamation
// after TRUNCATE or an encoder rebuild is deferred until every epoch that
// could reach the old pages has drained.
package columnar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dashdb/internal/bitpack"
	"dashdb/internal/bufferpool"
	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/snapshot"
	"dashdb/internal/synopsis"
	"dashdb/internal/types"
)

// PageStore persists sealed pages; the clustered filesystem implements it
// for MPP shards, and an in-memory store backs standalone tables.
type PageStore interface {
	WritePage(id page.ID, data []byte) error
	ReadPage(id page.ID) ([]byte, error)
	// DeletePage removes one page; deleting an absent page is not an
	// error. Epoch cleanups use it to reclaim superseded page
	// generations precisely, without touching pages the live epoch still
	// references.
	DeletePage(id page.ID) error
	DeletePages(table uint32) error
}

// memStore is the default in-process PageStore.
type memStore struct {
	mu    sync.RWMutex
	pages map[page.ID][]byte
}

// NewMemStore returns an in-memory PageStore.
func NewMemStore() PageStore {
	return &memStore{pages: make(map[page.ID][]byte)}
}

func (m *memStore) WritePage(id page.ID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages[id] = data
	return nil
}

func (m *memStore) ReadPage(id page.ID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("columnar: page %v not found", id)
	}
	return data, nil
}

func (m *memStore) DeletePage(id page.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pages, id)
	return nil
}

func (m *memStore) DeletePages(table uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.pages {
		if id.Table == table {
			delete(m.pages, id)
		}
	}
	return nil
}

// Stats counts scan-level activity for the experiments.
type Stats struct {
	StridesVisited uint64
	StridesSkipped uint64
	PagesRead      uint64
	RowsScanned    uint64
	Rebuilds       uint64 // column re-encodes after domain overflow
}

// statCounters is the lock-free backing store: scans run concurrently
// with writers, so counters must be atomic.
type statCounters struct {
	stridesVisited atomic.Uint64
	stridesSkipped atomic.Uint64
	pagesRead      atomic.Uint64
	rowsScanned    atomic.Uint64
	rebuilds       atomic.Uint64
}

// bulkCounters tracks BulkAppend flush activity for MON_SNAPSHOTS.
type bulkCounters struct {
	flushes atomic.Uint64
	rows    atomic.Uint64
	bytes   atomic.Uint64
}

// Config tunes a table's storage environment.
type Config struct {
	// Pool caches decoded pages; when nil a private unbounded-ish pool
	// with an LRU policy is created.
	Pool *bufferpool.Pool
	// Store persists sealed pages; when nil an in-memory store is used.
	Store PageStore
	// AnalyzeSample is the number of leading rows used to choose column
	// encodings when the table is bulk loaded (0 = default).
	AnalyzeSample int
}

const defaultAnalyzeSample = 8192

// genShift positions a column's page generation in the high bits of the
// page ID's Stride field: a rebuild or TRUNCATE writes its pages under a
// fresh generation, so new and old pages coexist under distinct IDs while
// drained epochs still reference the old ones. 24 bits remain for the
// stride ordinal (~17 billion rows per table).
const genShift = 24

// column holds one column's writer-side state: the encoder, synopsis,
// current page generation and the open-stride buffers. The open buffers
// are copy-on-seal: they always have exactly page.StrideSize capacity, the
// writer appends in place (published epochs hold length-and-capacity
// clamped views below every index the writer touches), and sealing
// allocates fresh buffers so drained epochs keep the old backing arrays.
type column struct {
	enc      encoding.Encoder
	syn      synopsis.Column
	analyzed bool
	gen      uint32 // current page generation (0 for never-rebuilt columns)
	// open stride buffers (not yet packed):
	openCodes []uint64
	openNulls []bool
	openVals  []types.Value // retained for reseal/re-analyze of open stride
}

// newOpenBuffers gives c fresh open-stride arrays so previously published
// epochs keep the old backing.
func (c *column) newOpenBuffers() {
	c.openCodes = make([]uint64, 0, page.StrideSize)
	c.openNulls = make([]bool, 0, page.StrideSize)
	c.openVals = make([]types.Value, 0, page.StrideSize)
}

// Table is a column-organized table.
type Table struct {
	id     uint32
	name   string
	schema types.Schema

	// mu serializes writers. Readers never take it: they pin an epoch.
	mu       sync.Mutex
	cols     []*column
	rows     int // total rows ever appended (including deleted)
	live     int
	deleted  *bitpack.Bitmap // copy-on-write; shared with published epochs
	rawBytes int             // naive row-format bytes, for compression accounting
	genSeq   uint32          // allocator for page generations
	pending  []func()        // cleanups to attach to the next publish

	epochs *snapshot.Manager[*tableState]

	pool  *bufferpool.Pool
	store PageStore
	stats statCounters
	bulk  bulkCounters

	analyzeSample int
}

// NewTable creates an empty columnar table with the given unique id.
func NewTable(id uint32, name string, schema types.Schema, cfg Config) *Table {
	pool := cfg.Pool
	if pool == nil {
		pool = bufferpool.New(1<<30, bufferpool.NewLRU())
	}
	store := cfg.Store
	if store == nil {
		store = NewMemStore()
	}
	sample := cfg.AnalyzeSample
	if sample == 0 {
		sample = defaultAnalyzeSample
	}
	t := &Table{
		id:            id,
		name:          name,
		schema:        schema,
		pool:          pool,
		store:         store,
		deleted:       bitpack.NewBitmap(0),
		analyzeSample: sample,
	}
	for range schema {
		c := &column{}
		c.newOpenBuffers()
		t.cols = append(t.cols, c)
	}
	t.epochs = snapshot.NewManager(t.buildState())
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's storage id.
func (t *Table) ID() uint32 { return t.id }

// Schema returns the table schema.
func (t *Table) Schema() types.Schema { return t.schema }

// Rows returns the number of live rows in the current epoch. It takes no
// lock: the epoch state is immutable, so a racing writer can only make
// the answer momentarily stale, never torn.
func (t *Table) Rows() int {
	return t.epochs.Current().State().live
}

// Stats returns a snapshot of scan counters.
func (t *Table) Stats() Stats {
	return Stats{
		StridesVisited: t.stats.stridesVisited.Load(),
		StridesSkipped: t.stats.stridesSkipped.Load(),
		PagesRead:      t.stats.pagesRead.Load(),
		RowsScanned:    t.stats.rowsScanned.Load(),
		Rebuilds:       t.stats.rebuilds.Load(),
	}
}

// ResetStats zeroes scan counters between experiment phases.
func (t *Table) ResetStats() {
	t.stats.stridesVisited.Store(0)
	t.stats.stridesSkipped.Store(0)
	t.stats.pagesRead.Store(0)
	t.stats.rowsScanned.Store(0)
	t.stats.rebuilds.Store(0)
}

// sealedStrides returns how many full strides the writer has sealed.
func (t *Table) sealedStrides() int { return t.rows / page.StrideSize }

// openLen returns how many rows sit in the writer's open stride.
func (t *Table) openLen() int { return t.rows % page.StrideSize }

// buildState snapshots the writer state into an immutable tableState.
// Caller holds mu (or is the constructor, before the table is shared).
func (t *Table) buildState() *tableState {
	st := &tableState{
		schema:   t.schema,
		rows:     t.rows,
		live:     t.live,
		deleted:  t.deleted,
		rawBytes: t.rawBytes,
		cols:     make([]colView, len(t.cols)),
	}
	for ci, c := range t.cols {
		entries := c.syn.Entries()
		n := len(c.openCodes)
		st.cols[ci] = colView{
			enc:       c.enc,
			gen:       c.gen,
			syn:       entries[:len(entries):len(entries)],
			sketch:    c.syn.SketchCopy(),
			openCodes: c.openCodes[:n:n],
			openNulls: c.openNulls[:n:n],
			openVals:  c.openVals[:n:n],
		}
	}
	return st
}

// publishLocked publishes the writer state as a new epoch, attaching any
// pending resource cleanups to the epoch being superseded. Caller holds
// mu.
func (t *Table) publishLocked() {
	cleanups := t.pending
	t.pending = nil
	t.epochs.Publish(t.buildState(), cleanups...)
}

// nextGenLocked allocates a fresh page generation. Generations occupy 8
// bits of the page ID; the sequence wraps at 255, which collides only if
// pages from 255 generations ago are still awaiting drain — in practice
// rebuilds are rare (counted in Stats.Rebuilds) and epochs drain per
// statement.
func (t *Table) nextGenLocked() uint32 {
	t.genSeq++
	g := t.genSeq & 0xFF
	if g == 0 {
		t.genSeq++
		g = t.genSeq & 0xFF
	}
	return g
}

// Insert validates and appends one row, publishing a new epoch.
func (t *Table) Insert(row types.Row) error {
	checked, err := t.schema.Validate(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.publishLocked()
	return t.insertLocked(checked)
}

// InsertBatch bulk-loads rows; the first batch triggers encoding analysis
// over a leading sample (the LOAD-time "compression optimized globally per
// column" of §II.B.1). The whole batch becomes visible in one epoch:
// concurrent readers observe either none of it or all of it.
func (t *Table) InsertBatch(rows []types.Row) error {
	checked, err := t.validateAll(rows)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.publishLocked()
	return t.appendRowsLocked(checked)
}

// BulkAppend is the bulk-load flush path: semantically InsertBatch, but
// additionally counted in the table's bulk-flush statistics
// (MON_SNAPSHOTS). It returns the number of rows appended.
func (t *Table) BulkAppend(rows []types.Row) (int, error) {
	checked, err := t.validateAll(rows)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.publishLocked()
	before := t.rawBytes
	if err := t.appendRowsLocked(checked); err != nil {
		return 0, err
	}
	t.bulk.flushes.Add(1)
	t.bulk.rows.Add(uint64(len(checked)))
	t.bulk.bytes.Add(uint64(t.rawBytes - before))
	return len(checked), nil
}

// validateAll schema-checks every row up front, so a batch that fails
// validation mutates nothing.
func (t *Table) validateAll(rows []types.Row) ([]types.Row, error) {
	checked := make([]types.Row, len(rows))
	for i, r := range rows {
		c, err := t.schema.Validate(r)
		if err != nil {
			return nil, err
		}
		checked[i] = c
	}
	return checked, nil
}

// appendRowsLocked appends pre-validated rows, running load-time encoding
// analysis when the table is empty. Caller holds mu and publishes after.
func (t *Table) appendRowsLocked(checked []types.Row) error {
	if t.rows == 0 && len(checked) > 0 {
		t.analyzeLocked(checked)
	}
	for _, r := range checked {
		if err := t.insertLocked(r); err != nil {
			return err
		}
	}
	return nil
}

// analyzeLocked chooses encoders from a sample of the incoming load.
func (t *Table) analyzeLocked(rows []types.Row) {
	n := len(rows)
	if n > t.analyzeSample {
		n = t.analyzeSample
	}
	for ci := range t.cols {
		sample := make([]types.Value, 0, n)
		for _, r := range rows[:n] {
			if ci < len(r) {
				sample = append(sample, r[ci])
			}
		}
		t.cols[ci].enc = encoding.ChooseEncoder(t.schema[ci].Kind, sample)
		t.cols[ci].analyzed = true
	}
}

// ensureEncodersLocked gives un-analyzed columns growable dictionaries
// (the INSERT-before-LOAD path).
func (t *Table) ensureEncodersLocked() {
	for ci, c := range t.cols {
		if c.enc == nil {
			c.enc = encoding.NewDict(t.schema[ci].Kind)
		}
	}
}

func (t *Table) insertLocked(checked types.Row) error {
	t.ensureEncodersLocked()
	t.rawBytes += encoding.EstimateRawBytes(checked)
	for ci, c := range t.cols {
		v := checked[ci]
		if v.IsNull() {
			c.openCodes = append(c.openCodes, 0)
			c.openNulls = append(c.openNulls, true)
			c.openVals = append(c.openVals, types.NullOf(t.schema[ci].Kind))
			continue
		}
		code, err := t.encodeValueLocked(ci, v)
		if err != nil {
			return err
		}
		// Appends land at indexes no published epoch's clamped view can
		// reach; capacity is exactly StrideSize, so the backing array is
		// never reallocated mid-stride.
		c.openCodes = append(c.openCodes, code)
		c.openNulls = append(c.openNulls, false)
		c.openVals = append(c.openVals, v)
	}
	t.rows++
	t.live++
	t.growDeletedLocked()
	if t.openLen() == 0 { // stride just filled
		if err := t.sealStrideLocked(t.sealedStrides() - 1); err != nil {
			return err
		}
	}
	return nil
}

// encodeValueLocked encodes v for column ci, rebuilding the column's
// encoding when the value falls outside a fixed frame of reference.
func (t *Table) encodeValueLocked(ci int, v types.Value) (uint64, error) {
	c := t.cols[ci]
	switch f := c.enc.(type) {
	case *encoding.IntFOR:
		raw, isInt := v.AsInt()
		if !isInt {
			return 0, fmt.Errorf("columnar: non-integral value %v in column %s", v, t.schema[ci].Name)
		}
		if !f.Contains(raw) {
			if err := t.rebuildColumnLocked(ci, v); err != nil {
				return 0, err
			}
		}
	case *encoding.FloatFOR:
		fv, isNum := v.AsFloat()
		if !isNum {
			return 0, fmt.Errorf("columnar: non-numeric value %v in column %s", v, t.schema[ci].Name)
		}
		if !f.Contains(fv) {
			if err := t.rebuildColumnLocked(ci, v); err != nil {
				return 0, err
			}
		}
	}
	return t.cols[ci].enc.Encode(v), nil
}

// growDeletedLocked extends the tombstone bitmap to cover all rows. The
// grown bitmap is a fresh copy, so published epochs keep their shorter
// view untouched.
func (t *Table) growDeletedLocked() {
	if t.deleted.Len() < t.rows {
		nb := bitpack.NewBitmap(((t.rows / page.StrideSize) + 1) * page.StrideSize)
		t.deleted.ForEach(func(i int) { nb.Set(i) })
		t.deleted = nb
	}
}

// sealStrideLocked packs every column's open buffers for stride s into
// pages at the narrowest width that fits the stride's codes (seal-time
// repack: this is where frequency encoding pays — strides of hot values
// pack at very narrow widths), writes them to the store, records the
// synopsis entries, and hands each column fresh open buffers (published
// epochs keep the sealed buffers' backing arrays).
func (t *Table) sealStrideLocked(s int) error {
	for ci, c := range t.cols {
		maxCode := uint64(0)
		for i, code := range c.openCodes {
			if !c.openNulls[i] && code > maxCode {
				maxCode = code
			}
		}
		pg := page.New(t.pageID(ci, s), bitpack.WidthFor(maxCode))
		for i, code := range c.openCodes {
			if c.openNulls[i] {
				pg.Nulls.Set(i)
				pg.Codes.Append(0)
				continue
			}
			pg.Codes.Append(code)
		}
		nulls := c.openNulls
		c.syn.Set(s, synopsis.Summarize(c.openCodes, func(i int) bool { return nulls[i] }))
		c.syn.Observe(c.openCodes, func(i int) bool { return nulls[i] })
		if err := t.store.WritePage(pg.ID, pg.Marshal()); err != nil {
			return fmt.Errorf("columnar: seal %v: %w", pg.ID, err)
		}
		c.newOpenBuffers()
	}
	return nil
}

// pageIDFor composes a page ID from a column's generation and stride
// ordinal.
func pageIDFor(table uint32, ci int, gen uint32, stride int) page.ID {
	return page.ID{Table: table, Column: uint16(ci), Stride: gen<<genShift | uint32(stride)}
}

// pageID returns the ID for column ci's stride under its current
// generation. Caller holds mu.
func (t *Table) pageID(ci, stride int) page.ID {
	return pageIDFor(t.id, ci, t.cols[ci].gen, stride)
}

// loadPageGen fetches a sealed page of a specific generation through the
// buffer pool. Generation-qualified IDs are what let pinned epochs keep
// reading superseded pages while the writer rebuilds under a new
// generation.
func (t *Table) loadPageGen(ci int, gen uint32, stride int) (*page.Page, error) {
	id := pageIDFor(t.id, ci, gen, stride)
	return t.pool.Get(id, func(id page.ID) (*page.Page, error) {
		data, err := t.store.ReadPage(id)
		if err != nil {
			return nil, err
		}
		return page.Unmarshal(data)
	})
}

// rebuildColumnLocked re-encodes a whole column after a frame-of-reference
// overflow, widening the domain to include extra. New pages are written
// under a fresh generation; the old generation's pages are reclaimed only
// after every epoch that references them drains. This is rare and counted
// in Stats.Rebuilds.
func (t *Table) rebuildColumnLocked(ci int, extra types.Value) error {
	t.stats.rebuilds.Add(1)
	c := t.cols[ci]
	oldGen := c.gen
	// Gather every live value of the column (including tombstoned rows:
	// codes must stay positionally aligned).
	var vals []types.Value
	sealed := t.sealedStrides()
	for s := 0; s < sealed; s++ {
		pg, err := t.loadPageGen(ci, oldGen, s)
		if err != nil {
			return err
		}
		for i := 0; i < pg.Rows(); i++ {
			if pg.Nulls.Get(i) {
				vals = append(vals, types.NullOf(t.schema[ci].Kind))
			} else {
				vals = append(vals, c.enc.Decode(pg.Codes.Get(i)))
			}
		}
	}
	vals = append(vals, c.openVals...)

	// Re-analyze over the full column plus the overflowing value, with
	// widened bounds so repeated drift amortizes.
	sample := append(append([]types.Value(nil), vals...), extra)
	if raw, ok := extra.AsFloat(); ok {
		sample = append(sample,
			types.NewFloat(raw+raw/2+1),
			types.NewFloat(raw-raw/2-1))
		if t.schema[ci].Kind != types.KindFloat {
			sample = sample[:len(sample)-2]
			i, _ := extra.AsInt()
			sample = append(sample, types.NewInt(i+i/2+1), types.NewInt(i-i/2-1))
		}
	}
	c.enc = encoding.ChooseEncoder(t.schema[ci].Kind, sample)
	// Fresh synopsis: resetting in place would tear the entry slices
	// published epochs hold.
	c.syn = synopsis.Column{}
	c.gen = t.nextGenLocked()

	// Re-encode sealed strides under the new generation.
	for s := 0; s < sealed; s++ {
		lo, hi := s*page.StrideSize, (s+1)*page.StrideSize
		codes := make([]uint64, 0, page.StrideSize)
		nulls := make([]bool, 0, page.StrideSize)
		maxCode := uint64(0)
		for _, v := range vals[lo:hi] {
			if v.IsNull() {
				codes = append(codes, 0)
				nulls = append(nulls, true)
				continue
			}
			code := c.enc.Encode(v)
			codes = append(codes, code)
			nulls = append(nulls, false)
			if code > maxCode {
				maxCode = code
			}
		}
		pg := page.New(t.pageID(ci, s), bitpack.WidthFor(maxCode))
		for i, code := range codes {
			if nulls[i] {
				pg.Nulls.Set(i)
				pg.Codes.Append(0)
			} else {
				pg.Codes.Append(code)
			}
		}
		ns := nulls
		c.syn.Set(s, synopsis.Summarize(codes, func(i int) bool { return ns[i] }))
		c.syn.Observe(codes, func(i int) bool { return ns[i] })
		if err := t.store.WritePage(pg.ID, pg.Marshal()); err != nil {
			return err
		}
	}
	// Re-encode the open stride into fresh code buffers (values and null
	// flags are unchanged by a re-encode, so those arrays stay shared
	// with published epochs).
	newCodes := make([]uint64, 0, page.StrideSize)
	for i, v := range c.openVals {
		if c.openNulls[i] {
			newCodes = append(newCodes, 0)
			continue
		}
		newCodes = append(newCodes, c.enc.Encode(v))
	}
	c.openCodes = newCodes
	// Reclaim the old generation's pages once every epoch that could
	// reach them has drained.
	t.deferPageDelete(ci, oldGen, sealed)
	return nil
}

// deferPageDelete queues deletion of one column generation's sealed pages
// for the next publish; the cleanup runs after all older epochs drain.
func (t *Table) deferPageDelete(ci int, gen uint32, strides int) {
	if strides == 0 {
		return
	}
	table, store, pool := t.id, t.store, t.pool
	t.pending = append(t.pending, func() {
		for s := 0; s < strides; s++ {
			id := pageIDFor(table, ci, gen, s)
			pool.Evict(id)
			if err := store.DeletePage(id); err != nil {
				return // best effort: orphaned pages cost space, not correctness
			}
		}
	})
}

// Truncate removes all rows, publishing an emptied epoch. In-flight
// readers drain on the prior epoch — its pages are deleted only after the
// last of them releases its pin.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sealed := t.sealedStrides()
	for ci, c := range t.cols {
		t.deferPageDelete(ci, c.gen, sealed)
		c.newOpenBuffers()
		c.syn = synopsis.Column{}
		c.enc = nil
		c.analyzed = false
		c.gen = t.nextGenLocked()
	}
	t.rows, t.live = 0, 0
	t.rawBytes = 0
	t.deleted = bitpack.NewBitmap(0)
	t.publishLocked()
	return nil
}

// Drop releases the table's storage. The table id is never reused, so the
// deferred cleanup can wipe every page under the id wholesale.
func (t *Table) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.cols {
		c.newOpenBuffers()
		c.syn = synopsis.Column{}
		c.enc = nil
		c.analyzed = false
	}
	t.rows, t.live = 0, 0
	t.rawBytes = 0
	t.deleted = bitpack.NewBitmap(0)
	table, store, pool := t.id, t.store, t.pool
	t.pending = append(t.pending, func() {
		pool.Invalidate(table)
		_ = store.DeletePages(table) //dashdb:nolint droppederr epoch-drain cleanup has no caller to surface to; leaked pages are re-deleted on the next Drop
	})
	t.publishLocked()
	return nil
}

// ColumnDict returns column ci's dictionary in the current epoch when the
// column is eligible for compressed (code-space) execution, or nil.
// Eligibility requires an analyzed frequency-dictionary encoder on a
// non-float column: float dictionaries are excluded centrally here because
// NaN keys break the value↔code bijection the executor's code-keyed joins
// and group-bys rely on (NaN != NaN, so NaN rows can occupy several
// codes). Compiled plans that must agree with their scan should prefer
// Snapshot.ColumnDict on the pinned snapshot.
func (t *Table) ColumnDict(ci int) *encoding.Dict {
	return t.epochs.Current().State().columnDict(ci)
}

// ColumnEncoding names column ci's encoder ("RAW", "MINUS", "FREQ-DICT",
// or "" before analysis).
func (t *Table) ColumnEncoding(ci int) string {
	st := t.epochs.Current().State()
	if ci < 0 || ci >= len(st.cols) || st.cols[ci].enc == nil {
		return ""
	}
	return st.cols[ci].enc.Kind().String()
}

// ColumnCompression is one column's entry in the compression report,
// surfaced by the MON_COMPRESSION monitoring view.
type ColumnCompression struct {
	Name        string
	Encoding    string // encoder kind, "" before analysis
	Cardinality int    // distinct codes (dictionary encoders only)
	WidthBits   uint   // bits per code for the current domain
	DictBytes   int    // encoder auxiliary storage
}

// ColumnCompressionReport returns per-column encoder statistics for the
// current epoch.
func (t *Table) ColumnCompressionReport() []ColumnCompression {
	st := t.epochs.Current().State()
	out := make([]ColumnCompression, len(st.cols))
	for ci := range st.cols {
		c := &st.cols[ci]
		cc := ColumnCompression{Name: t.schema[ci].Name}
		if c.enc != nil {
			cc.Encoding = c.enc.Kind().String()
			cc.DictBytes = c.enc.MemSize()
			if d, ok := c.enc.(*encoding.Dict); ok {
				cc.Cardinality = d.Cardinality()
				cc.WidthBits = d.Width()
			} else if w, ok := c.enc.(interface{ Width() uint }); ok {
				cc.WidthBits = w.Width()
			}
		}
		out[ci] = cc
	}
	return out
}

// CompressionReport describes the table's storage efficiency (experiment
// F-B): compressed bytes include pages, dictionaries and the synopsis.
type CompressionReport struct {
	RawBytes        int
	PageBytes       int
	DictBytes       int
	SynopsisBytes   int
	CompressedBytes int
	Ratio           float64
}

// Compression computes the table's compression report over a pinned
// snapshot.
func (t *Table) Compression() CompressionReport {
	snap := t.Snapshot()
	defer snap.Release()
	st := snap.state()
	var r CompressionReport
	r.RawBytes = st.rawBytes
	sealed := st.sealedStrides()
	for ci := range st.cols {
		c := &st.cols[ci]
		for s := 0; s < sealed; s++ {
			if pg, err := t.loadPageGen(ci, c.gen, s); err == nil {
				r.PageBytes += pg.MemSize()
			}
		}
		r.PageBytes += len(c.openCodes) * 8 // open stride unpacked
		if c.enc != nil {
			r.DictBytes += c.enc.MemSize()
		}
		r.SynopsisBytes += len(c.syn)*24 + 24 + 64 // entries + header + sketch
	}
	r.CompressedBytes = r.PageBytes + r.DictBytes + r.SynopsisBytes
	if r.CompressedBytes > 0 {
		r.Ratio = float64(r.RawBytes) / float64(r.CompressedBytes)
	}
	return r
}
