// Package columnar implements the column-organized table of the BLU-style
// engine: the paper's seven architectural techniques meet here. Values are
// reduced to codes by the encoding layer (§II.B.1–2), stored column-wise
// in bit-packed pages of 1,024-tuple strides (§II.B.3), summarized by a
// per-stride synopsis for data skipping (§II.B.4), cached by the buffer
// pool (§II.B.5), and scanned with word-parallel SWAR predicate kernels
// (§II.B.6) a stride at a time (§II.B.7).
package columnar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dashdb/internal/bitpack"
	"dashdb/internal/bufferpool"
	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/synopsis"
	"dashdb/internal/types"
)

// PageStore persists sealed pages; the clustered filesystem implements it
// for MPP shards, and an in-memory store backs standalone tables.
type PageStore interface {
	WritePage(id page.ID, data []byte) error
	ReadPage(id page.ID) ([]byte, error)
	DeletePages(table uint32) error
}

// memStore is the default in-process PageStore.
type memStore struct {
	mu    sync.RWMutex
	pages map[page.ID][]byte
}

// NewMemStore returns an in-memory PageStore.
func NewMemStore() PageStore {
	return &memStore{pages: make(map[page.ID][]byte)}
}

func (m *memStore) WritePage(id page.ID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages[id] = data
	return nil
}

func (m *memStore) ReadPage(id page.ID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("columnar: page %v not found", id)
	}
	return data, nil
}

func (m *memStore) DeletePages(table uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.pages {
		if id.Table == table {
			delete(m.pages, id)
		}
	}
	return nil
}

// Stats counts scan-level activity for the experiments.
type Stats struct {
	StridesVisited uint64
	StridesSkipped uint64
	PagesRead      uint64
	RowsScanned    uint64
	Rebuilds       uint64 // column re-encodes after domain overflow
}

// statCounters is the lock-free backing store: scans run under a read
// lock concurrently, so counters must be atomic.
type statCounters struct {
	stridesVisited atomic.Uint64
	stridesSkipped atomic.Uint64
	pagesRead      atomic.Uint64
	rowsScanned    atomic.Uint64
	rebuilds       atomic.Uint64
}

// Config tunes a table's storage environment.
type Config struct {
	// Pool caches decoded pages; when nil a private unbounded-ish pool
	// with an LRU policy is created.
	Pool *bufferpool.Pool
	// Store persists sealed pages; when nil an in-memory store is used.
	Store PageStore
	// AnalyzeSample is the number of leading rows used to choose column
	// encodings when the table is bulk loaded (0 = default).
	AnalyzeSample int
}

const defaultAnalyzeSample = 8192

// column holds one column's encoder, synopsis and open-stride buffer.
type column struct {
	enc      encoding.Encoder
	syn      synopsis.Column
	analyzed bool
	// open stride buffers (not yet packed):
	openCodes []uint64
	openNulls []bool
	openVals  []types.Value // retained for reseal/re-analyze of open stride
}

// Table is a column-organized table.
type Table struct {
	mu      sync.RWMutex
	id      uint32
	name    string
	schema  types.Schema
	cols    []*column
	rows    int // total rows ever appended (including deleted)
	live    int
	deleted *bitpack.Bitmap // grows in stride units; bit set = tombstone

	pool  *bufferpool.Pool
	store PageStore
	stats statCounters

	analyzeSample int
	rawBytes      int // naive row-format bytes, for compression accounting

	// Planner-statistics cache. ColumnStats folds the open stride into a
	// sketch copy, so planning every query against an unchanged table
	// would re-hash the same buffered values; entries are stamped with
	// statsVer (bumped under mu on any row mutation) and recomputed only
	// after the table actually changes.
	statsVer      uint64 // guarded by mu
	statsMu       sync.Mutex
	statsCache    map[int]ColumnStats // guarded by statsMu
	statsCacheVer uint64              // guarded by statsMu
}

// NewTable creates an empty columnar table with the given unique id.
func NewTable(id uint32, name string, schema types.Schema, cfg Config) *Table {
	pool := cfg.Pool
	if pool == nil {
		pool = bufferpool.New(1<<30, bufferpool.NewLRU())
	}
	store := cfg.Store
	if store == nil {
		store = NewMemStore()
	}
	sample := cfg.AnalyzeSample
	if sample == 0 {
		sample = defaultAnalyzeSample
	}
	t := &Table{
		id:            id,
		name:          name,
		schema:        schema,
		pool:          pool,
		store:         store,
		deleted:       bitpack.NewBitmap(0),
		analyzeSample: sample,
	}
	for range schema {
		t.cols = append(t.cols, &column{})
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's storage id.
func (t *Table) ID() uint32 { return t.id }

// Schema returns the table schema.
func (t *Table) Schema() types.Schema { return t.schema }

// Rows returns the number of live rows.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Stats returns a snapshot of scan counters.
func (t *Table) Stats() Stats {
	return Stats{
		StridesVisited: t.stats.stridesVisited.Load(),
		StridesSkipped: t.stats.stridesSkipped.Load(),
		PagesRead:      t.stats.pagesRead.Load(),
		RowsScanned:    t.stats.rowsScanned.Load(),
		Rebuilds:       t.stats.rebuilds.Load(),
	}
}

// ResetStats zeroes scan counters between experiment phases.
func (t *Table) ResetStats() {
	t.stats.stridesVisited.Store(0)
	t.stats.stridesSkipped.Store(0)
	t.stats.pagesRead.Store(0)
	t.stats.rowsScanned.Store(0)
	t.stats.rebuilds.Store(0)
}

// sealedStrides returns how many full strides have been sealed.
func (t *Table) sealedStrides() int { return t.rows / page.StrideSize }

// openLen returns how many rows sit in the open stride.
func (t *Table) openLen() int { return t.rows % page.StrideSize }

// Insert validates and appends one row.
func (t *Table) Insert(row types.Row) error {
	checked, err := t.schema.Validate(row)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(checked)
}

// InsertBatch bulk-loads rows; the first batch triggers encoding analysis
// over a leading sample (the LOAD-time "compression optimized globally per
// column" of §II.B.1).
func (t *Table) InsertBatch(rows []types.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rows == 0 && len(rows) > 0 {
		t.analyzeLocked(rows)
	}
	for _, r := range rows {
		checked, err := t.schema.Validate(r)
		if err != nil {
			return err
		}
		if err := t.insertLocked(checked); err != nil {
			return err
		}
	}
	return nil
}

// analyzeLocked chooses encoders from a sample of the incoming load.
func (t *Table) analyzeLocked(rows []types.Row) {
	n := len(rows)
	if n > t.analyzeSample {
		n = t.analyzeSample
	}
	for ci := range t.cols {
		sample := make([]types.Value, 0, n)
		for _, r := range rows[:n] {
			if ci < len(r) {
				sample = append(sample, r[ci])
			}
		}
		t.cols[ci].enc = encoding.ChooseEncoder(t.schema[ci].Kind, sample)
		t.cols[ci].analyzed = true
	}
}

// ensureEncodersLocked gives un-analyzed columns growable dictionaries
// (the INSERT-before-LOAD path).
func (t *Table) ensureEncodersLocked() {
	for ci, c := range t.cols {
		if c.enc == nil {
			c.enc = encoding.NewDict(t.schema[ci].Kind)
		}
	}
}

func (t *Table) insertLocked(checked types.Row) error {
	t.ensureEncodersLocked()
	t.rawBytes += encoding.EstimateRawBytes(checked)
	for ci, c := range t.cols {
		v := checked[ci]
		if v.IsNull() {
			c.openCodes = append(c.openCodes, 0)
			c.openNulls = append(c.openNulls, true)
			c.openVals = append(c.openVals, types.NullOf(t.schema[ci].Kind))
			continue
		}
		code, err := t.encodeValueLocked(ci, v)
		if err != nil {
			return err
		}
		c.openCodes = append(c.openCodes, code)
		c.openNulls = append(c.openNulls, false)
		c.openVals = append(c.openVals, v)
	}
	t.rows++
	t.live++
	t.statsVer++
	t.growDeletedLocked()
	if t.openLen() == 0 { // stride just filled
		if err := t.sealStrideLocked(t.sealedStrides() - 1); err != nil {
			return err
		}
	}
	return nil
}

// encodeValueLocked encodes v for column ci, rebuilding the column's
// encoding when the value falls outside a fixed frame of reference.
func (t *Table) encodeValueLocked(ci int, v types.Value) (uint64, error) {
	c := t.cols[ci]
	switch f := c.enc.(type) {
	case *encoding.IntFOR:
		raw, isInt := v.AsInt()
		if !isInt {
			return 0, fmt.Errorf("columnar: non-integral value %v in column %s", v, t.schema[ci].Name)
		}
		if !f.Contains(raw) {
			if err := t.rebuildColumnLocked(ci, v); err != nil {
				return 0, err
			}
		}
	case *encoding.FloatFOR:
		fv, isNum := v.AsFloat()
		if !isNum {
			return 0, fmt.Errorf("columnar: non-numeric value %v in column %s", v, t.schema[ci].Name)
		}
		if !f.Contains(fv) {
			if err := t.rebuildColumnLocked(ci, v); err != nil {
				return 0, err
			}
		}
	}
	return t.cols[ci].enc.Encode(v), nil
}

// growDeletedLocked extends the tombstone bitmap to cover all rows.
func (t *Table) growDeletedLocked() {
	if t.deleted.Len() < t.rows {
		nb := bitpack.NewBitmap(((t.rows / page.StrideSize) + 1) * page.StrideSize)
		t.deleted.ForEach(func(i int) { nb.Set(i) })
		t.deleted = nb
	}
}

// sealStrideLocked packs every column's open buffers for stride s into
// pages at the narrowest width that fits the stride's codes (seal-time
// repack: this is where frequency encoding pays — strides of hot values
// pack at very narrow widths), writes them to the store and records the
// synopsis entries.
func (t *Table) sealStrideLocked(s int) error {
	for ci, c := range t.cols {
		maxCode := uint64(0)
		for i, code := range c.openCodes {
			if !c.openNulls[i] && code > maxCode {
				maxCode = code
			}
		}
		pg := page.New(t.pageID(ci, s), bitpack.WidthFor(maxCode))
		for i, code := range c.openCodes {
			if c.openNulls[i] {
				pg.Nulls.Set(i)
				pg.Codes.Append(0)
				continue
			}
			pg.Codes.Append(code)
		}
		nulls := c.openNulls
		c.syn.Set(s, synopsis.Summarize(c.openCodes, func(i int) bool { return nulls[i] }))
		c.syn.Observe(c.openCodes, func(i int) bool { return nulls[i] })
		if err := t.store.WritePage(pg.ID, pg.Marshal()); err != nil {
			return fmt.Errorf("columnar: seal %v: %w", pg.ID, err)
		}
		c.openCodes = c.openCodes[:0]
		c.openNulls = c.openNulls[:0]
		c.openVals = c.openVals[:0]
	}
	return nil
}

func (t *Table) pageID(ci, stride int) page.ID {
	return page.ID{Table: t.id, Column: uint16(ci), Stride: uint32(stride)}
}

// loadPage fetches a sealed page through the buffer pool.
func (t *Table) loadPage(ci, stride int) (*page.Page, error) {
	id := t.pageID(ci, stride)
	return t.pool.Get(id, func(id page.ID) (*page.Page, error) {
		data, err := t.store.ReadPage(id)
		if err != nil {
			return nil, err
		}
		return page.Unmarshal(data)
	})
}

// rebuildColumnLocked re-encodes a whole column after a frame-of-reference
// overflow, widening the domain to include extra. Pages are rewritten and
// cached copies invalidated. This is rare and counted in Stats.Rebuilds.
func (t *Table) rebuildColumnLocked(ci int, extra types.Value) error {
	t.stats.rebuilds.Add(1)
	c := t.cols[ci]
	// Gather every live value of the column (including tombstoned rows:
	// codes must stay positionally aligned).
	var vals []types.Value
	sealed := t.sealedStrides()
	for s := 0; s < sealed; s++ {
		pg, err := t.loadPage(ci, s)
		if err != nil {
			return err
		}
		for i := 0; i < pg.Rows(); i++ {
			if pg.Nulls.Get(i) {
				vals = append(vals, types.NullOf(t.schema[ci].Kind))
			} else {
				vals = append(vals, c.enc.Decode(pg.Codes.Get(i)))
			}
		}
	}
	vals = append(vals, c.openVals...)

	// Re-analyze over the full column plus the overflowing value, with
	// widened bounds so repeated drift amortizes.
	sample := append(append([]types.Value(nil), vals...), extra)
	if raw, ok := extra.AsFloat(); ok {
		sample = append(sample,
			types.NewFloat(raw+raw/2+1),
			types.NewFloat(raw-raw/2-1))
		if t.schema[ci].Kind != types.KindFloat {
			sample = sample[:len(sample)-2]
			i, _ := extra.AsInt()
			sample = append(sample, types.NewInt(i+i/2+1), types.NewInt(i-i/2-1))
		}
	}
	c.enc = encoding.ChooseEncoder(t.schema[ci].Kind, sample)
	c.syn.Reset()

	// Re-encode sealed strides.
	for s := 0; s < sealed; s++ {
		lo, hi := s*page.StrideSize, (s+1)*page.StrideSize
		codes := make([]uint64, 0, page.StrideSize)
		nulls := make([]bool, 0, page.StrideSize)
		maxCode := uint64(0)
		for _, v := range vals[lo:hi] {
			if v.IsNull() {
				codes = append(codes, 0)
				nulls = append(nulls, true)
				continue
			}
			code := c.enc.Encode(v)
			codes = append(codes, code)
			nulls = append(nulls, false)
			if code > maxCode {
				maxCode = code
			}
		}
		pg := page.New(t.pageID(ci, s), bitpack.WidthFor(maxCode))
		for i, code := range codes {
			if nulls[i] {
				pg.Nulls.Set(i)
				pg.Codes.Append(0)
			} else {
				pg.Codes.Append(code)
			}
		}
		ns := nulls
		c.syn.Set(s, synopsis.Summarize(codes, func(i int) bool { return ns[i] }))
		c.syn.Observe(codes, func(i int) bool { return ns[i] })
		if err := t.store.WritePage(pg.ID, pg.Marshal()); err != nil {
			return err
		}
	}
	// Re-encode the open stride buffers.
	c.openCodes = c.openCodes[:0]
	openNulls := c.openNulls
	c.openNulls = c.openNulls[:0]
	open := vals[sealed*page.StrideSize:]
	for i, v := range open {
		if openNulls[i] {
			c.openCodes = append(c.openCodes, 0)
			c.openNulls = append(c.openNulls, true)
			continue
		}
		c.openCodes = append(c.openCodes, c.enc.Encode(v))
		c.openNulls = append(c.openNulls, false)
	}
	t.pool.Invalidate(t.id)
	return nil
}

// Truncate removes all rows, pages and synopsis entries.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.store.DeletePages(t.id); err != nil {
		return err
	}
	t.pool.Invalidate(t.id)
	for ci, c := range t.cols {
		c.openCodes = c.openCodes[:0]
		c.openNulls = c.openNulls[:0]
		c.openVals = c.openVals[:0]
		c.syn.Reset()
		c.enc = nil
		c.analyzed = false
		_ = ci
	}
	t.rows, t.live = 0, 0
	t.rawBytes = 0
	t.statsVer++
	t.deleted = bitpack.NewBitmap(0)
	return nil
}

// Drop releases the table's storage.
func (t *Table) Drop() error { return t.Truncate() }

// ColumnDict returns column ci's dictionary when the column is eligible
// for compressed (code-space) execution, or nil. Eligibility requires an
// analyzed frequency-dictionary encoder on a non-float column: float
// dictionaries are excluded centrally here because NaN keys break the
// value↔code bijection the executor's code-keyed joins and group-bys rely
// on (NaN != NaN, so NaN rows can occupy several codes).
func (t *Table) ColumnDict(ci int) *encoding.Dict {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ci < 0 || ci >= len(t.cols) {
		return nil
	}
	if t.schema[ci].Kind == types.KindFloat {
		return nil
	}
	d, _ := t.cols[ci].enc.(*encoding.Dict)
	return d
}

// ColumnEncoding names column ci's encoder ("RAW", "MINUS", "FREQ-DICT",
// or "" before analysis).
func (t *Table) ColumnEncoding(ci int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ci < 0 || ci >= len(t.cols) || t.cols[ci].enc == nil {
		return ""
	}
	return t.cols[ci].enc.Kind().String()
}

// ColumnCompression is one column's entry in the compression report,
// surfaced by the MON_COMPRESSION monitoring view.
type ColumnCompression struct {
	Name        string
	Encoding    string // encoder kind, "" before analysis
	Cardinality int    // distinct codes (dictionary encoders only)
	WidthBits   uint   // bits per code for the current domain
	DictBytes   int    // encoder auxiliary storage
}

// ColumnCompressionReport returns per-column encoder statistics.
func (t *Table) ColumnCompressionReport() []ColumnCompression {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ColumnCompression, len(t.cols))
	for ci, c := range t.cols {
		cc := ColumnCompression{Name: t.schema[ci].Name}
		if c.enc != nil {
			cc.Encoding = c.enc.Kind().String()
			cc.DictBytes = c.enc.MemSize()
			if d, ok := c.enc.(*encoding.Dict); ok {
				cc.Cardinality = d.Cardinality()
				cc.WidthBits = d.Width()
			} else if w, ok := c.enc.(interface{ Width() uint }); ok {
				cc.WidthBits = w.Width()
			}
		}
		out[ci] = cc
	}
	return out
}

// CompressionReport describes the table's storage efficiency (experiment
// F-B): compressed bytes include pages, dictionaries and the synopsis.
type CompressionReport struct {
	RawBytes        int
	PageBytes       int
	DictBytes       int
	SynopsisBytes   int
	CompressedBytes int
	Ratio           float64
}

// Compression computes the table's compression report.
func (t *Table) Compression() CompressionReport {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var r CompressionReport
	r.RawBytes = t.rawBytes
	sealed := t.sealedStrides()
	for ci, c := range t.cols {
		for s := 0; s < sealed; s++ {
			if pg, err := t.loadPage(ci, s); err == nil {
				r.PageBytes += pg.MemSize()
			}
		}
		r.PageBytes += len(c.openCodes) * 8 // open stride unpacked
		if c.enc != nil {
			r.DictBytes += c.enc.MemSize()
		}
		r.SynopsisBytes += c.syn.MemSize()
	}
	r.CompressedBytes = r.PageBytes + r.DictBytes + r.SynopsisBytes
	if r.CompressedBytes > 0 {
		r.Ratio = float64(r.RawBytes) / float64(r.CompressedBytes)
	}
	return r
}
