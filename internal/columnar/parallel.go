package columnar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dashdb/internal/encoding"
	"dashdb/internal/synopsis"
	"dashdb/internal/telemetry"
)

// encPredicates is a predicate list translated to code space.
type encPredicates []encoding.Predicate

// ParallelScan is the morsel-driven variant of Scan (§II.B.7 strides ×
// machine cores): sealed strides are morsels on a shared work queue, and
// dop workers pull morsel indexes, run data skipping and SWAR predicate
// evaluation independently, and deliver their batches to fn. The open
// (unsealed) stride is one additional morsel, so the effective degree of
// parallelism is capped at sealedStrides+1 — a table that is all open
// stride degenerates to a serial scan.
//
// Contract: fn is invoked concurrently from up to dop goroutines. The
// worker argument (0 <= worker < dop) identifies the calling worker so
// callers can keep per-worker state without locking; one worker never
// runs fn concurrently with itself. Every Batch is confined to the
// delivering worker and owns a private lazy page map (see Batch), so
// callbacks must not share a batch across goroutines and must not retain
// it past the snapshot's lifetime. All workers read the same pinned
// epoch: concurrent writers are invisible, and mutating the table from
// inside fn is allowed (it affects later epochs, not this scan). fn
// returning false cancels the whole scan; in-flight workers stop at their
// next morsel boundary. Batches arrive in no particular order across
// workers; within one worker they arrive in ascending stride order.
//
// Storage failures in any worker (including lazy materialization inside
// fn) abort the scan and are returned as an error.
func (s *Snapshot) ParallelScan(preds []Pred, dop int, fn func(worker int, b *Batch) bool) error {
	return s.ParallelScanWithStats(preds, dop, nil, fn)
}

// ParallelScanWithStats is ParallelScan with a per-query telemetry sink:
// each worker records stride visits, synopsis skips and delivered rows into
// its own ScanShard of ss with plain (non-atomic) increments — the scan's
// WaitGroup provides the happens-before edge before anyone reads the sums.
// ss may be nil, which makes this identical to ParallelScan.
func (s *Snapshot) ParallelScanWithStats(preds []Pred, dop int, ss *telemetry.ScanStats, fn func(worker int, b *Batch) bool) error {
	t, st := s.t, s.state()
	if st.rows == 0 {
		return nil
	}
	if err := t.checkPreds(preds); err != nil {
		return err
	}
	trans, none := st.translatePreds(preds)
	if none {
		return nil
	}

	sealed := st.sealedStrides()
	morsels := sealed
	if st.openLen() > 0 {
		morsels++
	}
	if dop > morsels {
		dop = morsels
	}
	if dop <= 1 {
		// Serial fallback keeps row-id order (and is what a one-morsel
		// table always gets).
		var err error
		func() {
			defer recoverScanPanic(&err)
			err = s.scanState(preds, ss.Shard(0), func(b *Batch) bool { return fn(0, b) })
		}()
		return err
	}

	var (
		next     atomic.Int64 // shared morsel queue head
		stop     atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Page-load panics raised inside fn's lazy batch
			// materialization surface as scan errors, as in Scan.
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("columnar: scan aborted: %v", r))
				}
			}()
			sh := ss.Shard(worker)
			for !stop.Load() {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				if m == sealed {
					// The open-stride morsel.
					t.stats.stridesVisited.Add(1)
					sh.Visit()
					b := evalOpenStride(t, st, preds)
					if b.Len() > 0 {
						sh.Rows(b.Len())
						if !fn(worker, b) {
							stop.Store(true)
						}
					}
					continue
				}
				if st.skipStride(m, preds, trans) {
					t.stats.stridesSkipped.Add(1)
					sh.Skip()
					continue
				}
				t.stats.stridesVisited.Add(1)
				sh.Visit()
				b, err := evalSealedStride(t, st, m, preds, trans)
				if err != nil {
					fail(err)
					return
				}
				if b.Len() > 0 {
					sh.Rows(b.Len())
					if !fn(worker, b) {
						stop.Store(true)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// ParallelScan runs the morsel-driven scan over a freshly pinned epoch.
func (t *Table) ParallelScan(preds []Pred, dop int, fn func(worker int, b *Batch) bool) error {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.ParallelScan(preds, dop, fn)
}

// ParallelScanWithStats runs the morsel-driven scan with telemetry over a
// freshly pinned epoch.
func (t *Table) ParallelScanWithStats(preds []Pred, dop int, ss *telemetry.ScanStats, fn func(worker int, b *Batch) bool) error {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.ParallelScanWithStats(preds, dop, ss, fn)
}

// translatePreds translates predicates to code space once per scan.
// none is true when some conjunct can never match (empty result).
func (st *tableState) translatePreds(preds []Pred) (encPredicates, bool) {
	trans := make(encPredicates, len(preds))
	for i, p := range preds {
		trans[i] = st.cols[p.Col].enc.Translate(p.Op, p.Val)
		if trans[i].None {
			return nil, true
		}
	}
	return trans, false
}

// skipStride applies data skipping: the stride can be skipped when any
// conjunct is unsatisfiable in the stride's synopsis span.
func (st *tableState) skipStride(s int, preds []Pred, trans encPredicates) bool {
	for i, p := range preds {
		if !synopsis.MayMatch(trans[i], st.cols[p.Col].syn[s]) {
			return true
		}
	}
	return false
}
