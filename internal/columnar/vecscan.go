package columnar

import (
	"fmt"

	"dashdb/internal/encoding"
	"dashdb/internal/vec"
)

// Vectors materializes the batch's selected tuples as typed column
// vectors, decoding column-at-a-time: one page lookup per column and a
// tight decode loop over the selected offsets, instead of the per-row
// Value calls Row performs. projection lists the table-schema ordinals to
// produce (nil = all columns). Like Row/Column, the returned vectors are
// copies and stay valid after the scan callback returns.
func (b *Batch) Vectors(projection []int) []*vec.Vector {
	if projection == nil {
		out := make([]*vec.Vector, len(b.t.schema))
		for ci := range b.t.schema {
			out[ci] = b.vector(ci)
		}
		return out
	}
	out := make([]*vec.Vector, len(projection))
	for j, ci := range projection {
		out[j] = b.vector(ci)
	}
	return out
}

// vector decodes one column of the batch's selected tuples.
func (b *Batch) vector(ci int) *vec.Vector {
	kind := b.t.schema[ci].Kind
	v := vec.New(kind, len(b.sel))
	c := b.t.cols[ci]
	if b.stride < 0 {
		// Open stride: values are buffered unencoded.
		for k, off := range b.sel {
			if c.openNulls[off] {
				v.SetNull(k)
			} else {
				v.Set(k, c.openVals[off])
			}
		}
		return v
	}
	pg, ok := b.pages[ci]
	if !ok {
		var err error
		pg, err = b.t.loadPage(ci, b.stride)
		if err != nil {
			panic(fmt.Sprintf("columnar: batch page load %v: %v", b.t.pageID(ci, b.stride), err))
		}
		b.pages[ci] = pg
	}
	codes, nulls := pg.Codes, pg.Nulls
	if f, ok := c.enc.(*encoding.IntFOR); ok && v.I64 != nil {
		// Frame-of-reference fast path: raw = base + code, written straight
		// into the int64 payload without boxing a types.Value per tuple.
		base := f.Base()
		for k, off := range b.sel {
			if nulls.Get(off) {
				v.SetNull(k)
				continue
			}
			v.I64[k] = base + int64(codes.Get(off))
		}
		return v
	}
	enc := c.enc
	for k, off := range b.sel {
		if nulls.Get(off) {
			v.SetNull(k)
			continue
		}
		v.Set(k, enc.Decode(codes.Get(off)))
	}
	return v
}
