package columnar

import (
	"fmt"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/types"
	"dashdb/internal/vec"
)

// Vectors materializes the batch's selected tuples as typed column
// vectors, decoding column-at-a-time: one page lookup per column and a
// tight decode loop over the selected offsets, instead of the per-row
// Value calls Row performs. projection lists the table-schema ordinals to
// produce (nil = all columns). Like Row/Column, the returned vectors are
// copies and stay valid after the scan callback returns.
func (b *Batch) Vectors(projection []int) []*vec.Vector {
	return b.VectorsEnc(projection, nil)
}

// VectorsEnc is Vectors with per-output-position control over compressed
// emission: when encoded[j] is true the j'th output column is delivered as
// a code-carrying vector (dictionary codes + *encoding.Dict reference)
// instead of materialized values — the paper's operate-on-compressed-data
// hand-off (§II.B.2). encoded positions must correspond to columns for
// which ColumnDict reports a dictionary; nil encoded means decode
// everything. The scan's pinned epoch guarantees the dictionary captured
// inside each code vector assigned every code in the batch (dictionaries
// are append-only, so later epochs can only extend it).
func (b *Batch) VectorsEnc(projection []int, encoded []bool) []*vec.Vector {
	if projection == nil {
		out := make([]*vec.Vector, len(b.t.schema))
		for ci := range b.t.schema {
			out[ci] = b.vector(ci, len(encoded) > ci && encoded[ci])
		}
		return out
	}
	out := make([]*vec.Vector, len(projection))
	for j, ci := range projection {
		out[j] = b.vector(ci, len(encoded) > j && encoded[j])
	}
	return out
}

// vector decodes one column of the batch's selected tuples, or gathers
// its raw dictionary codes when wantCodes is set.
func (b *Batch) vector(ci int, wantCodes bool) *vec.Vector {
	kind := b.t.schema[ci].Kind
	c := &b.st.cols[ci]
	if wantCodes {
		if d, ok := c.enc.(*encoding.Dict); ok {
			return b.codeVector(ci, kind, d)
		}
		// Defensive: the planner thought this column was dict-encoded but
		// the encoder changed (e.g. truncate + reload); decode instead.
	}
	v := vec.New(kind, len(b.sel))
	if b.stride < 0 {
		// Open stride: values are buffered unencoded.
		for k, off := range b.sel {
			if c.openNulls[off] {
				v.SetNull(k)
			} else {
				v.Set(k, c.openVals[off])
			}
		}
		return v
	}
	pg := b.page(ci)
	codes, nulls := pg.Codes, pg.Nulls
	if f, ok := c.enc.(*encoding.IntFOR); ok && v.I64 != nil {
		// Frame-of-reference fast path: raw = base + code, written straight
		// into the int64 payload without boxing a types.Value per tuple.
		base := f.Base()
		for k, off := range b.sel {
			if nulls.Get(off) {
				v.SetNull(k)
				continue
			}
			v.I64[k] = base + int64(codes.Get(off))
		}
		return v
	}
	if d, ok := c.enc.(*encoding.Dict); ok {
		// Dictionary fast path: decode through a single snapshot instead of
		// a per-row Decode call (which takes the dictionary lock each time),
		// writing strings straight into the string payload with no per-row
		// types.Value boxing.
		dom := d.Snapshot()
		if v.Str != nil {
			for k, off := range b.sel {
				if nulls.Get(off) {
					v.SetNull(k)
					continue
				}
				v.Str[k] = dom[codes.Get(off)].Str()
			}
			return v
		}
		for k, off := range b.sel {
			if nulls.Get(off) {
				v.SetNull(k)
				continue
			}
			v.Set(k, dom[codes.Get(off)])
		}
		return v
	}
	enc := c.enc
	for k, off := range b.sel {
		if nulls.Get(off) {
			v.SetNull(k)
			continue
		}
		v.Set(k, enc.Decode(codes.Get(off)))
	}
	return v
}

// codeVector gathers column ci's dictionary codes for the selected tuples
// into a code-carrying vector over dict.
func (b *Batch) codeVector(ci int, kind types.Kind, dict *encoding.Dict) *vec.Vector {
	v := vec.NewCodes(kind, len(b.sel), dict)
	if b.stride < 0 {
		c := &b.st.cols[ci]
		for k, off := range b.sel {
			if c.openNulls[off] {
				v.SetNull(k)
				continue
			}
			v.Codes[k] = c.openCodes[off]
		}
		return v
	}
	pg := b.page(ci)
	codes, nulls := pg.Codes, pg.Nulls
	for k, off := range b.sel {
		if nulls.Get(off) {
			v.SetNull(k)
			continue
		}
		v.Codes[k] = codes.Get(off)
	}
	return v
}

// page loads (and caches) the batch's page for column ci.
func (b *Batch) page(ci int) *page.Page {
	pg, ok := b.pages[ci]
	if !ok {
		gen := b.st.cols[ci].gen
		var err error
		pg, err = b.t.loadPageGen(ci, gen, b.stride)
		if err != nil {
			panicPageLoad(b.t.id, ci, gen, b.stride, err)
		}
		b.pages[ci] = pg
	}
	return pg
}

// panicPageLoad keeps the formatted abort out of Batch.page: the page
// lookup runs once per column per stride from the vector-scan kernels,
// and an inline fmt.Sprintf would outline it from every caller.
func panicPageLoad(tableID uint32, ci int, gen uint32, stride int, err error) {
	panic(fmt.Sprintf("columnar: batch page load %v: %v", pageIDFor(tableID, ci, gen, stride), err))
}
