package columnar

import (
	"sync"

	"dashdb/internal/bitpack"
	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/snapshot"
	"dashdb/internal/synopsis"
	"dashdb/internal/types"
)

// colView is one column's immutable view inside an epoch: the encoder at
// publish time (dictionaries are append-only and internally locked, so
// sharing one across epochs is safe; frame-of-reference encoders are
// immutable and replaced wholesale on rebuild), the page generation its
// sealed strides were written under, capacity-clamped views of the
// synopsis entries and open-stride buffers, and a value copy of the
// distinct-count sketch.
type colView struct {
	enc       encoding.Encoder
	gen       uint32
	syn       []synopsis.Entry
	sketch    synopsis.Sketch
	openCodes []uint64
	openNulls []bool
	openVals  []types.Value
}

// tableState is one published epoch's worth of table state. Everything
// reachable from it is immutable — except the planner-statistics cache,
// which is lazily filled under its own lock (a cache over immutable data
// needs no versioning: it can never go stale within its state).
type tableState struct {
	schema   types.Schema
	cols     []colView
	rows     int // total rows appended (including deleted)
	live     int
	deleted  *bitpack.Bitmap // copy-on-write: never mutated once published
	rawBytes int

	statsMu    sync.Mutex
	statsCache map[int]ColumnStats
}

// sealedStrides returns how many full strides this epoch covers.
func (st *tableState) sealedStrides() int { return st.rows / page.StrideSize }

// openLen returns how many rows this epoch's open stride holds.
func (st *tableState) openLen() int { return st.rows % page.StrideSize }

// columnDict applies the compressed-execution eligibility gate to column
// ci's encoder in this state.
func (st *tableState) columnDict(ci int) *encoding.Dict {
	if ci < 0 || ci >= len(st.cols) {
		return nil
	}
	if st.schema[ci].Kind == types.KindFloat {
		return nil
	}
	d, _ := st.cols[ci].enc.(*encoding.Dict)
	return d
}

// Snapshot is a pinned, immutable view of a table: one epoch held for the
// lifetime of a query. All scan entry points on Snapshot read only the
// pinned state — concurrent writers publish new epochs without ever
// touching it. Callers must Release exactly once; holding a snapshot
// indefinitely holds back page reclamation (visible as "behind" in
// MON_SNAPSHOTS).
type Snapshot struct {
	t *Table
	e *snapshot.Epoch[*tableState]
}

// Snapshot pins the table's current epoch.
func (t *Table) Snapshot() *Snapshot {
	return &Snapshot{t: t, e: t.epochs.Pin()}
}

// Release drops the snapshot's pin. The snapshot must not be used after.
func (s *Snapshot) Release() { s.e.Release() }

// state returns the pinned epoch's payload.
func (s *Snapshot) state() *tableState { return s.e.State() }

// Table returns the table this snapshot was taken from.
func (s *Snapshot) Table() *Table { return s.t }

// Epoch returns the pinned epoch's sequence number: queries planned and
// executed against equal epochs see byte-identical data.
func (s *Snapshot) Epoch() uint64 { return s.e.Seq() }

// Rows returns the snapshot's live row count — stable for the snapshot's
// lifetime no matter how many writers commit meanwhile.
func (s *Snapshot) Rows() int { return s.state().live }

// Schema returns the table schema.
func (s *Snapshot) Schema() types.Schema { return s.t.schema }

// ColumnDict returns column ci's dictionary as pinned by this snapshot
// when the column is eligible for compressed execution, or nil (same gate
// as Table.ColumnDict).
func (s *Snapshot) ColumnDict(ci int) *encoding.Dict {
	return s.state().columnDict(ci)
}

// ColumnEncoding names column ci's encoder in the pinned epoch.
func (s *Snapshot) ColumnEncoding(ci int) string {
	st := s.state()
	if ci < 0 || ci >= len(st.cols) || st.cols[ci].enc == nil {
		return ""
	}
	return st.cols[ci].enc.Kind().String()
}

// SnapshotSet pins at most one snapshot per table and releases them all
// at once. The session layer threads one through each statement so every
// table reference inside the statement — scan, plan statistics, DML
// source — resolves against one consistent epoch, and so self-referencing
// statements (INSERT INTO t SELECT FROM t) read the pre-statement state.
type SnapshotSet struct {
	mu    sync.Mutex
	snaps map[*Table]*Snapshot
}

// NewSnapshotSet returns an empty set.
func NewSnapshotSet() *SnapshotSet {
	return &SnapshotSet{snaps: make(map[*Table]*Snapshot)}
}

// Get returns the set's snapshot of t, pinning one on first use. Safe for
// concurrent use (parallel operators may resolve their snapshot late).
func (ss *SnapshotSet) Get(t *Table) *Snapshot {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.snaps[t]; ok {
		return s
	}
	s := t.Snapshot()
	ss.snaps[t] = s
	return s
}

// ReleaseAll releases every pinned snapshot and empties the set.
func (ss *SnapshotSet) ReleaseAll() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for t, s := range ss.snaps {
		s.Release()
		delete(ss.snaps, t)
	}
}

// SnapshotInfo is the table's epoch and bulk-ingest telemetry
// (MON_SNAPSHOTS).
type SnapshotInfo struct {
	// Epoch is the current epoch's sequence number.
	Epoch uint64
	// PinnedReaders counts reader pins across current and superseded
	// epochs.
	PinnedReaders int64
	// Behind counts superseded epochs still pinned by old readers,
	// holding back resource reclamation.
	Behind int
	// Drained counts epochs fully retired since the table was created.
	Drained uint64
	// BulkFlushes / BulkRows / BulkBytes count BulkAppend activity.
	BulkFlushes uint64
	BulkRows    uint64
	BulkBytes   uint64
}

// SnapshotInfo reports the table's epoch counters.
func (t *Table) SnapshotInfo() SnapshotInfo {
	info := t.epochs.Info()
	return SnapshotInfo{
		Epoch:         info.Seq,
		PinnedReaders: info.PinnedReaders,
		Behind:        info.Behind,
		Drained:       info.Drained,
		BulkFlushes:   t.bulk.flushes.Load(),
		BulkRows:      t.bulk.rows.Load(),
		BulkBytes:     t.bulk.bytes.Load(),
	}
}
