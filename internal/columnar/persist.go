package columnar

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/synopsis"
	"dashdb/internal/types"
)

// Table persistence: SaveMeta writes everything that is not already in
// sealed pages — encoders (dictionaries), synopses, the open stride's
// rows, tombstones and counters — as a metadata blob in the page store.
// OpenTable reconstructs the table from that blob plus the existing
// pages. Together with the clustered filesystem this realizes §II.E's
// portability claim: copy the filesystem, reopen the tables anywhere.

// metaColumn is the reserved column ordinal of the metadata pseudo-page.
const metaColumn = 0xFFFF

// metaID returns the table's metadata blob location.
func metaID(table uint32) page.ID {
	return page.ID{Table: table, Column: metaColumn, Stride: 0}
}

// colMeta is one column's persisted state.
type colMeta struct {
	Encoder  []byte
	Synopsis []synopsis.Entry
	Gen      uint32 // page generation the sealed strides live under
}

// tableMetaBlob is the serialized table state.
type tableMetaBlob struct {
	Name     string
	Rows     int
	Live     int
	RawBytes int
	GenSeq   uint32 // page-generation allocator position
	Deleted  []int  // set tombstone positions
	Cols     []colMeta
	OpenRows [][]encodingWire // open-stride rows, row-major
}

// encodingWire mirrors the encoder wire value (kept local to avoid
// exporting encoding internals).
type encodingWire struct {
	K    uint8
	Null bool
	I    int64
	F    float64
	S    string
}

func rowToWire(r types.Row) []encodingWire {
	out := make([]encodingWire, len(r))
	for i, v := range r {
		w := encodingWire{K: uint8(v.Kind()), Null: v.IsNull()}
		if !w.Null {
			switch v.Kind() {
			case types.KindBool:
				if v.Bool() {
					w.I = 1
				}
			case types.KindInt, types.KindDate, types.KindTimestamp:
				w.I = v.Int()
			case types.KindFloat:
				w.F = v.Float()
			case types.KindString:
				w.S = v.Str()
			}
		}
		out[i] = w
	}
	return out
}

func wireToRow(ws []encodingWire) types.Row {
	r := make(types.Row, len(ws))
	for i, w := range ws {
		k := types.Kind(w.K)
		if w.Null {
			r[i] = types.NullOf(k)
			continue
		}
		switch k {
		case types.KindBool:
			r[i] = types.NewBool(w.I != 0)
		case types.KindInt:
			r[i] = types.NewInt(w.I)
		case types.KindDate:
			r[i] = types.NewDate(w.I)
		case types.KindTimestamp:
			r[i] = types.NewTimestamp(w.I)
		case types.KindFloat:
			r[i] = types.NewFloat(w.F)
		case types.KindString:
			r[i] = types.NewString(w.S)
		default:
			r[i] = types.Null
		}
	}
	return r
}

// SaveMeta persists the table's non-page state into the page store.
func (t *Table) SaveMeta() error {
	t.mu.Lock() // writer lock: ensureEncodersLocked may install encoders
	defer t.mu.Unlock()
	t.ensureEncodersLocked()
	blob := tableMetaBlob{
		Name:     t.name,
		Rows:     t.rows,
		Live:     t.live,
		RawBytes: t.rawBytes,
		GenSeq:   t.genSeq,
	}
	t.deleted.ForEach(func(i int) { blob.Deleted = append(blob.Deleted, i) })
	for _, c := range t.cols {
		encBytes, err := encoding.MarshalEncoder(c.enc)
		if err != nil {
			return fmt.Errorf("columnar: save %s: %w", t.name, err)
		}
		cm := colMeta{Encoder: encBytes, Gen: c.gen}
		for s := 0; s < c.syn.Strides(); s++ {
			cm.Synopsis = append(cm.Synopsis, c.syn.Entry(s))
		}
		blob.Cols = append(blob.Cols, cm)
	}
	// Open-stride rows, reconstructed row-major from the column buffers.
	open := t.openLen()
	for i := 0; i < open; i++ {
		row := make(types.Row, len(t.cols))
		for ci, c := range t.cols {
			row[ci] = c.openVals[i]
		}
		blob.OpenRows = append(blob.OpenRows, rowToWire(row))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return fmt.Errorf("columnar: save %s: %w", t.name, err)
	}
	return t.store.WritePage(metaID(t.id), buf.Bytes())
}

// OpenTable reopens a table previously persisted with SaveMeta: encoders
// and synopses come from the metadata blob, sealed pages stay where they
// are in the store.
func OpenTable(id uint32, schema types.Schema, cfg Config) (*Table, error) {
	store := cfg.Store
	if store == nil {
		return nil, fmt.Errorf("columnar: OpenTable requires a page store")
	}
	data, err := store.ReadPage(metaID(id))
	if err != nil {
		return nil, fmt.Errorf("columnar: open table %d: %w", id, err)
	}
	var blob tableMetaBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("columnar: open table %d: %w", id, err)
	}
	if len(blob.Cols) != len(schema) {
		return nil, fmt.Errorf("columnar: open table %d: schema has %d columns, meta has %d", id, len(schema), len(blob.Cols))
	}
	t := NewTable(id, blob.Name, schema, cfg)
	sealedRows := blob.Rows - len(blob.OpenRows)
	t.rows = sealedRows
	t.live = sealedRows // adjusted below by tombstones and open rows
	t.rawBytes = blob.RawBytes
	t.genSeq = blob.GenSeq
	for ci, cm := range blob.Cols {
		enc, err := encoding.UnmarshalEncoder(cm.Encoder)
		if err != nil {
			return nil, fmt.Errorf("columnar: open table %d column %d: %w", id, ci, err)
		}
		t.cols[ci].enc = enc
		t.cols[ci].analyzed = true
		t.cols[ci].gen = cm.Gen
		for s, e := range cm.Synopsis {
			t.cols[ci].syn.Set(s, e)
		}
	}
	t.growDeletedLocked()
	// Re-append the open stride through the normal insert path (codes are
	// stable because the encoders' domains were restored).
	for _, wr := range blob.OpenRows {
		if err := t.insertLocked(wireToRow(wr)); err != nil {
			return nil, fmt.Errorf("columnar: open table %d: replay open stride: %w", id, err)
		}
		t.rawBytes -= encoding.EstimateRawBytes(wireToRow(wr)) // insertLocked re-added it
	}
	t.rawBytes = blob.RawBytes
	// Tombstones last (insertLocked grew the bitmap).
	t.growDeletedLocked()
	for _, pos := range blob.Deleted {
		if pos < t.rows && !t.deleted.Get(pos) {
			t.deleted.Set(pos)
			t.live--
		}
	}
	if t.live != blob.Live {
		return nil, fmt.Errorf("columnar: open table %d: live count mismatch (%d vs %d)", id, t.live, blob.Live)
	}
	// Publish the restored state as the table's first real epoch (the
	// constructor published an empty one before the rows were replayed).
	t.publishLocked()
	return t, nil
}
