package columnar

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/types"
)

// ingestSchema: (batch INT, seq INT, val FLOAT) — batch tags every row
// with the insert that produced it, so visibility is checkable per batch.
func ingestSchema() types.Schema {
	return types.Schema{
		{Name: "batch", Kind: types.KindInt},
		{Name: "seq", Kind: types.KindInt},
		{Name: "val", Kind: types.KindFloat},
	}
}

func batchRows(batch, k int) []types.Row {
	rows := make([]types.Row, k)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(batch)),
			types.NewInt(int64(i)),
			types.NewFloat(float64(batch*k + i)),
		}
	}
	return rows
}

// TestSnapshotBatchAtomicity is the core isolation property: while
// writers insert K-row batches (half trickle InsertBatch, half
// BulkAppend), readers must never observe a partial batch — every batch
// id is visible with exactly 0 or K rows, on both the serial and the
// dop-8 parallel scan path.
func TestSnapshotBatchAtomicity(t *testing.T) {
	const (
		writers    = 4
		batchesPer = 25
		k          = 700 // not a stride divisor: batches straddle seals
	)
	tbl := NewTable(70, "ingest", ingestSchema(), Config{})
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for b := 0; b < batchesPer; b++ {
				id := w*batchesPer + b
				var err error
				if w%2 == 0 {
					err = tbl.InsertBatch(batchRows(id, k))
				} else {
					_, err = tbl.BulkAppend(batchRows(id, k))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	check := func(counts map[int64]int) error {
		for id, n := range counts {
			if n != k {
				return fmt.Errorf("batch %d visible with %d rows, want %d", id, n, k)
			}
		}
		return nil
	}
	readerErr := make(chan error, 2)
	readerWG.Add(2)
	go func() { // serial scans
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			counts := map[int64]int{}
			err := tbl.Scan(nil, func(b *Batch) bool {
				for i := 0; i < b.Len(); i++ {
					counts[b.Value(0, i).Int()]++
				}
				return true
			})
			if err == nil {
				err = check(counts)
			}
			if err != nil {
				readerErr <- err
				return
			}
		}
	}()
	go func() { // parallel scans at dop 8
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var mu sync.Mutex
			counts := map[int64]int{}
			err := tbl.ParallelScan(nil, 8, func(_ int, b *Batch) bool {
				local := map[int64]int{}
				for i := 0; i < b.Len(); i++ {
					local[b.Value(0, i).Int()]++
				}
				mu.Lock()
				for id, n := range local {
					counts[id] += n
				}
				mu.Unlock()
				return true
			})
			if err == nil {
				err = check(counts)
			}
			if err != nil {
				readerErr <- err
				return
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	if got := tbl.Rows(); got != writers*batchesPer*k {
		t.Fatalf("final rows %d, want %d", got, writers*batchesPer*k)
	}
}

// TestSnapshotRepeatableCount: a pinned snapshot answers the same COUNT
// no matter how much ingest, delete and truncate activity happens after
// the pin — repeatable reads within one epoch.
func TestSnapshotRepeatableCount(t *testing.T) {
	tbl := NewTable(71, "repeat", ingestSchema(), Config{})
	if err := tbl.InsertBatch(batchRows(0, 3*page.StrideSize+100)); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	defer snap.Release()
	count := func() int {
		n := 0
		err := snap.Scan(nil, func(b *Batch) bool { n += b.Len(); return true })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	want := count()
	if want != 3*page.StrideSize+100 {
		t.Fatalf("initial count %d", want)
	}
	// Mutate heavily behind the pin.
	if _, err := tbl.BulkAppend(batchRows(1, 2*page.StrideSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DeleteWhere([]Pred{{Col: 1, Op: encoding.OpLT, Val: types.NewInt(50)}}); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != want {
		t.Fatalf("count after concurrent writes %d, want %d", got, want)
	}
	if err := tbl.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != want {
		t.Fatalf("count after truncate %d, want %d", got, want)
	}
	if snap.Rows() != want {
		t.Fatalf("snapshot Rows %d, want %d", snap.Rows(), want)
	}
	// The table itself reports the new epoch.
	if tbl.Rows() != 0 {
		t.Fatalf("table rows after truncate %d, want 0", tbl.Rows())
	}
}

// TestTruncateDrainsBehindPinnedReader: Truncate publishes a fresh epoch
// immediately; the superseded epoch (and its pages) survive until the
// last pinned reader releases, then drain.
func TestTruncateDrainsBehindPinnedReader(t *testing.T) {
	tbl := NewTable(72, "drain", ingestSchema(), Config{})
	if err := tbl.InsertBatch(batchRows(0, 2*page.StrideSize)); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	if err := tbl.Truncate(); err != nil {
		t.Fatal(err)
	}
	info := tbl.SnapshotInfo()
	if info.Behind == 0 {
		t.Fatal("superseded epoch should be held behind the pinned reader")
	}
	// The pinned reader still scans the pre-truncate data, pages intact.
	n := 0
	if err := snap.Scan([]Pred{{Col: 1, Op: encoding.OpGE, Val: types.NewInt(0)}}, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			_ = b.Row(i)
		}
		n += b.Len()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2*page.StrideSize {
		t.Fatalf("pinned reader saw %d rows, want %d", n, 2*page.StrideSize)
	}
	snap.Release()
	after := tbl.SnapshotInfo()
	if after.Behind != 0 {
		t.Fatalf("epochs still behind after release: %d", after.Behind)
	}
	if after.Drained <= info.Drained {
		t.Fatal("release of last pin should drain the superseded epoch")
	}
	// New ingest into the truncated table works and is isolated.
	if err := tbl.Insert(types.Row{types.NewInt(9), types.NewInt(9), types.NewFloat(9)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1 {
		t.Fatalf("rows after truncate+insert: %d", tbl.Rows())
	}
}

// TestSnapshotRacingTruncateAndRebuild: scans race trickle inserts, bulk
// flushes and periodic Truncates. Any observed state must be a whole
// number of batches (no partial batch, no half-truncate), and scans must
// never error — the old epoch's pages must outlive the truncate while
// pinned.
func TestSnapshotRacingTruncateAndRebuild(t *testing.T) {
	const (
		k      = 500
		cycles = 120
	)
	tbl := NewTable(73, "race", ingestSchema(), Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr atomic.Value
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() { // writer: trickle + bulk + truncate mix, fixed work
		defer wg.Done()
		defer close(writerDone)
		for cycle := 0; cycle < cycles; cycle++ {
			var err error
			switch cycle % 5 {
			case 4:
				err = tbl.Truncate()
			case 2:
				_, err = tbl.BulkAppend(batchRows(cycle, 3*k))
			default:
				err = tbl.InsertBatch(batchRows(cycle, k))
			}
			if err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				counts := map[int64]int{}
				var err error
				if r%2 == 0 {
					err = tbl.Scan(nil, func(b *Batch) bool {
						for i := 0; i < b.Len(); i++ {
							counts[b.Value(0, i).Int()]++
						}
						return true
					})
				} else {
					var mu sync.Mutex
					err = tbl.ParallelScan(nil, 8, func(_ int, b *Batch) bool {
						mu.Lock()
						for i := 0; i < b.Len(); i++ {
							counts[b.Value(0, i).Int()]++
						}
						mu.Unlock()
						return true
					})
				}
				if err != nil {
					t.Error(err)
					return
				}
				for id, n := range counts {
					if n != k && n != 3*k {
						t.Errorf("batch %d visible with %d rows, want %d or %d", id, n, k, 3*k)
						return
					}
				}
			}
		}(r)
	}
	<-writerDone
	close(stop)
	wg.Wait()
	if err := writerErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSetPinsOncePerTable: a statement-scoped set returns the
// same pinned snapshot for repeated Get calls (self-join case) and
// releases everything exactly once.
func TestSnapshotSetPinsOncePerTable(t *testing.T) {
	tbl := NewTable(74, "set", ingestSchema(), Config{})
	if err := tbl.InsertBatch(batchRows(0, 100)); err != nil {
		t.Fatal(err)
	}
	set := NewSnapshotSet()
	s1 := set.Get(tbl)
	// A write between the two Gets must not change what the set serves.
	if err := tbl.InsertBatch(batchRows(1, 100)); err != nil {
		t.Fatal(err)
	}
	s2 := set.Get(tbl)
	if s1 != s2 {
		t.Fatal("SnapshotSet returned different snapshots for one table")
	}
	if s1.Rows() != 100 {
		t.Fatalf("pinned snapshot sees %d rows, want 100", s1.Rows())
	}
	set.ReleaseAll()
	if info := tbl.SnapshotInfo(); info.Behind != 0 {
		t.Fatalf("epochs behind after ReleaseAll: %d", info.Behind)
	}
}

// FuzzBulkAppend drives BulkAppend with schema-randomized batch shapes
// racing a mid-flight Truncate and a concurrent scan, checking the 0-or-K
// visibility invariant and that validation failures mutate nothing.
func FuzzBulkAppend(f *testing.F) {
	f.Add(uint16(10), uint8(3), false, int64(42))
	f.Add(uint16(1500), uint8(1), true, int64(-7))
	f.Add(uint16(0), uint8(9), true, int64(0))
	f.Fuzz(func(t *testing.T, nRows uint16, shape uint8, truncate bool, seed int64) {
		k := int(nRows)
		tbl := NewTable(75, "fuzz", ingestSchema(), Config{})
		if err := tbl.InsertBatch(batchRows(0, 50)); err != nil {
			t.Fatal(err)
		}
		rows := batchRows(1, k)
		// Shape mutations: some produce invalid rows that must reject the
		// whole batch without tearing visible state.
		invalid := false
		if k > 0 {
			switch shape % 4 {
			case 1: // arity error in the middle
				rows[k/2] = rows[k/2][:2]
				invalid = true
			case 2: // type error at the end
				rows[k-1] = types.Row{types.NewString("x"), types.NewInt(seed), types.NewFloat(0)}
				invalid = true
			case 3: // nulls in a NOT NULL column
				rows[0] = types.Row{types.Null, types.NewInt(seed), types.NewFloat(1)}
				invalid = true
			}
		}
		var wg sync.WaitGroup
		if truncate {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := tbl.Truncate(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := map[int64]int{}
			err := tbl.Scan(nil, func(b *Batch) bool {
				for i := 0; i < b.Len(); i++ {
					counts[b.Value(0, i).Int()]++
				}
				return true
			})
			if err != nil {
				t.Error(err)
				return
			}
			if n := counts[0]; n != 0 && n != 50 {
				t.Errorf("seed batch torn: %d rows", n)
			}
			if n := counts[1]; n != 0 && n != k {
				t.Errorf("bulk batch torn: %d of %d rows", n, k)
			}
		}()
		n, err := tbl.BulkAppend(rows)
		wg.Wait()
		if invalid {
			if err == nil {
				t.Fatal("invalid batch must be rejected")
			}
		} else if err != nil {
			t.Fatal(err)
		} else if n != k {
			t.Fatalf("appended %d, want %d", n, k)
		}
		// Post-race: the final state is consistent and fully scannable.
		final := 0
		if err := tbl.Scan(nil, func(b *Batch) bool {
			for i := 0; i < b.Len(); i++ {
				_ = b.Row(i)
			}
			final += b.Len()
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if final != tbl.Rows() {
			t.Fatalf("scan saw %d rows, Rows() reports %d", final, tbl.Rows())
		}
	})
}
