package columnar

import (
	"fmt"
	"testing"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/types"
)

// faultStore injects storage failures: writes fail after failAfter
// successful ones; reads fail when failReads is set.
type faultStore struct {
	inner     PageStore
	writes    int
	failAfter int
	failReads bool
}

func (f *faultStore) WritePage(id page.ID, data []byte) error {
	f.writes++
	if f.failAfter >= 0 && f.writes > f.failAfter {
		return fmt.Errorf("faultStore: simulated write failure on %v", id)
	}
	return f.inner.WritePage(id, data)
}

func (f *faultStore) ReadPage(id page.ID) ([]byte, error) {
	if f.failReads {
		return nil, fmt.Errorf("faultStore: simulated read failure on %v", id)
	}
	return f.inner.ReadPage(id)
}

func (f *faultStore) DeletePage(id page.ID) error { return f.inner.DeletePage(id) }

func (f *faultStore) DeletePages(table uint32) error { return f.inner.DeletePages(table) }

func TestSealFailureSurfacesOnInsert(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failAfter: 2}
	tbl := NewTable(50, "f", types.Schema{{Name: "a", Kind: types.KindInt}}, Config{Store: fs})
	var rows []types.Row
	for i := 0; i < 4*page.StrideSize; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	err := tbl.InsertBatch(rows)
	if err == nil {
		t.Fatal("write failure during seal must surface")
	}
}

func TestReadFailureSurfacesOnScan(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failAfter: -1}
	tbl := NewTable(51, "f", types.Schema{{Name: "a", Kind: types.KindInt}}, Config{Store: fs})
	var rows []types.Row
	for i := 0; i < 2*page.StrideSize; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	fs.failReads = true
	err := tbl.Scan([]Pred{{Col: 0, Op: encoding.OpGE, Val: types.NewInt(0)}}, func(*Batch) bool { return true })
	if err == nil {
		t.Fatal("read failure during scan must surface")
	}
	// Without predicates the scan touches no pages until materialization:
	// the failure surfaces when the batch decodes values.
	err = tbl.Scan(nil, func(b *Batch) bool {
		b.Row(0)
		return true
	})
	if err == nil {
		t.Fatal("read failure during materialization must surface as error, not panic")
	}
	// The naive path surfaces it too.
	if err := tbl.ScanNaive([]Pred{{Col: 0, Op: encoding.OpGE, Val: types.NewInt(0)}}, func(*Batch) bool { return true }); err == nil {
		t.Fatal("read failure during naive scan must surface")
	}
}

func TestCorruptPageDetectedOnLoad(t *testing.T) {
	store := NewMemStore()
	tbl := NewTable(52, "c", types.Schema{{Name: "a", Kind: types.KindInt}}, Config{Store: store})
	var rows []types.Row
	for i := 0; i < page.StrideSize; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sealed page in place.
	id := page.ID{Table: 52, Column: 0, Stride: 0}
	data, err := store.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[40] ^= 0xFF
	store.WritePage(id, corrupt)
	err = tbl.Scan([]Pred{{Col: 0, Op: encoding.OpGE, Val: types.NewInt(0)}}, func(*Batch) bool { return true })
	if err == nil {
		t.Fatal("checksum mismatch must surface as a scan error")
	}
}

func TestConcurrentScansShareTable(t *testing.T) {
	tbl := newTestTable(t, 8*page.StrideSize)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			n, err := tbl.CountWhere([]Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(int64(1000 * (g + 1)))}})
			if err == nil && n != 1000*(g+1) {
				err = fmt.Errorf("goroutine %d saw %d rows", g, n)
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveAndOpenTable persists a table (sealed pages + dictionaries +
// open stride + tombstones) and reopens it from the store, verifying
// query equivalence — the §II.E portability mechanism.
func TestSaveAndOpenTable(t *testing.T) {
	store := NewMemStore()
	orig := NewTable(60, "sales", salesSchema(), Config{Store: store})
	loadSales(t, orig, 3000) // 2 sealed strides + open stride
	if _, err := orig.DeleteWhere([]Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(100)}}); err != nil {
		t.Fatal(err)
	}
	// A late value lands in the dictionary extension region.
	if err := orig.Insert(types.Row{
		types.NewInt(99999), types.NewString("central"), types.NewDate(0), types.NewFloat(1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveMeta(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenTable(60, salesSchema(), Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Rows() != orig.Rows() {
		t.Fatalf("rows %d vs %d", reopened.Rows(), orig.Rows())
	}
	queries := [][]Pred{
		nil,
		{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(500)}},
		{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("north")}},
		{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("central")}},
		{{Col: 1, Op: encoding.OpLT, Val: types.NewString("east")}},
		{{Col: 3, Op: encoding.OpGT, Val: types.NewFloat(100)}},
	}
	for _, preds := range queries {
		want, err := orig.CountWhere(preds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.CountWhere(preds)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("preds %v: reopened %d vs original %d", preds, got, want)
		}
	}
	// The reopened table accepts further writes.
	if err := reopened.Insert(types.Row{
		types.NewInt(100000), types.NewString("north"), types.NewDate(1), types.NewFloat(2),
	}); err != nil {
		t.Fatal(err)
	}
	// Errors: opening a missing table, schema mismatch.
	if _, err := OpenTable(61, salesSchema(), Config{Store: store}); err == nil {
		t.Fatal("missing meta must fail")
	}
	if _, err := OpenTable(60, salesSchema()[:2], Config{Store: store}); err == nil {
		t.Fatal("schema arity mismatch must fail")
	}
}
