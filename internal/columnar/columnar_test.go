package columnar

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/types"
)

func salesSchema() types.Schema {
	return types.Schema{
		{Name: "id", Kind: types.KindInt},
		{Name: "region", Kind: types.KindString, Nullable: true},
		{Name: "sale_date", Kind: types.KindDate},
		{Name: "amount", Kind: types.KindFloat, Nullable: true},
	}
}

var regions = []string{"north", "south", "east", "west"}

// loadSales bulk-loads n rows with i spread over 365 days of 2016.
func loadSales(t testing.TB, tbl *Table, n int) {
	t.Helper()
	rows := make([]types.Row, 0, n)
	base, _ := types.ParseDate("2016-01-01")
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewString(regions[i%len(regions)]),
			types.NewDate(base.Int() + int64(i%365)),
			types.NewFloat(float64(i%1000) / 4),
		})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
}

func newTestTable(t testing.TB, n int) *Table {
	t.Helper()
	tbl := NewTable(1, "sales", salesSchema(), Config{})
	loadSales(t, tbl, n)
	return tbl
}

func TestInsertAndCount(t *testing.T) {
	tbl := newTestTable(t, 5000)
	if tbl.Rows() != 5000 {
		t.Fatalf("rows %d", tbl.Rows())
	}
	n, err := tbl.CountWhere(nil)
	if err != nil || n != 5000 {
		t.Fatalf("count %d err %v", n, err)
	}
}

func TestScanEquality(t *testing.T) {
	tbl := newTestTable(t, 4096)
	rows, err := tbl.SelectWhere([]Pred{{Col: 0, Op: encoding.OpEQ, Val: types.NewInt(1234)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1234 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0][1].Str() != regions[1234%4] {
		t.Fatalf("wrong region %v", rows[0][1])
	}
}

func TestScanStringPredicate(t *testing.T) {
	tbl := newTestTable(t, 4000)
	n, err := tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("north")}})
	if err != nil || n != 1000 {
		t.Fatalf("north count %d err %v", n, err)
	}
	n, _ = tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpNE, Val: types.NewString("north")}})
	if n != 3000 {
		t.Fatalf("!north count %d", n)
	}
	n, _ = tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("atlantis")}})
	if n != 0 {
		t.Fatalf("phantom region matched %d", n)
	}
}

func TestScanConjunction(t *testing.T) {
	tbl := newTestTable(t, 4000)
	preds := []Pred{
		{Col: 0, Op: encoding.OpLT, Val: types.NewInt(100)},
		{Col: 1, Op: encoding.OpEQ, Val: types.NewString("south")},
	}
	rows, err := tbl.SelectWhere(preds)
	if err != nil {
		t.Fatal(err)
	}
	// ids 0..99 with id%4==1 → 25 rows.
	if len(rows) != 25 {
		t.Fatalf("conjunction rows %d", len(rows))
	}
	for _, r := range rows {
		if r[0].Int() >= 100 || r[1].Str() != "south" {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestScanAgainstRowReference(t *testing.T) {
	// Cross-check the compressed scan against naive evaluation over the
	// same data, across operators and columns.
	const n = 3000
	tbl := newTestTable(t, n)
	base, _ := types.ParseDate("2016-01-01")
	ops := []encoding.CmpOp{encoding.OpEQ, encoding.OpNE, encoding.OpLT, encoding.OpLE, encoding.OpGT, encoding.OpGE}
	consts := []struct {
		col int
		val types.Value
	}{
		{0, types.NewInt(1500)},
		{0, types.NewInt(-5)},
		{1, types.NewString("east")},
		{2, types.NewDate(base.Int() + 100)},
		{3, types.NewFloat(100.25)},
	}
	for _, c := range consts {
		for _, op := range ops {
			got, err := tbl.CountWhere([]Pred{{Col: c.col, Op: op, Val: c.val}})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := 0; i < n; i++ {
				var v types.Value
				switch c.col {
				case 0:
					v = types.NewInt(int64(i))
				case 1:
					v = types.NewString(regions[i%4])
				case 2:
					v = types.NewDate(base.Int() + int64(i%365))
				case 3:
					v = types.NewFloat(float64(i%1000) / 4)
				}
				if op.Eval(v, c.val) {
					want++
				}
			}
			if got != want {
				t.Errorf("col %d op %v val %v: got %d want %d", c.col, op, c.val, got, want)
			}
		}
	}
}

func TestNullHandling(t *testing.T) {
	tbl := NewTable(2, "n", salesSchema(), Config{})
	for i := 0; i < 100; i++ {
		amount := types.NewFloat(float64(i))
		if i%10 == 0 {
			amount = types.Null
		}
		err := tbl.Insert(types.Row{
			types.NewInt(int64(i)), types.Null, types.NewDate(0), amount,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Comparisons never match NULL.
	n, _ := tbl.CountWhere([]Pred{{Col: 3, Op: encoding.OpGE, Val: types.NewFloat(0)}})
	if n != 90 {
		t.Fatalf("GE over nullable column: %d want 90", n)
	}
	rows, _ := tbl.SelectWhere([]Pred{{Col: 0, Op: encoding.OpEQ, Val: types.NewInt(10)}})
	if len(rows) != 1 || !rows[0][3].IsNull() {
		t.Fatalf("NULL did not round-trip: %v", rows)
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl := newTestTable(t, 2000)
	n, err := tbl.DeleteWhere([]Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(500)}})
	if err != nil || n != 500 {
		t.Fatalf("deleted %d err %v", n, err)
	}
	if tbl.Rows() != 1500 {
		t.Fatalf("live %d", tbl.Rows())
	}
	c, _ := tbl.CountWhere(nil)
	if c != 1500 {
		t.Fatalf("scan sees %d", c)
	}
	// Deleting again is a no-op.
	n, _ = tbl.DeleteWhere([]Pred{{Col: 0, Op: encoding.OpLT, Val: types.NewInt(500)}})
	if n != 0 {
		t.Fatalf("re-delete found %d", n)
	}
}

func TestUpdateWhere(t *testing.T) {
	tbl := newTestTable(t, 1000)
	n, err := tbl.UpdateWhere(
		[]Pred{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("west")}},
		map[int]types.Value{3: types.NewFloat(-1)},
	)
	if err != nil || n != 250 {
		t.Fatalf("updated %d err %v", n, err)
	}
	if tbl.Rows() != 1000 {
		t.Fatalf("live %d", tbl.Rows())
	}
	c, _ := tbl.CountWhere([]Pred{{Col: 3, Op: encoding.OpEQ, Val: types.NewFloat(-1)}})
	if c != 250 {
		t.Fatalf("updated rows visible: %d", c)
	}
}

func TestTruncateAndReuse(t *testing.T) {
	tbl := newTestTable(t, 3000)
	if err := tbl.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 0 {
		t.Fatal("rows after truncate")
	}
	loadSales(t, tbl, 100)
	if n, _ := tbl.CountWhere(nil); n != 100 {
		t.Fatalf("after reuse: %d", n)
	}
}

func TestDataSkipping(t *testing.T) {
	// Clustered ids: each stride covers a narrow id range, so a tight
	// range predicate must skip nearly every stride.
	tbl := newTestTable(t, 64*page.StrideSize)
	tbl.ResetStats()
	n, err := tbl.CountWhere([]Pred{
		{Col: 0, Op: encoding.OpGE, Val: types.NewInt(10 * page.StrideSize)},
		{Col: 0, Op: encoding.OpLT, Val: types.NewInt(11 * page.StrideSize)},
	})
	if err != nil || n != page.StrideSize {
		t.Fatalf("count %d err %v", n, err)
	}
	st := tbl.Stats()
	if st.StridesSkipped < 60 {
		t.Errorf("expected most strides skipped, got visited=%d skipped=%d",
			st.StridesVisited, st.StridesSkipped)
	}
	t.Logf("skipping: visited=%d skipped=%d", st.StridesVisited, st.StridesSkipped)
}

func TestFrameOfReferenceRebuild(t *testing.T) {
	tbl := NewTable(3, "r", types.Schema{{Name: "v", Kind: types.KindInt}}, Config{})
	var rows []types.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 50))})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	// Far outside the analyzed domain → forces a column rebuild.
	if err := tbl.Insert(types.Row{types.NewInt(1_000_000)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Stats().Rebuilds == 0 {
		t.Fatal("expected a rebuild")
	}
	n, err := tbl.CountWhere([]Pred{{Col: 0, Op: encoding.OpEQ, Val: types.NewInt(1_000_000)}})
	if err != nil || n != 1 {
		t.Fatalf("outlier lookup: %d %v", n, err)
	}
	// Old data still intact after re-encode.
	n, _ = tbl.CountWhere([]Pred{{Col: 0, Op: encoding.OpEQ, Val: types.NewInt(7)}})
	if n != 40 {
		t.Fatalf("old value count after rebuild: %d", n)
	}
}

func TestCompressionReport(t *testing.T) {
	tbl := newTestTable(t, 50*page.StrideSize)
	r := tbl.Compression()
	if r.Ratio < 2 {
		t.Errorf("compression ratio %.2f below the paper's 2-3x band", r.Ratio)
	}
	if r.SynopsisBytes <= 0 || r.PageBytes <= 0 {
		t.Errorf("report incomplete: %+v", r)
	}
	t.Logf("compression: raw=%d compressed=%d ratio=%.1fx", r.RawBytes, r.CompressedBytes, r.Ratio)
}

func TestLateInsertDictionaryExtension(t *testing.T) {
	tbl := newTestTable(t, 2048)
	// A region never seen at load time lands in the dictionary extension.
	err := tbl.Insert(types.Row{
		types.NewInt(99999), types.NewString("central"),
		types.NewDate(0), types.NewFloat(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("central")}})
	if n != 1 {
		t.Fatalf("extension value not found: %d", n)
	}
	// Range predicates must still be correct with extension codes.
	n, _ = tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpLT, Val: types.NewString("east")}})
	if n != 1 { // only "central" < "east"
		t.Fatalf("range over extension: %d", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := newTestTable(t, 10*page.StrideSize)
	batches := 0
	err := tbl.Scan(nil, func(b *Batch) bool {
		batches++
		return batches < 3
	})
	if err != nil || batches != 3 {
		t.Fatalf("batches %d err %v", batches, err)
	}
}

func TestScanBadPredicateColumn(t *testing.T) {
	tbl := newTestTable(t, 10)
	err := tbl.Scan([]Pred{{Col: 9, Op: encoding.OpEQ, Val: types.NewInt(1)}}, func(*Batch) bool { return true })
	if err == nil {
		t.Fatal("out-of-range predicate column must error")
	}
}

func TestBatchRowIDsAscending(t *testing.T) {
	tbl := newTestTable(t, 3000)
	last := int64(-1)
	tbl.Scan(nil, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			if b.RowID(i) <= last {
				t.Fatalf("row ids not ascending: %d after %d", b.RowID(i), last)
			}
			last = b.RowID(i)
		}
		return true
	})
	if last != 2999 {
		t.Fatalf("last rid %d", last)
	}
}

// Property: a random conjunction over random data returns exactly the
// rows a naive evaluator returns.
func TestScanEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2500) + 10
		tbl := NewTable(9, "p", types.Schema{
			{Name: "a", Kind: types.KindInt},
			{Name: "b", Kind: types.KindString},
		}, Config{})
		rowsData := make([]types.Row, 0, n)
		for i := 0; i < n; i++ {
			rowsData = append(rowsData, types.Row{
				types.NewInt(int64(rng.Intn(100))),
				types.NewString(fmt.Sprintf("s%d", rng.Intn(10))),
			})
		}
		if err := tbl.InsertBatch(rowsData); err != nil {
			return false
		}
		ops := []encoding.CmpOp{encoding.OpEQ, encoding.OpNE, encoding.OpLT, encoding.OpLE, encoding.OpGT, encoding.OpGE}
		preds := []Pred{
			{Col: 0, Op: ops[rng.Intn(len(ops))], Val: types.NewInt(int64(rng.Intn(120) - 10))},
			{Col: 1, Op: ops[rng.Intn(len(ops))], Val: types.NewString(fmt.Sprintf("s%d", rng.Intn(12)))},
		}
		got, err := tbl.CountWhere(preds)
		if err != nil {
			return false
		}
		want := 0
		for _, r := range rowsData {
			if preds[0].Op.Eval(r[0], preds[0].Val) && preds[1].Op.Eval(r[1], preds[1].Val) {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkColumnarScanSelective(b *testing.B) {
	tbl := newTestTable(b, 64*page.StrideSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.CountWhere([]Pred{
			{Col: 0, Op: encoding.OpGE, Val: types.NewInt(1000)},
			{Col: 0, Op: encoding.OpLT, Val: types.NewInt(2000)},
		})
	}
}

func BenchmarkColumnarScanFull(b *testing.B) {
	tbl := newTestTable(b, 64*page.StrideSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.CountWhere([]Pred{{Col: 1, Op: encoding.OpEQ, Val: types.NewString("north")}})
	}
}
