package columnar

import (
	"dashdb/internal/encoding"
	"dashdb/internal/types"
)

// ColumnStats summarizes one column for the query planner: row and NULL
// counts, an estimated distinct-value count, and — for order-preserving
// encodings — the column's value-space bounds. Everything is derived from
// state the engine already maintains (the per-stride synopsis, the
// distinct-count sketch fed at seal time, and the encoder itself), so
// gathering stats is O(strides) with no data pages touched: the same
// "statistics for free" property the zone maps provide for skipping.
type ColumnStats struct {
	// Rows is the table's live row count.
	Rows int
	// Nulls is the column's NULL count over sealed and open strides.
	Nulls int
	// Distinct estimates the number of distinct non-NULL values,
	// clamped to [1, Rows-Nulls] when the column has any non-NULL rows.
	// Dictionary-encoded columns report the exact dictionary cardinality;
	// other encodings use the seal-time sketch plus the open stride.
	Distinct float64
	// HasBounds reports whether Min/Max carry value-space bounds. Only
	// order-preserving encoders (frame-of-reference integer and float)
	// admit them: dictionary codes are assignment-ordered, so min/max
	// code says nothing about min/max value.
	HasBounds bool
	Min, Max  types.Value
}

// ColumnStats gathers planner statistics for column ci. Results are
// cached until the table mutates, so steady-state planning costs one map
// lookup per column rather than a re-fold of the open-stride buffer.
func (t *Table) ColumnStats(ci int) ColumnStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ver := t.statsVer
	t.statsMu.Lock()
	if t.statsCacheVer != ver {
		t.statsCache = nil
		t.statsCacheVer = ver
	}
	if st, ok := t.statsCache[ci]; ok {
		t.statsMu.Unlock()
		return st
	}
	t.statsMu.Unlock()
	st := t.columnStatsLocked(ci)
	t.statsMu.Lock()
	if t.statsCacheVer == ver {
		if t.statsCache == nil {
			t.statsCache = make(map[int]ColumnStats)
		}
		t.statsCache[ci] = st
	}
	t.statsMu.Unlock()
	return st
}

// columnStatsLocked computes column ci's statistics under mu.RLock.
func (t *Table) columnStatsLocked(ci int) ColumnStats {
	st := ColumnStats{Rows: t.live}
	if ci < 0 || ci >= len(t.cols) {
		return st
	}
	c := t.cols[ci]

	// Code-space bounds and NULL count from the synopsis entries plus the
	// open stride buffers.
	var minCode, maxCode uint64
	haveSpan := false
	for s := 0; s < c.syn.Strides(); s++ {
		e := c.syn.Entry(s)
		st.Nulls += int(e.NullCnt)
		if e.AllNulls || e.RowCnt == 0 {
			continue
		}
		if !haveSpan {
			minCode, maxCode = e.MinCode, e.MaxCode
			haveSpan = true
			continue
		}
		if e.MinCode < minCode {
			minCode = e.MinCode
		}
		if e.MaxCode > maxCode {
			maxCode = e.MaxCode
		}
	}
	sk := c.syn.SketchCopy()
	for i, code := range c.openCodes {
		if c.openNulls[i] {
			st.Nulls++
			continue
		}
		sk.AddCode(code)
		if !haveSpan {
			minCode, maxCode = code, code
			haveSpan = true
			continue
		}
		if code < minCode {
			minCode = code
		}
		if code > maxCode {
			maxCode = code
		}
	}

	st.Distinct = sk.Estimate()
	switch enc := c.enc.(type) {
	case *encoding.Dict:
		// Dictionaries know their cardinality exactly.
		st.Distinct = float64(enc.Cardinality())
	case *encoding.IntFOR:
		if haveSpan {
			st.HasBounds = true
			st.Min, st.Max = enc.Decode(minCode), enc.Decode(maxCode)
		}
	case *encoding.FloatFOR:
		if haveSpan {
			st.HasBounds = true
			st.Min, st.Max = enc.Decode(minCode), enc.Decode(maxCode)
		}
	}
	if nonNull := st.Rows - st.Nulls; nonNull > 0 {
		if st.Distinct > float64(nonNull) {
			st.Distinct = float64(nonNull)
		}
		if st.Distinct < 1 {
			st.Distinct = 1
		}
	} else {
		st.Distinct = 0
	}
	return st
}
