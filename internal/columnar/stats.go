package columnar

import (
	"dashdb/internal/encoding"
	"dashdb/internal/types"
)

// ColumnStats summarizes one column for the query planner: row and NULL
// counts, an estimated distinct-value count, and — for order-preserving
// encodings — the column's value-space bounds. Everything is derived from
// state the engine already maintains (the per-stride synopsis, the
// distinct-count sketch fed at seal time, and the encoder itself), so
// gathering stats is O(strides) with no data pages touched: the same
// "statistics for free" property the zone maps provide for skipping.
type ColumnStats struct {
	// Rows is the table's live row count.
	Rows int
	// Nulls is the column's NULL count over sealed and open strides.
	Nulls int
	// Distinct estimates the number of distinct non-NULL values,
	// clamped to [1, Rows-Nulls] when the column has any non-NULL rows.
	// Dictionary-encoded columns report the exact dictionary cardinality;
	// other encodings use the seal-time sketch plus the open stride.
	Distinct float64
	// HasBounds reports whether Min/Max carry value-space bounds. Only
	// order-preserving encoders (frame-of-reference integer and float)
	// admit them: dictionary codes are assignment-ordered, so min/max
	// code says nothing about min/max value.
	HasBounds bool
	Min, Max  types.Value
}

// ColumnStats gathers planner statistics for column ci in the pinned
// epoch. Statements that plan and execute against the same snapshot get
// estimates that exactly describe the data the scan will see.
func (s *Snapshot) ColumnStats(ci int) ColumnStats {
	return s.state().columnStats(ci)
}

// ColumnStats gathers planner statistics for column ci in the current
// epoch. The epoch state is immutable, so no pin is needed: a result is
// internally consistent even if a writer publishes mid-call.
func (t *Table) ColumnStats(ci int) ColumnStats {
	return t.epochs.Current().State().columnStats(ci)
}

// columnStats serves column ci's statistics from the state's lazy cache.
// The cache needs no version stamp: the state it describes can never
// change, so planning every query of an epoch costs one computation per
// column, however many statements race.
func (st *tableState) columnStats(ci int) ColumnStats {
	st.statsMu.Lock()
	if cached, ok := st.statsCache[ci]; ok {
		st.statsMu.Unlock()
		return cached
	}
	st.statsMu.Unlock()
	computed := st.computeColumnStats(ci)
	st.statsMu.Lock()
	if st.statsCache == nil {
		st.statsCache = make(map[int]ColumnStats)
	}
	st.statsCache[ci] = computed
	st.statsMu.Unlock()
	return computed
}

// computeColumnStats folds the synopsis entries, the seal-time sketch and
// the open-stride buffers into column ci's statistics.
func (st *tableState) computeColumnStats(ci int) ColumnStats {
	out := ColumnStats{Rows: st.live}
	if ci < 0 || ci >= len(st.cols) {
		return out
	}
	c := &st.cols[ci]
	if c.enc == nil {
		return out
	}

	// Code-space bounds and NULL count from the synopsis entries plus the
	// open stride buffers.
	var minCode, maxCode uint64
	haveSpan := false
	for _, e := range c.syn {
		out.Nulls += int(e.NullCnt)
		if e.AllNulls || e.RowCnt == 0 {
			continue
		}
		if !haveSpan {
			minCode, maxCode = e.MinCode, e.MaxCode
			haveSpan = true
			continue
		}
		if e.MinCode < minCode {
			minCode = e.MinCode
		}
		if e.MaxCode > maxCode {
			maxCode = e.MaxCode
		}
	}
	sk := c.sketch // value copy: folding the open stride leaves the epoch's sketch untouched
	for i, code := range c.openCodes {
		if c.openNulls[i] {
			out.Nulls++
			continue
		}
		sk.AddCode(code)
		if !haveSpan {
			minCode, maxCode = code, code
			haveSpan = true
			continue
		}
		if code < minCode {
			minCode = code
		}
		if code > maxCode {
			maxCode = code
		}
	}

	out.Distinct = sk.Estimate()
	switch enc := c.enc.(type) {
	case *encoding.Dict:
		// Dictionaries know their cardinality exactly.
		out.Distinct = float64(enc.Cardinality())
	case *encoding.IntFOR:
		if haveSpan {
			out.HasBounds = true
			out.Min, out.Max = enc.Decode(minCode), enc.Decode(maxCode)
		}
	case *encoding.FloatFOR:
		if haveSpan {
			out.HasBounds = true
			out.Min, out.Max = enc.Decode(minCode), enc.Decode(maxCode)
		}
	}
	if nonNull := out.Rows - out.Nulls; nonNull > 0 {
		if out.Distinct > float64(nonNull) {
			out.Distinct = float64(nonNull)
		}
		if out.Distinct < 1 {
			out.Distinct = 1
		}
	} else {
		out.Distinct = 0
	}
	return out
}
