package columnar

import (
	"fmt"

	"dashdb/internal/bitpack"
	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/telemetry"
	"dashdb/internal/types"
)

// Pred is one conjunct of a scan predicate: column OP constant.
type Pred struct {
	Col int
	Op  encoding.CmpOp
	Val types.Value
}

// Batch is one stride's worth of selected tuples handed to the scan
// callback. A batch references only the scan's pinned epoch state, so it
// stays consistent no matter what writers commit meanwhile; it is valid
// for the lifetime of the snapshot it was scanned under.
//
// Concurrency invariant: a Batch is confined to a single goroutine. Value
// populates the batch's private pages map lazily and without locking, so
// sharing one batch across goroutines would race. Scan delivers batches
// sequentially; ParallelScan gives every worker its own batches (each
// with its own page map, so buffer-pool loads don't serialize on shared
// mutable state). Callbacks that want to keep data past the callback must
// copy values out (Row/Column materialize copies).
type Batch struct {
	t      *Table
	st     *tableState
	stride int   // stride index; -1 for the open stride
	base   int   // global row id of stride start
	sel    []int // selected offsets within the stride, ascending
	pages  map[int]*page.Page
	doms   map[int][]types.Value // per-column dictionary snapshots for Value
}

// Len returns the number of selected tuples.
func (b *Batch) Len() int { return len(b.sel) }

// RowID returns the global row id of the i'th selected tuple.
func (b *Batch) RowID(i int) int64 { return int64(b.base + b.sel[i]) }

// Value returns column ci of the i'th selected tuple, decoding lazily.
func (b *Batch) Value(ci, i int) types.Value {
	off := b.sel[i]
	c := &b.st.cols[ci]
	if b.stride < 0 {
		return c.openVals[off]
	}
	pg := b.page(ci)
	if pg.Nulls.Get(off) {
		return types.NullOf(b.t.schema[ci].Kind)
	}
	if d, ok := c.enc.(*encoding.Dict); ok {
		// Decode through a per-batch snapshot: one dictionary lock per
		// (batch, column) instead of one per row.
		dom, ok := b.doms[ci]
		if !ok {
			dom = d.Snapshot()
			if b.doms == nil {
				b.doms = make(map[int][]types.Value)
			}
			b.doms[ci] = dom
		}
		return dom[pg.Codes.Get(off)]
	}
	return c.enc.Decode(pg.Codes.Get(off))
}

// ColumnDict returns column ci's dictionary, or nil when the column is
// not dictionary-encoded. Float columns report nil even when
// dict-encoded: NaN breaks the value↔code bijection compressed execution
// relies on (same gate as Table.ColumnDict). The dictionary comes from
// the batch's pinned epoch, so it is the one that assigned every code in
// the batch.
func (b *Batch) ColumnDict(ci int) *encoding.Dict {
	return b.st.columnDict(ci)
}

// Code returns column ci's dictionary code for the i'th selected tuple
// without decoding, and whether the cell is non-NULL. Valid only for
// columns whose encoder assigns codes (any analyzed column); the caller
// pairs the codes with the column's dictionary from ColumnDict. Within
// one scan every batch of a column shares a single dictionary: the scan
// pins one epoch for its whole duration, so the encoder cannot be swapped
// mid-scan (dictionaries only ever grow, and codes are stable).
//
//dashdb:hotpath
func (b *Batch) Code(ci, i int) (uint64, bool) {
	off := b.sel[i]
	if b.stride < 0 {
		c := &b.st.cols[ci]
		if c.openNulls[off] {
			return 0, false
		}
		return c.openCodes[off], true
	}
	pg := b.page(ci)
	if pg.Nulls.Get(off) {
		return 0, false
	}
	return pg.Codes.Get(off), true
}

// Column materializes column ci for all selected tuples.
func (b *Batch) Column(ci int) []types.Value {
	out := make([]types.Value, len(b.sel))
	for i := range b.sel {
		out[i] = b.Value(ci, i)
	}
	return out
}

// Row materializes the full i'th selected tuple.
func (b *Batch) Row(i int) types.Row {
	row := make(types.Row, len(b.t.schema))
	for ci := range b.t.schema {
		row[ci] = b.Value(ci, i)
	}
	return row
}

// Scan streams batches of tuples satisfying the conjunction of preds to
// fn, in row-id order, applying data skipping and SWAR evaluation over
// compressed codes. fn returning false stops the scan. The scan reads the
// snapshot's pinned epoch only: concurrent INSERT/bulk-load/TRUNCATE are
// invisible to it. Storage failures during lazy batch materialization are
// converted into a returned error.
func (s *Snapshot) Scan(preds []Pred, fn func(b *Batch) bool) (err error) {
	return s.ScanWithStats(preds, nil, fn)
}

// ScanWithStats is Scan with a per-query telemetry sink: stride visits,
// synopsis skips and delivered rows are additionally recorded into ss
// (shard 0, since the serial scan is one worker). ss may be nil, which
// makes this identical to Scan.
func (s *Snapshot) ScanWithStats(preds []Pred, ss *telemetry.ScanStats, fn func(b *Batch) bool) (err error) {
	defer recoverScanPanic(&err)
	return s.scanState(preds, ss.Shard(0), fn)
}

// Scan pins the current epoch for the scan's duration and delegates to
// Snapshot.Scan. Query execution should scan an explicitly pinned
// Snapshot instead, so that planning and multiple operators of one query
// agree on the epoch.
func (t *Table) Scan(preds []Pred, fn func(b *Batch) bool) error {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.Scan(preds, fn)
}

// ScanWithStats is Scan with a per-query telemetry sink, over a
// freshly pinned epoch.
func (t *Table) ScanWithStats(preds []Pred, ss *telemetry.ScanStats, fn func(b *Batch) bool) error {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.ScanWithStats(preds, ss, fn)
}

// recoverScanPanic converts page-load panics raised inside batch
// materialization into scan errors, so storage faults surface cleanly.
func recoverScanPanic(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("columnar: scan aborted: %v", r)
	}
}

// checkPreds validates predicate column ordinals against the schema.
func (t *Table) checkPreds(preds []Pred) error {
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.schema) {
			return fmt.Errorf("columnar: predicate on column %d of %d-column table %s", p.Col, len(t.schema), t.name)
		}
	}
	return nil
}

func (s *Snapshot) scanState(preds []Pred, sh *telemetry.ScanShard, fn func(b *Batch) bool) error {
	t, st := s.t, s.state()
	if st.rows == 0 {
		return nil
	}
	if err := t.checkPreds(preds); err != nil {
		return err
	}
	// Translate every predicate to code space once.
	translated, none := st.translatePreds(preds)
	if none {
		return nil // a false conjunct kills the whole scan
	}

	sealed := st.sealedStrides()
	for strideIdx := 0; strideIdx < sealed; strideIdx++ {
		// Data skipping: every conjunct must be satisfiable in this
		// stride's code span.
		if st.skipStride(strideIdx, preds, translated) {
			t.stats.stridesSkipped.Add(1)
			sh.Skip()
			continue
		}
		t.stats.stridesVisited.Add(1)
		sh.Visit()
		b, err := evalSealedStride(t, st, strideIdx, preds, translated)
		if err != nil {
			return err
		}
		if b.Len() > 0 {
			sh.Rows(b.Len())
			if !fn(b) {
				return nil
			}
		}
	}
	// Open stride: value-space evaluation over the unpacked buffers.
	if n := st.openLen(); n > 0 {
		t.stats.stridesVisited.Add(1)
		sh.Visit()
		b := evalOpenStride(t, st, preds)
		if b.Len() > 0 {
			sh.Rows(b.Len())
			if !fn(b) {
				return nil
			}
		}
	}
	return nil
}

// evalSealedStride evaluates the conjunction over one sealed stride using
// the SWAR kernels, returning the selected offsets.
//
//dashdb:hotpath
func evalSealedStride(t *Table, st *tableState, s int, preds []Pred, translated []encoding.Predicate) (*Batch, error) {
	base := s * page.StrideSize
	var sel *bitpack.Bitmap
	pages := make(map[int]*page.Page, len(preds))

	for i, p := range preds {
		pg, ok := pages[p.Col]
		if !ok {
			var err error
			pg, err = t.loadPageGen(p.Col, st.cols[p.Col].gen, s)
			if err != nil {
				return nil, err
			}
			pages[p.Col] = pg
			t.stats.pagesRead.Add(1)
		}
		match := bitpack.NewBitmap(pg.Rows())
		applyPredicate(pg, st.cols[p.Col].enc, translated[i], preds[i], match)
		// Comparison predicates never match NULL.
		match.AndNot(pg.Nulls)
		if sel == nil {
			sel = match
		} else {
			sel.And(match)
		}
		if !sel.Any() {
			return &Batch{t: t, st: st, stride: s, base: base, pages: pages}, nil
		}
	}
	rows := page.StrideSize
	if len(preds) == 0 {
		sel = bitpack.NewBitmapFull(rows)
	} else {
		rows = sel.Len()
	}
	t.stats.rowsScanned.Add(uint64(rows))
	// Mask tombstones.
	selIdx := make([]int, 0, sel.Count())
	sel.ForEach(func(off int) {
		if !st.deleted.Get(base + off) {
			selIdx = append(selIdx, off)
		}
	})
	return &Batch{t: t, st: st, stride: s, base: base, sel: selIdx, pages: pages}, nil
}

// applyPredicate ORs matching positions into match: SWAR range kernels for
// exact ranges, decode-and-recheck for residual ranges.
//
//dashdb:hotpath
func applyPredicate(pg *page.Page, enc encoding.Encoder, tp encoding.Predicate, p Pred, match *bitpack.Bitmap) {
	if tp.All {
		full := bitpack.NewBitmapFull(pg.Rows())
		match.Or(full)
		return
	}
	maxCode := uint64(1)<<pg.Codes.Width() - 1
	for _, r := range tp.Ranges {
		lo, hi := r.Lo, r.Hi
		if lo > maxCode {
			continue // this stride's narrow width cannot hold such codes
		}
		if hi > maxCode {
			hi = maxCode
		}
		pg.Codes.CompareRange(lo, hi, match)
	}
	for _, r := range tp.Residual {
		lo, hi := r.Lo, r.Hi
		if lo > maxCode {
			continue
		}
		if hi > maxCode {
			hi = maxCode
		}
		cand := bitpack.NewBitmap(pg.Rows())
		pg.Codes.CompareRange(lo, hi, cand)
		cand.ForEach(func(off int) {
			if !pg.Nulls.Get(off) && p.Op.Eval(enc.Decode(pg.Codes.Get(off)), p.Val) {
				match.Set(off)
			}
		})
	}
}

// evalOpenStride evaluates predicates over the open stride's buffered
// values in value space.
func evalOpenStride(t *Table, st *tableState, preds []Pred) *Batch {
	n := st.openLen()
	base := st.sealedStrides() * page.StrideSize
	sel := make([]int, 0, n)
	for off := 0; off < n; off++ {
		if st.deleted.Get(base + off) {
			continue
		}
		ok := true
		for _, p := range preds {
			c := &st.cols[p.Col]
			if c.openNulls[off] || !p.Op.Eval(c.openVals[off], p.Val) {
				ok = false
				break
			}
		}
		if ok {
			sel = append(sel, off)
		}
	}
	t.stats.rowsScanned.Add(uint64(n))
	return &Batch{t: t, st: st, stride: -1, base: base, sel: sel}
}

// ScanNaive is the decode-then-evaluate ablation (DESIGN.md §6): it
// visits every stride (no data skipping), decodes every code back to a
// value and compares in value space (no SWAR, no operating on compressed
// data). The cloud column-store baseline of Test 4 runs its scans through
// this path; benchmarking it against Scan isolates exactly the techniques
// of §II.B.2/4/6.
func (s *Snapshot) ScanNaive(preds []Pred, fn func(b *Batch) bool) (err error) {
	defer recoverScanPanic(&err)
	t, st := s.t, s.state()
	if st.rows == 0 {
		return nil
	}
	if err := t.checkPreds(preds); err != nil {
		return err
	}
	sealed := st.sealedStrides()
	for strideIdx := 0; strideIdx < sealed; strideIdx++ {
		t.stats.stridesVisited.Add(1)
		base := strideIdx * page.StrideSize
		pages := make(map[int]*page.Page, len(preds))
		sel := make([]int, 0, page.StrideSize)
		for off := 0; off < page.StrideSize; off++ {
			if st.deleted.Get(base + off) {
				continue
			}
			ok := true
			for _, p := range preds {
				pg, have := pages[p.Col]
				if !have {
					var err error
					pg, err = t.loadPageGen(p.Col, st.cols[p.Col].gen, strideIdx)
					if err != nil {
						return err
					}
					pages[p.Col] = pg
					t.stats.pagesRead.Add(1)
				}
				if pg.Nulls.Get(off) {
					ok = false
					break
				}
				v := st.cols[p.Col].enc.Decode(pg.Codes.Get(off))
				if !p.Op.Eval(v, p.Val) {
					ok = false
					break
				}
			}
			if ok {
				sel = append(sel, off)
			}
		}
		t.stats.rowsScanned.Add(page.StrideSize)
		if len(sel) > 0 {
			b := &Batch{t: t, st: st, stride: strideIdx, base: base, sel: sel, pages: pages}
			if !fn(b) {
				return nil
			}
		}
	}
	if n := st.openLen(); n > 0 {
		t.stats.stridesVisited.Add(1)
		b := evalOpenStride(t, st, preds)
		if b.Len() > 0 && !fn(b) {
			return nil
		}
	}
	return nil
}

// ScanNaive runs the ablation scan over a freshly pinned epoch.
func (t *Table) ScanNaive(preds []Pred, fn func(b *Batch) bool) error {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.ScanNaive(preds, fn)
}

// CountWhere returns the number of live rows satisfying the conjunction,
// without materializing values (COUNT(*) fast path).
func (s *Snapshot) CountWhere(preds []Pred) (int, error) {
	total := 0
	err := s.Scan(preds, func(b *Batch) bool {
		total += b.Len()
		return true
	})
	return total, err
}

// CountWhere counts matching rows in a freshly pinned epoch.
func (t *Table) CountWhere(preds []Pred) (int, error) {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.CountWhere(preds)
}

// SelectWhere materializes all matching rows (convenience for small
// results and tests; the executor streams batches instead).
func (s *Snapshot) SelectWhere(preds []Pred) ([]types.Row, error) {
	var out []types.Row
	err := s.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
		return true
	})
	return out, err
}

// SelectWhere materializes matching rows from a freshly pinned epoch.
func (t *Table) SelectWhere(preds []Pred) ([]types.Row, error) {
	snap := t.Snapshot()
	defer snap.Release()
	return snap.SelectWhere(preds)
}

// tombstoneLocked sets tombstones for the given row ids on a private copy
// of the bitmap (copy-on-write: published epochs keep the old bitmap) and
// returns how many were live. Caller holds mu and publishes after.
func (t *Table) tombstoneLocked(rids []int64) int {
	nb := t.deleted.Clone()
	n := 0
	for _, rid := range rids {
		if rid < 0 || int(rid) >= t.rows {
			continue // e.g. the table was truncated since the rids were collected
		}
		if !nb.Get(int(rid)) {
			nb.Set(int(rid))
			t.live--
			n++
		}
	}
	t.deleted = nb
	return n
}

// DeleteWhere tombstones matching rows, returning how many were deleted.
// Matches are collected against a pinned snapshot; the tombstones commit
// as one epoch.
func (t *Table) DeleteWhere(preds []Pred) (int, error) {
	var rids []int64
	err := t.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			rids = append(rids, b.RowID(i))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tombstoneLocked(rids)
	t.publishLocked()
	return len(rids), nil
}

// DeleteRows tombstones the given row ids, returning how many were live.
// The general DML path uses it after evaluating residual predicates the
// scan could not push down.
func (t *Table) DeleteRows(rids []int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.tombstoneLocked(rids)
	t.publishLocked()
	return n
}

// UpdateWhere rewrites matching rows: columnar updates are implemented as
// delete + re-insert of the modified row, the standard approach for
// column-organized storage. set maps column ordinals to new values. The
// delete and the re-insert commit together in a single epoch, so readers
// never observe the in-between state where rows have vanished but their
// replacements are not yet visible.
func (t *Table) UpdateWhere(preds []Pred, set map[int]types.Value) (int, error) {
	var updated []types.Row
	var rids []int64
	err := t.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			for ci, v := range set {
				row[ci] = v
			}
			updated = append(updated, row)
			rids = append(rids, b.RowID(i))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	checked, err := t.validateAll(updated)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.publishLocked()
	t.tombstoneLocked(rids)
	if err := t.appendRowsLocked(checked); err != nil {
		return 0, err
	}
	return len(updated), nil
}
