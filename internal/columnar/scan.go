package columnar

import (
	"fmt"

	"dashdb/internal/bitpack"
	"dashdb/internal/encoding"
	"dashdb/internal/page"
	"dashdb/internal/telemetry"
	"dashdb/internal/types"
)

// Pred is one conjunct of a scan predicate: column OP constant.
type Pred struct {
	Col int
	Op  encoding.CmpOp
	Val types.Value
}

// Batch is one stride's worth of selected tuples handed to the scan
// callback. A batch is only valid during the callback; it references
// table-internal state guarded by the scan's read lock.
//
// Concurrency invariant: a Batch is confined to a single goroutine. Value
// populates the batch's private pages map lazily and without locking, so
// sharing one batch across goroutines would race. Scan delivers batches
// sequentially; ParallelScan gives every worker its own batches (each
// with its own page map, so buffer-pool loads don't serialize on shared
// mutable state). Callbacks that want to keep data past the callback must
// copy values out (Row/Column materialize copies).
type Batch struct {
	t      *Table
	stride int   // stride index; -1 for the open stride
	base   int   // global row id of stride start
	sel    []int // selected offsets within the stride, ascending
	pages  map[int]*page.Page
	doms   map[int][]types.Value // per-column dictionary snapshots for Value
}

// Len returns the number of selected tuples.
func (b *Batch) Len() int { return len(b.sel) }

// RowID returns the global row id of the i'th selected tuple.
func (b *Batch) RowID(i int) int64 { return int64(b.base + b.sel[i]) }

// Value returns column ci of the i'th selected tuple, decoding lazily.
func (b *Batch) Value(ci, i int) types.Value {
	off := b.sel[i]
	c := b.t.cols[ci]
	if b.stride < 0 {
		return c.openVals[off]
	}
	pg, ok := b.pages[ci]
	if !ok {
		var err error
		pg, err = b.t.loadPage(ci, b.stride)
		if err != nil {
			panic(fmt.Sprintf("columnar: batch page load %v: %v", b.t.pageID(ci, b.stride), err))
		}
		b.pages[ci] = pg
	}
	if pg.Nulls.Get(off) {
		return types.NullOf(b.t.schema[ci].Kind)
	}
	if d, ok := c.enc.(*encoding.Dict); ok {
		// Decode through a per-batch snapshot: one dictionary lock per
		// (batch, column) instead of one per row.
		dom, ok := b.doms[ci]
		if !ok {
			dom = d.Snapshot()
			if b.doms == nil {
				b.doms = make(map[int][]types.Value)
			}
			b.doms[ci] = dom
		}
		return dom[pg.Codes.Get(off)]
	}
	return c.enc.Decode(pg.Codes.Get(off))
}

// ColumnDict returns column ci's dictionary, or nil when the column is
// not dictionary-encoded. Float columns report nil even when
// dict-encoded: NaN breaks the value↔code bijection compressed execution
// relies on (same gate as Table.ColumnDict). Unlike Table.ColumnDict it
// takes no lock, so it is safe inside a scan callback, which already
// holds the table's read latch.
func (b *Batch) ColumnDict(ci int) *encoding.Dict {
	if ci < 0 || ci >= len(b.t.schema) || b.t.schema[ci].Kind == types.KindFloat {
		return nil
	}
	d, _ := b.t.cols[ci].enc.(*encoding.Dict)
	return d
}

// Code returns column ci's dictionary code for the i'th selected tuple
// without decoding, and whether the cell is non-NULL. Valid only for
// columns whose encoder assigns codes (any analyzed column); the caller
// pairs the codes with the column's dictionary from ColumnDict. Within
// one scan every batch of a column shares a single dictionary: the scan
// holds the table read lock for its whole duration, so the encoder cannot
// be swapped or extended mid-scan.
//
//dashdb:hotpath
func (b *Batch) Code(ci, i int) (uint64, bool) {
	off := b.sel[i]
	if b.stride < 0 {
		c := b.t.cols[ci]
		if c.openNulls[off] {
			return 0, false
		}
		return c.openCodes[off], true
	}
	pg := b.page(ci)
	if pg.Nulls.Get(off) {
		return 0, false
	}
	return pg.Codes.Get(off), true
}

// Column materializes column ci for all selected tuples.
func (b *Batch) Column(ci int) []types.Value {
	out := make([]types.Value, len(b.sel))
	for i := range b.sel {
		out[i] = b.Value(ci, i)
	}
	return out
}

// Row materializes the full i'th selected tuple.
func (b *Batch) Row(i int) types.Row {
	row := make(types.Row, len(b.t.schema))
	for ci := range b.t.schema {
		row[ci] = b.Value(ci, i)
	}
	return row
}

// Scan streams batches of tuples satisfying the conjunction of preds to
// fn, in row-id order, applying data skipping and SWAR evaluation over
// compressed codes. fn returning false stops the scan. The callback must
// not mutate the table (the scan holds a read lock) and must not retain
// the batch. Storage failures during lazy batch materialization are
// converted into a returned error.
func (t *Table) Scan(preds []Pred, fn func(b *Batch) bool) (err error) {
	return t.ScanWithStats(preds, nil, fn)
}

// ScanWithStats is Scan with a per-query telemetry sink: stride visits,
// synopsis skips and delivered rows are additionally recorded into ss
// (shard 0, since the serial scan is one worker). ss may be nil, which
// makes this identical to Scan.
func (t *Table) ScanWithStats(preds []Pred, ss *telemetry.ScanStats, fn func(b *Batch) bool) (err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	defer recoverScanPanic(&err)
	return t.scanLocked(preds, ss.Shard(0), fn)
}

// recoverScanPanic converts page-load panics raised inside batch
// materialization into scan errors, so storage faults surface cleanly.
func recoverScanPanic(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("columnar: scan aborted: %v", r)
	}
}

func (t *Table) scanLocked(preds []Pred, sh *telemetry.ScanShard, fn func(b *Batch) bool) error {
	if t.rows == 0 {
		return nil
	}
	t.ensureEncodersLocked()
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.cols) {
			return fmt.Errorf("columnar: predicate on column %d of %d-column table %s", p.Col, len(t.cols), t.name)
		}
	}
	// Translate every predicate to code space once.
	translated, none := t.translatePredsLocked(preds)
	if none {
		return nil // a false conjunct kills the whole scan
	}

	sealed := t.sealedStrides()
	for s := 0; s < sealed; s++ {
		// Data skipping: every conjunct must be satisfiable in this
		// stride's code span.
		if t.skipStride(s, preds, translated) {
			t.stats.stridesSkipped.Add(1)
			sh.Skip()
			continue
		}
		t.stats.stridesVisited.Add(1)
		sh.Visit()
		b, err := t.evalSealedStride(s, preds, translated)
		if err != nil {
			return err
		}
		if b.Len() > 0 {
			sh.Rows(b.Len())
			if !fn(b) {
				return nil
			}
		}
	}
	// Open stride: value-space evaluation over the unpacked buffers.
	if n := t.openLen(); n > 0 {
		t.stats.stridesVisited.Add(1)
		sh.Visit()
		b := t.evalOpenStride(preds)
		if b.Len() > 0 {
			sh.Rows(b.Len())
			if !fn(b) {
				return nil
			}
		}
	}
	return nil
}

// evalSealedStride evaluates the conjunction over one sealed stride using
// the SWAR kernels, returning the selected offsets.
//
//dashdb:hotpath
func (t *Table) evalSealedStride(s int, preds []Pred, translated []encoding.Predicate) (*Batch, error) {
	base := s * page.StrideSize
	var sel *bitpack.Bitmap
	pages := make(map[int]*page.Page, len(preds))

	for i, p := range preds {
		pg, ok := pages[p.Col]
		if !ok {
			var err error
			pg, err = t.loadPage(p.Col, s)
			if err != nil {
				return nil, err
			}
			pages[p.Col] = pg
			t.stats.pagesRead.Add(1)
		}
		match := bitpack.NewBitmap(pg.Rows())
		applyPredicate(pg, t.cols[p.Col].enc, translated[i], preds[i], match)
		// Comparison predicates never match NULL.
		match.AndNot(pg.Nulls)
		if sel == nil {
			sel = match
		} else {
			sel.And(match)
		}
		if !sel.Any() {
			return &Batch{t: t, stride: s, base: base, pages: pages}, nil
		}
	}
	rows := page.StrideSize
	if len(preds) == 0 {
		sel = bitpack.NewBitmapFull(rows)
	} else {
		rows = sel.Len()
	}
	t.stats.rowsScanned.Add(uint64(rows))
	// Mask tombstones.
	selIdx := make([]int, 0, sel.Count())
	sel.ForEach(func(off int) {
		if !t.deleted.Get(base + off) {
			selIdx = append(selIdx, off)
		}
	})
	return &Batch{t: t, stride: s, base: base, sel: selIdx, pages: pages}, nil
}

// applyPredicate ORs matching positions into match: SWAR range kernels for
// exact ranges, decode-and-recheck for residual ranges.
//
//dashdb:hotpath
func applyPredicate(pg *page.Page, enc encoding.Encoder, tp encoding.Predicate, p Pred, match *bitpack.Bitmap) {
	if tp.All {
		full := bitpack.NewBitmapFull(pg.Rows())
		match.Or(full)
		return
	}
	maxCode := uint64(1)<<pg.Codes.Width() - 1
	for _, r := range tp.Ranges {
		lo, hi := r.Lo, r.Hi
		if lo > maxCode {
			continue // this stride's narrow width cannot hold such codes
		}
		if hi > maxCode {
			hi = maxCode
		}
		pg.Codes.CompareRange(lo, hi, match)
	}
	for _, r := range tp.Residual {
		lo, hi := r.Lo, r.Hi
		if lo > maxCode {
			continue
		}
		if hi > maxCode {
			hi = maxCode
		}
		cand := bitpack.NewBitmap(pg.Rows())
		pg.Codes.CompareRange(lo, hi, cand)
		cand.ForEach(func(off int) {
			if !pg.Nulls.Get(off) && p.Op.Eval(enc.Decode(pg.Codes.Get(off)), p.Val) {
				match.Set(off)
			}
		})
	}
}

// evalOpenStride evaluates predicates over the open stride's buffered
// values in value space.
func (t *Table) evalOpenStride(preds []Pred) *Batch {
	n := t.openLen()
	base := t.sealedStrides() * page.StrideSize
	sel := make([]int, 0, n)
	for off := 0; off < n; off++ {
		if t.deleted.Get(base + off) {
			continue
		}
		ok := true
		for _, p := range preds {
			c := t.cols[p.Col]
			if c.openNulls[off] || !p.Op.Eval(c.openVals[off], p.Val) {
				ok = false
				break
			}
		}
		if ok {
			sel = append(sel, off)
		}
	}
	t.stats.rowsScanned.Add(uint64(n))
	return &Batch{t: t, stride: -1, base: base, sel: sel}
}

// ScanNaive is the decode-then-evaluate ablation (DESIGN.md §6): it
// visits every stride (no data skipping), decodes every code back to a
// value and compares in value space (no SWAR, no operating on compressed
// data). The cloud column-store baseline of Test 4 runs its scans through
// this path; benchmarking it against Scan isolates exactly the techniques
// of §II.B.2/4/6.
func (t *Table) ScanNaive(preds []Pred, fn func(b *Batch) bool) (err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	defer recoverScanPanic(&err)
	if t.rows == 0 {
		return nil
	}
	t.ensureEncodersLocked()
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.cols) {
			return fmt.Errorf("columnar: predicate on column %d of %d-column table %s", p.Col, len(t.cols), t.name)
		}
	}
	sealed := t.sealedStrides()
	for s := 0; s < sealed; s++ {
		t.stats.stridesVisited.Add(1)
		base := s * page.StrideSize
		pages := make(map[int]*page.Page, len(preds))
		sel := make([]int, 0, page.StrideSize)
		for off := 0; off < page.StrideSize; off++ {
			if t.deleted.Get(base + off) {
				continue
			}
			ok := true
			for _, p := range preds {
				pg, have := pages[p.Col]
				if !have {
					var err error
					pg, err = t.loadPage(p.Col, s)
					if err != nil {
						return err
					}
					pages[p.Col] = pg
					t.stats.pagesRead.Add(1)
				}
				if pg.Nulls.Get(off) {
					ok = false
					break
				}
				v := t.cols[p.Col].enc.Decode(pg.Codes.Get(off))
				if !p.Op.Eval(v, p.Val) {
					ok = false
					break
				}
			}
			if ok {
				sel = append(sel, off)
			}
		}
		t.stats.rowsScanned.Add(page.StrideSize)
		if len(sel) > 0 {
			b := &Batch{t: t, stride: s, base: base, sel: sel, pages: pages}
			if !fn(b) {
				return nil
			}
		}
	}
	if n := t.openLen(); n > 0 {
		t.stats.stridesVisited.Add(1)
		b := t.evalOpenStride(preds)
		if b.Len() > 0 && !fn(b) {
			return nil
		}
	}
	return nil
}

// CountWhere returns the number of live rows satisfying the conjunction,
// without materializing values (COUNT(*) fast path).
func (t *Table) CountWhere(preds []Pred) (int, error) {
	total := 0
	err := t.Scan(preds, func(b *Batch) bool {
		total += b.Len()
		return true
	})
	return total, err
}

// SelectWhere materializes all matching rows (convenience for small
// results and tests; the executor streams batches instead).
func (t *Table) SelectWhere(preds []Pred) ([]types.Row, error) {
	var out []types.Row
	err := t.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
		return true
	})
	return out, err
}

// DeleteWhere tombstones matching rows, returning how many were deleted.
func (t *Table) DeleteWhere(preds []Pred) (int, error) {
	var rids []int64
	err := t.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			rids = append(rids, b.RowID(i))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.statsVer++
	for _, rid := range rids {
		if !t.deleted.Get(int(rid)) {
			t.deleted.Set(int(rid))
			t.live--
		}
	}
	return len(rids), nil
}

// DeleteRows tombstones the given row ids, returning how many were live.
// The general DML path uses it after evaluating residual predicates the
// scan could not push down.
func (t *Table) DeleteRows(rids []int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.statsVer++
	n := 0
	for _, rid := range rids {
		if rid < 0 || int(rid) >= t.rows {
			continue
		}
		if !t.deleted.Get(int(rid)) {
			t.deleted.Set(int(rid))
			t.live--
			n++
		}
	}
	return n
}

// UpdateWhere rewrites matching rows: columnar updates are implemented as
// delete + re-insert of the modified row, the standard approach for
// column-organized storage. set maps column ordinals to new values.
func (t *Table) UpdateWhere(preds []Pred, set map[int]types.Value) (int, error) {
	var updated []types.Row
	var rids []int64
	err := t.Scan(preds, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			for ci, v := range set {
				row[ci] = v
			}
			updated = append(updated, row)
			rids = append(rids, b.RowID(i))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.statsVer++
	for _, rid := range rids {
		if !t.deleted.Get(int(rid)) {
			t.deleted.Set(int(rid))
			t.live--
		}
	}
	t.mu.Unlock()
	for _, row := range updated {
		if err := t.Insert(row); err != nil {
			return 0, err
		}
	}
	return len(updated), nil
}
