package page

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageMarshalRoundTrip(t *testing.T) {
	id := ID{Table: 7, Column: 3, Stride: 42}
	p := New(id, 11)
	rng := rand.New(rand.NewSource(5))
	var want []uint64
	for i := 0; i < 1000; i++ {
		c := rng.Uint64() & 2047
		p.Codes.Append(c)
		want = append(want, c)
		if i%17 == 0 {
			p.Nulls.Set(i)
		}
	}
	data := p.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id {
		t.Fatalf("id %v", got.ID)
	}
	if got.Rows() != 1000 {
		t.Fatalf("rows %d", got.Rows())
	}
	for i, w := range want {
		if got.Codes.Get(i) != w {
			t.Fatalf("code %d: %d want %d", i, got.Codes.Get(i), w)
		}
		if got.Nulls.Get(i) != (i%17 == 0) {
			t.Fatalf("null bit %d wrong", i)
		}
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	p := New(ID{Table: 1}, 8)
	p.Codes.AppendAll([]uint64{1, 2, 3})
	data := p.Marshal()
	data[40] ^= 0xff
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("corruption must be detected")
	}
}

func TestPageUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil input must error")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short input must error")
	}
	p := New(ID{}, 8)
	p.Codes.Append(1)
	data := p.Marshal()
	if _, err := Unmarshal(data[:len(data)-20]); err == nil {
		t.Fatal("truncated body must error")
	}
}

func TestPageBadMagic(t *testing.T) {
	p := New(ID{}, 8)
	p.Codes.Append(1)
	data := p.Marshal()
	data[0] = 0
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("bad magic must error (and not pass checksum)")
	}
}

func TestPageMemSizeReflectsWidth(t *testing.T) {
	narrow := New(ID{}, 1)
	wide := New(ID{}, 31)
	for i := 0; i < StrideSize; i++ {
		narrow.Codes.Append(uint64(i % 2))
		wide.Codes.Append(uint64(i))
	}
	if narrow.MemSize() >= wide.MemSize() {
		t.Errorf("narrow %d must be smaller than wide %d", narrow.MemSize(), wide.MemSize())
	}
}

// Property: marshal/unmarshal is the identity for random pages.
func TestPageRoundTripProperty(t *testing.T) {
	f := func(seed int64, widthSel uint8, nSel uint16) bool {
		width := uint(widthSel%31) + 1
		n := int(nSel)%StrideSize + 1
		rng := rand.New(rand.NewSource(seed))
		p := New(ID{Table: uint32(seed)}, width)
		max := uint64(1)<<width - 1
		for i := 0; i < n; i++ {
			p.Codes.Append(rng.Uint64() & max)
			if rng.Intn(10) == 0 {
				p.Nulls.Set(i)
			}
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil || got.Rows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Codes.Get(i) != p.Codes.Get(i) || got.Nulls.Get(i) != p.Nulls.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
