// Package page defines the columnar storage page (paper §II.B.3): a
// self-describing unit holding the bit-packed codes of one column over one
// stride of tuples, together with its NULL bitmap. Pages serialize to a
// compact binary format with a checksum so they can live on the simulated
// clustered filesystem and flow through the buffer pool.
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dashdb/internal/bitpack"
)

// StrideSize is the number of tuples per stride — the batch unit of the
// entire engine (paper §II.B.4 collects skipping metadata per ~1K tuples;
// §II.B.7 processes "batches of rows called strides").
const StrideSize = 1024

// ID identifies a page: a column of a stride of a table object.
type ID struct {
	Table  uint32
	Column uint16
	Stride uint32
}

// String renders the ID for diagnostics.
func (id ID) String() string {
	return fmt.Sprintf("T%d.C%d.S%d", id.Table, id.Column, id.Stride)
}

// Page holds one column's codes for one stride. Within any page only
// values of a single table column are represented.
type Page struct {
	ID    ID
	Codes *bitpack.Vector
	Nulls *bitpack.Bitmap // bit set ⇒ value is NULL (code is 0 filler)
}

// New creates an empty page for codes of the given width.
func New(id ID, width uint) *Page {
	return &Page{
		ID:    id,
		Codes: bitpack.NewVector(width),
		Nulls: bitpack.NewBitmap(StrideSize),
	}
}

// Rows returns the number of tuples stored.
func (p *Page) Rows() int { return p.Codes.Len() }

// MemSize returns the page's in-memory footprint in bytes (codes +
// null bitmap + header), the unit of buffer-pool accounting.
func (p *Page) MemSize() int {
	return p.Codes.SizeBytes() + StrideSize/8 + 32
}

const pageMagic = 0xDA5B

// Marshal serializes the page: header, null bitmap, packed words, CRC.
func (p *Page) Marshal() []byte {
	words := p.Codes.Words()
	buf := make([]byte, 0, 32+StrideSize/8+len(words)*8)
	var hdr [28]byte
	binary.LittleEndian.PutUint16(hdr[0:], pageMagic)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(p.Codes.Width()))
	binary.LittleEndian.PutUint32(hdr[4:], p.ID.Table)
	binary.LittleEndian.PutUint16(hdr[8:], p.ID.Column)
	binary.LittleEndian.PutUint32(hdr[10:], p.ID.Stride)
	binary.LittleEndian.PutUint32(hdr[14:], uint32(p.Codes.Len()))
	binary.LittleEndian.PutUint32(hdr[18:], uint32(len(words)))
	buf = append(buf, hdr[:]...)
	var w8 [8]byte
	for _, nw := range nullWords(p.Nulls) {
		binary.LittleEndian.PutUint64(w8[:], nw)
		buf = append(buf, w8[:]...)
	}
	for _, w := range words {
		binary.LittleEndian.PutUint64(w8[:], w)
		buf = append(buf, w8[:]...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...)
}

// nullWords extracts the bitmap's words via its public iteration API.
func nullWords(b *bitpack.Bitmap) []uint64 {
	words := make([]uint64, (StrideSize+63)/64)
	b.ForEach(func(i int) { words[i/64] |= 1 << (uint(i) % 64) })
	return words
}

// Unmarshal parses a serialized page, verifying the checksum.
func Unmarshal(data []byte) (*Page, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("page: truncated (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("page: checksum mismatch")
	}
	if binary.LittleEndian.Uint16(body[0:]) != pageMagic {
		return nil, fmt.Errorf("page: bad magic")
	}
	width := uint(binary.LittleEndian.Uint16(body[2:]))
	id := ID{
		Table:  binary.LittleEndian.Uint32(body[4:]),
		Column: binary.LittleEndian.Uint16(body[8:]),
		Stride: binary.LittleEndian.Uint32(body[10:]),
	}
	n := int(binary.LittleEndian.Uint32(body[14:]))
	nWords := int(binary.LittleEndian.Uint32(body[18:]))
	off := 28
	nullWordCount := (StrideSize + 63) / 64
	if len(body) < off+8*(nullWordCount+nWords) {
		return nil, fmt.Errorf("page: body shorter than header claims")
	}
	p := New(id, width)
	for wi := 0; wi < nullWordCount; wi++ {
		w := binary.LittleEndian.Uint64(body[off:])
		off += 8
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				p.Nulls.Set(wi*64 + b)
			}
		}
	}
	// Rebuild the vector by appending codes; Append validates width.
	raw := make([]uint64, nWords)
	for i := range raw {
		raw[i] = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	tmp := bitpack.NewVector(width)
	per := tmp.PerWord()
	mask := uint64(1)<<width - 1
	cell := width + 1
	for i := 0; i < n; i++ {
		w := raw[i/per]
		shift := uint(i%per) * cell
		tmp.Append((w >> shift) & mask)
	}
	p.Codes = tmp
	return p, nil
}
