package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestOpStatsObserve(t *testing.T) {
	var s OpStats
	start := time.Now().Add(-time.Millisecond)
	s.Observe(start, 100)
	s.Observe(start, 24)
	s.Observe(start, -1) // EOS: time only
	if s.Rows() != 124 {
		t.Fatalf("rows %d", s.Rows())
	}
	if s.Batches() != 2 {
		t.Fatalf("batches %d", s.Batches())
	}
	if s.Wall() < 3*time.Millisecond {
		t.Fatalf("wall %v", s.Wall())
	}
}

func TestOpStatsNilSafe(t *testing.T) {
	var s *OpStats
	s.Observe(time.Now(), 5)
	s.AddWall(time.Second)
	if s.Rows() != 0 || s.Batches() != 0 || s.Wall() != 0 {
		t.Fatal("nil OpStats must read as zero")
	}
}

func TestScanStatsSharding(t *testing.T) {
	ss := NewScanStats(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := ss.Shard(w)
			for i := 0; i < 100; i++ {
				sh.Visit()
				sh.Rows(10)
			}
			for i := 0; i < 50; i++ {
				sh.Skip()
			}
		}(w)
	}
	wg.Wait()
	if got := ss.StridesVisited(); got != 400 {
		t.Fatalf("visited %d", got)
	}
	if got := ss.StridesSkipped(); got != 200 {
		t.Fatalf("skipped %d", got)
	}
	if got := ss.RowsScanned(); got != 4000 {
		t.Fatalf("rows %d", got)
	}
	if r := ss.SkipRatio(); r < 0.33 || r > 0.34 {
		t.Fatalf("skip ratio %f", r)
	}
}

func TestScanStatsNilAndOutOfRange(t *testing.T) {
	var ss *ScanStats
	ss.Shard(0).Visit() // nil shard: no-op
	if ss.StridesVisited() != 0 || ss.SkipRatio() != 0 {
		t.Fatal("nil ScanStats must read as zero")
	}
	real := NewScanStats(2)
	real.Shard(7).Visit() // out of range folds into shard 0
	if real.StridesVisited() != 1 {
		t.Fatal("out-of-range worker must fold into shard 0")
	}
}

func TestRegistryRingWraparound(t *testing.T) {
	r := NewRegistry(4)
	for i := 1; i <= 10; i++ {
		r.Record(QueryRecord{ID: r.NextID(), SQL: fmt.Sprintf("q%d", i), Status: "ok"})
	}
	h := r.History()
	if len(h) != 4 {
		t.Fatalf("history len %d, want ring cap 4", len(h))
	}
	for i, q := range h {
		want := fmt.Sprintf("q%d", i+7) // oldest retained is q7
		if q.SQL != want {
			t.Fatalf("slot %d = %s, want %s", i, q.SQL, want)
		}
	}
	if tot := r.Totals(); tot.Queries != 10 {
		t.Fatalf("total queries %d", tot.Queries)
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry(8)
	r.Record(QueryRecord{ID: 1, Status: "ok", Rows: 5})
	r.Record(QueryRecord{ID: 2, Status: "error", Err: "boom"})
	r.Record(QueryRecord{ID: 3, Status: "ok", Slow: true, Rows: 2})
	tot := r.Totals()
	if tot.Queries != 3 || tot.Failed != 1 || tot.Slow != 1 || tot.RowsOut != 7 {
		t.Fatalf("%+v", tot)
	}
}

func TestSlowThreshold(t *testing.T) {
	r := NewRegistry(1)
	if r.SlowThreshold() != DefaultSlowThreshold {
		t.Fatalf("default threshold %v", r.SlowThreshold())
	}
	r.SetSlowThreshold(0)
	if r.SlowThreshold() != 0 {
		t.Fatal("threshold must update")
	}
}

func TestMergeShardRecords(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	recs := []QueryRecord{
		{
			ID: 1, Start: base, Elapsed: 10 * time.Millisecond, Rows: 3, Dop: 2, Status: "ok",
			Ops: []OpRecord{
				{Seq: 0, Name: "GROUP BY", Rows: 3, Batches: 1, Wall: 8 * time.Millisecond},
				{Seq: 1, Name: "SCAN", Rows: 100, HasScan: true, StridesVisited: 5, StridesSkipped: 5},
			},
		},
		{
			ID: 2, Start: base.Add(-time.Millisecond), Elapsed: 25 * time.Millisecond, Rows: 4, Dop: 4, Status: "ok",
			Ops: []OpRecord{
				{Seq: 0, Name: "GROUP BY", Rows: 4, Batches: 1, Wall: 20 * time.Millisecond},
				{Seq: 1, Name: "SCAN", Rows: 200, HasScan: true, StridesVisited: 7, StridesSkipped: 3},
			},
		},
	}
	m := MergeShardRecords(recs)
	if m.Shards != 2 {
		t.Fatalf("shards %d", m.Shards)
	}
	if m.Elapsed != 25*time.Millisecond {
		t.Fatalf("elapsed must be the max across shards, got %v", m.Elapsed)
	}
	if !m.Start.Equal(base.Add(-time.Millisecond)) {
		t.Fatalf("start must be the earliest shard start, got %v", m.Start)
	}
	if m.Rows != 7 || m.Dop != 4 {
		t.Fatalf("rows=%d dop=%d", m.Rows, m.Dop)
	}
	if m.Ops[0].Rows != 7 || m.Ops[0].Wall != 20*time.Millisecond {
		t.Fatalf("op0 %+v", m.Ops[0])
	}
	if m.Ops[1].Rows != 300 || m.Ops[1].StridesVisited != 12 || m.Ops[1].StridesSkipped != 8 {
		t.Fatalf("op1 %+v", m.Ops[1])
	}
	if r := m.Ops[1].SkipRatio(); r != 0.4 {
		t.Fatalf("merged skip ratio %f", r)
	}
}

func TestMergeShardRecordsErrorPropagates(t *testing.T) {
	m := MergeShardRecords([]QueryRecord{
		{ID: 1, Status: "ok"},
		{ID: 2, Status: "error", Err: "shard 1 died"},
	})
	if m.Status != "error" || m.Err != "shard 1 died" {
		t.Fatalf("%+v", m)
	}
}

func TestRegistryConcurrentRecord(t *testing.T) {
	r := NewRegistry(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(QueryRecord{ID: r.NextID(), Status: "ok", Rows: 1})
				r.History()
				r.Totals()
			}
		}()
	}
	wg.Wait()
	if tot := r.Totals(); tot.Queries != 1600 {
		t.Fatalf("queries %d", tot.Queries)
	}
	if len(r.History()) != 16 {
		t.Fatalf("history %d", len(r.History()))
	}
}
