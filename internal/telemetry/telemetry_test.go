package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestOpStatsObserve(t *testing.T) {
	var s OpStats
	start := time.Now().Add(-time.Millisecond)
	s.Observe(start, 100)
	s.Observe(start, 24)
	s.Observe(start, -1) // EOS: time only
	if s.Rows() != 124 {
		t.Fatalf("rows %d", s.Rows())
	}
	if s.Batches() != 2 {
		t.Fatalf("batches %d", s.Batches())
	}
	if s.Wall() < 3*time.Millisecond {
		t.Fatalf("wall %v", s.Wall())
	}
}

func TestOpStatsNilSafe(t *testing.T) {
	var s *OpStats
	s.Observe(time.Now(), 5)
	s.AddWall(time.Second)
	if s.Rows() != 0 || s.Batches() != 0 || s.Wall() != 0 {
		t.Fatal("nil OpStats must read as zero")
	}
}

func TestScanStatsSharding(t *testing.T) {
	ss := NewScanStats(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := ss.Shard(w)
			for i := 0; i < 100; i++ {
				sh.Visit()
				sh.Rows(10)
			}
			for i := 0; i < 50; i++ {
				sh.Skip()
			}
		}(w)
	}
	wg.Wait()
	if got := ss.StridesVisited(); got != 400 {
		t.Fatalf("visited %d", got)
	}
	if got := ss.StridesSkipped(); got != 200 {
		t.Fatalf("skipped %d", got)
	}
	if got := ss.RowsScanned(); got != 4000 {
		t.Fatalf("rows %d", got)
	}
	if r := ss.SkipRatio(); r < 0.33 || r > 0.34 {
		t.Fatalf("skip ratio %f", r)
	}
}

func TestScanStatsNilAndOutOfRange(t *testing.T) {
	var ss *ScanStats
	ss.Shard(0).Visit() // nil shard: no-op
	if ss.StridesVisited() != 0 || ss.SkipRatio() != 0 {
		t.Fatal("nil ScanStats must read as zero")
	}
	real := NewScanStats(2)
	real.Shard(7).Visit() // out of range folds into shard 0
	if real.StridesVisited() != 1 {
		t.Fatal("out-of-range worker must fold into shard 0")
	}
}

func TestRegistryRingWraparound(t *testing.T) {
	r := NewRegistry(4)
	for i := 1; i <= 10; i++ {
		r.Record(QueryRecord{ID: r.NextID(), SQL: fmt.Sprintf("q%d", i), Status: "ok"})
	}
	h := r.History()
	if len(h) != 4 {
		t.Fatalf("history len %d, want ring cap 4", len(h))
	}
	for i, q := range h {
		want := fmt.Sprintf("q%d", i+7) // oldest retained is q7
		if q.SQL != want {
			t.Fatalf("slot %d = %s, want %s", i, q.SQL, want)
		}
	}
	if tot := r.Totals(); tot.Queries != 10 {
		t.Fatalf("total queries %d", tot.Queries)
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry(8)
	r.Record(QueryRecord{ID: 1, Status: "ok", Rows: 5})
	r.Record(QueryRecord{ID: 2, Status: "error", Err: "boom"})
	r.Record(QueryRecord{ID: 3, Status: "ok", Slow: true, Rows: 2})
	tot := r.Totals()
	if tot.Queries != 3 || tot.Failed != 1 || tot.Slow != 1 || tot.RowsOut != 7 {
		t.Fatalf("%+v", tot)
	}
}

func TestSlowThreshold(t *testing.T) {
	r := NewRegistry(1)
	if r.SlowThreshold() != DefaultSlowThreshold {
		t.Fatalf("default threshold %v", r.SlowThreshold())
	}
	r.SetSlowThreshold(0)
	if r.SlowThreshold() != 0 {
		t.Fatal("threshold must update")
	}
}

func TestMergeShardRecords(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	recs := []QueryRecord{
		{
			ID: 1, Start: base, Elapsed: 10 * time.Millisecond, Rows: 3, Dop: 2, Status: "ok",
			Ops: []OpRecord{
				{Seq: 0, Name: "GROUP BY", Rows: 3, Batches: 1, Wall: 8 * time.Millisecond},
				{Seq: 1, Name: "SCAN", Rows: 100, HasScan: true, StridesVisited: 5, StridesSkipped: 5},
			},
		},
		{
			ID: 2, Start: base.Add(-time.Millisecond), Elapsed: 25 * time.Millisecond, Rows: 4, Dop: 4, Status: "ok",
			Ops: []OpRecord{
				{Seq: 0, Name: "GROUP BY", Rows: 4, Batches: 1, Wall: 20 * time.Millisecond},
				{Seq: 1, Name: "SCAN", Rows: 200, HasScan: true, StridesVisited: 7, StridesSkipped: 3},
			},
		},
	}
	m := MergeShardRecords(recs, len(recs))
	if m.Shards != 2 {
		t.Fatalf("shards %d", m.Shards)
	}
	if m.Elapsed != 25*time.Millisecond {
		t.Fatalf("elapsed must be the max across shards, got %v", m.Elapsed)
	}
	if !m.Start.Equal(base.Add(-time.Millisecond)) {
		t.Fatalf("start must be the earliest shard start, got %v", m.Start)
	}
	if m.Rows != 7 || m.Dop != 4 {
		t.Fatalf("rows=%d dop=%d", m.Rows, m.Dop)
	}
	if m.Ops[0].Rows != 7 || m.Ops[0].Wall != 20*time.Millisecond {
		t.Fatalf("op0 %+v", m.Ops[0])
	}
	if m.Ops[1].Rows != 300 || m.Ops[1].StridesVisited != 12 || m.Ops[1].StridesSkipped != 8 {
		t.Fatalf("op1 %+v", m.Ops[1])
	}
	if r := m.Ops[1].SkipRatio(); r != 0.4 {
		t.Fatalf("merged skip ratio %f", r)
	}
}

func TestMergeShardRecordsErrorPropagates(t *testing.T) {
	m := MergeShardRecords([]QueryRecord{
		{ID: 1, Status: "ok"},
		{ID: 2, Status: "error", Err: "shard 1 died"},
	}, 2)
	if m.Status != "error" || m.Err != "shard 1 died" {
		t.Fatalf("%+v", m)
	}
}

func TestMergeShardRecordsMissingShardDegrades(t *testing.T) {
	// A 4-shard scatter where only 3 records arrived: the merge must say
	// so, not present the 3-shard sum as the query's cost.
	recs := []QueryRecord{
		{ID: 1, Status: "ok", Rows: 10, Elapsed: 5 * time.Millisecond},
		{ID: 2, Status: "ok", Rows: 20, Elapsed: 9 * time.Millisecond},
		{ID: 3, Status: "ok", Rows: 30, Elapsed: 2 * time.Millisecond},
	}
	m := MergeShardRecords(recs, 4)
	if m.Status != "degraded" {
		t.Fatalf("status %q, want degraded", m.Status)
	}
	if m.Err != "1 of 4 shard records missing" {
		t.Fatalf("err %q", m.Err)
	}
	if m.Shards != 3 || m.Rows != 60 {
		t.Fatalf("shards=%d rows=%d", m.Shards, m.Rows)
	}
	// A shard-reported error outranks the degradation marker.
	recs[1].Status, recs[1].Err = "error", "conn reset"
	m = MergeShardRecords(recs, 4)
	if m.Status != "error" || m.Err != "conn reset" {
		t.Fatalf("%+v", m)
	}
	// All records missing still degrades instead of returning a zero
	// "ok" record.
	m = MergeShardRecords(nil, 4)
	if m.Status != "degraded" || m.Err != "4 of 4 shard records missing" {
		t.Fatalf("%+v", m)
	}
}

func TestMergeShardRecordsSkewedElapsed(t *testing.T) {
	// Gather-path timing: shards run concurrently, so one straggler
	// defines the query's elapsed time; summing would overstate it, and
	// taking the first record's value would understate it.
	recs := []QueryRecord{
		{ID: 1, Status: "ok", Elapsed: 2 * time.Millisecond, Dop: 8,
			Ops: []OpRecord{{Name: "SCAN", Wall: 2 * time.Millisecond, Rows: 100}}},
		{ID: 2, Status: "ok", Elapsed: 900 * time.Millisecond, Dop: 2,
			Ops: []OpRecord{{Name: "SCAN", Wall: 880 * time.Millisecond, Rows: 90000}}},
		{ID: 3, Status: "ok", Elapsed: 3 * time.Millisecond, Dop: 8,
			Ops: []OpRecord{{Name: "SCAN", Wall: 3 * time.Millisecond, Rows: 140}}},
	}
	m := MergeShardRecords(recs, 3)
	if m.Status != "ok" && m.Status != "" {
		t.Fatalf("status %q", m.Status)
	}
	if m.Elapsed != 900*time.Millisecond {
		t.Fatalf("elapsed %v, want the straggler's 900ms", m.Elapsed)
	}
	if m.Ops[0].Wall != 880*time.Millisecond {
		t.Fatalf("op wall %v, want straggler max", m.Ops[0].Wall)
	}
	if m.Ops[0].Rows != 90240 {
		t.Fatalf("op rows %d, want sum across shards", m.Ops[0].Rows)
	}
	if m.Dop != 8 {
		t.Fatalf("dop %d", m.Dop)
	}
}

func TestRegistryConcurrentRecord(t *testing.T) {
	r := NewRegistry(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(QueryRecord{ID: r.NextID(), Status: "ok", Rows: 1})
				r.History()
				r.Totals()
			}
		}()
	}
	wg.Wait()
	if tot := r.Totals(); tot.Queries != 1600 {
		t.Fatalf("queries %d", tot.Queries)
	}
	if len(r.History()) != 16 {
		t.Fatalf("history %d", len(r.History()))
	}
}
