// Package telemetry is the engine's low-overhead instrumentation layer.
//
// Two counter families cover the hot paths:
//
//   - OpStats: per-operator atomic counters (rows, batches, wall time).
//     Operators are pulled from a single consumer goroutine, but scans hand
//     batches across a channel from a producer goroutine, so atomics keep
//     the accounting race-free without a lock.
//
//   - ScanStats: per-worker sharded counters for parallel scans. Each morsel
//     worker owns one cache-line-padded shard and bumps it with plain
//     (non-atomic) adds; readers only sum the shards after the scan's
//     WaitGroup has settled, so the happens-before edge is the scan
//     completing, not any per-increment synchronization.
//
// Everything here is std-lib only so any layer of the engine can depend on
// it without cycles.
package telemetry

import (
	"sync/atomic"
	"time"
)

// OpStats accumulates runtime counters for one operator instance. All
// methods are safe for concurrent use and nil-safe so uninstrumented plans
// pay nothing.
type OpStats struct {
	rows      atomic.Int64
	batches   atomic.Int64
	wallNanos atomic.Int64
}

// Observe records one Next/NextVec call that took time.Since(start) and
// returned rows output rows. rows < 0 means "no batch produced" (EOS or
// error): wall time is still charged but batch/row counts are not.
func (s *OpStats) Observe(start time.Time, rows int) {
	if s == nil {
		return
	}
	s.wallNanos.Add(int64(time.Since(start)))
	if rows >= 0 {
		s.batches.Add(1)
		s.rows.Add(int64(rows))
	}
}

// AddWall charges wall time without a batch (used for Open, where blocking
// operators like SORT do their real work).
func (s *OpStats) AddWall(d time.Duration) {
	if s == nil {
		return
	}
	s.wallNanos.Add(int64(d))
}

// Rows returns the total output rows observed.
func (s *OpStats) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// Batches returns the number of non-empty Next/NextVec calls observed.
func (s *OpStats) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batches.Load()
}

// Wall returns the accumulated wall-clock time inside the operator.
func (s *OpStats) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.wallNanos.Load())
}

// ScanShard is one worker's private slice of a parallel scan's counters.
// The pad keeps adjacent shards on distinct cache lines so workers do not
// false-share.
//
//dashdb:nocopy
type ScanShard struct {
	Visited int64 // strides actually evaluated
	Skipped int64 // strides eliminated by synopsis min/max
	RowsOut int64 // rows delivered to the consumer
	_       [40]byte
}

// ScanStats holds per-worker sharded stride/row counters for one scan.
// Shard(w) hands worker w its private shard; the summing accessors must
// only be called after the scan has fully completed.
type ScanStats struct {
	shards []ScanShard
}

// NewScanStats sizes a ScanStats for dop workers (minimum 1).
func NewScanStats(dop int) *ScanStats {
	if dop < 1 {
		dop = 1
	}
	return &ScanStats{shards: make([]ScanShard, dop)}
}

// Shard returns worker w's private shard. Out-of-range workers (which can
// happen if a caller over-provisions dop) fold into shard 0.
func (s *ScanStats) Shard(w int) *ScanShard {
	if s == nil {
		return nil
	}
	if w < 0 || w >= len(s.shards) {
		w = 0
	}
	return &s.shards[w]
}

// Visit records one stride evaluated by worker shard sh.
func (sh *ScanShard) Visit() {
	if sh != nil {
		sh.Visited++
	}
}

// Skip records one stride eliminated by synopsis pruning.
func (sh *ScanShard) Skip() {
	if sh != nil {
		sh.Skipped++
	}
}

// Rows records n rows delivered by worker shard sh.
func (sh *ScanShard) Rows(n int) {
	if sh != nil {
		sh.RowsOut += int64(n)
	}
}

// StridesVisited sums visited strides across all workers.
func (s *ScanStats) StridesVisited() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.shards {
		n += s.shards[i].Visited
	}
	return n
}

// StridesSkipped sums synopsis-skipped strides across all workers.
func (s *ScanStats) StridesSkipped() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.shards {
		n += s.shards[i].Skipped
	}
	return n
}

// RowsScanned sums delivered rows across all workers.
func (s *ScanStats) RowsScanned() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for i := range s.shards {
		n += s.shards[i].RowsOut
	}
	return n
}

// SkipRatio returns the fraction of strides eliminated by synopsis pruning,
// in [0,1]. Zero strides yields 0.
func (s *ScanStats) SkipRatio() float64 {
	v, k := s.StridesVisited(), s.StridesSkipped()
	if v+k == 0 {
		return 0
	}
	return float64(k) / float64(v+k)
}
