package telemetry_test

// Integration race coverage for the observability subsystem: concurrent
// sessions run instrumented queries (plain, EXPLAIN ANALYZE, MON_* view
// reads) against one engine at dop 1, 2 and 8. Under -race this exercises
// the per-worker scan shards, the atomic operator counters, the history
// ring and the WLM wait accounting all at once.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dashdb/internal/core"
)

func seedEngine(t *testing.T, dop int) *core.DB {
	t.Helper()
	db := core.Open(core.Config{BufferPoolBytes: 16 << 20, Parallelism: dop})
	s := db.NewSession()
	var b strings.Builder
	b.WriteString("INSERT INTO m VALUES ")
	for i := 0; i < 30_000; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "(%d, %d)", i%8, i%128)
	}
	for _, q := range []string{
		`CREATE TABLE m (k BIGINT, v BIGINT)`,
		b.String(),
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatalf("seed %v", err)
		}
	}
	return db
}

func TestConcurrentQueryTelemetry(t *testing.T) {
	for _, dop := range []int{1, 2, 8} {
		dop := dop
		t.Run(fmt.Sprintf("dop%d", dop), func(t *testing.T) {
			t.Parallel()
			db := seedEngine(t, dop)
			queries := []string{
				`SELECT k, COUNT(*), SUM(v) FROM m WHERE v >= 64 GROUP BY k`,
				`SELECT COUNT(*) FROM m WHERE v < 4`,
				`EXPLAIN ANALYZE SELECT k, COUNT(*) FROM m WHERE v >= 100 GROUP BY k`,
				`SELECT * FROM mon_query_history`,
				`SELECT * FROM mon_operator_stats`,
				`SELECT * FROM mon_wlm`,
				`SELECT * FROM mon_bufferpool`,
			}
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := db.NewSession()
					for i := 0; i < 10; i++ {
						q := queries[(g+i)%len(queries)]
						if _, err := s.Exec(q); err != nil {
							t.Errorf("dop=%d %q: %v", dop, q, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			tot := db.Telemetry().Totals()
			if tot.Queries < 60 {
				t.Fatalf("registry recorded %d queries, want >= 60", tot.Queries)
			}
			if tot.Failed != 0 {
				t.Fatalf("%d queries failed", tot.Failed)
			}
		})
	}
}
