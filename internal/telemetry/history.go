package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// OpRecord is the frozen per-operator snapshot kept in query history. It is
// a plain value (no atomics) taken after the query has drained.
type OpRecord struct {
	Seq     int    // position in the flattened plan, 0 = root
	Depth   int    // indentation depth in the plan tree
	Name    string // plan line text without runtime annotations
	Rows    int64
	Batches int64
	Wall    time.Duration

	// Scan-backed operators also report synopsis pruning effectiveness.
	HasScan        bool
	StridesVisited int64
	StridesSkipped int64

	// Blocking operators under the memory governor report spill activity
	// (external sort runs, Grace join partitions, aggregate run files).
	SpillRuns  int64
	SpillBytes int64
}

// SkipRatio mirrors ScanStats.SkipRatio for frozen records.
func (o *OpRecord) SkipRatio() float64 {
	tot := o.StridesVisited + o.StridesSkipped
	if tot == 0 {
		return 0
	}
	return float64(o.StridesSkipped) / float64(tot)
}

// QueryRecord is one completed query in the history ring.
type QueryRecord struct {
	ID      uint64
	SQL     string
	Start   time.Time
	Elapsed time.Duration
	Rows    int64 // rows returned to the client
	Dop     int
	Status  string // "ok" or "error"
	Err     string
	Slow    bool
	Plan    string // EXPLAIN ANALYZE text; always set for slow queries
	Shards  int    // >0 when merged from an MPP scatter
	Ops     []OpRecord
}

// DefaultSlowThreshold is the slow-query log cutoff until SET
// SLOW_QUERY_THRESHOLD_MS overrides it.
const DefaultSlowThreshold = time.Second

// DefaultHistorySize bounds the query-history ring.
const DefaultHistorySize = 256

// Registry owns the engine-wide counters and the bounded query-history
// ring. Record is called once per completed query (never on the per-row hot
// path), so a mutex around the ring is fine; the engine-wide counters stay
// atomic so views can read them without taking the lock.
type Registry struct {
	mu   sync.Mutex
	ring []QueryRecord
	next int // next slot to overwrite
	n    int // occupied slots
	seq  atomic.Uint64

	slowNanos atomic.Int64

	queries atomic.Uint64
	failed  atomic.Uint64
	slow    atomic.Uint64
	rowsOut atomic.Uint64
}

// NewRegistry builds a registry with a ring of size cap (minimum 1).
func NewRegistry(capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	r := &Registry{ring: make([]QueryRecord, capacity)}
	r.slowNanos.Store(int64(DefaultSlowThreshold))
	return r
}

// NextID hands out a unique query ID.
func (r *Registry) NextID() uint64 { return r.seq.Add(1) }

// SlowThreshold returns the current slow-query cutoff.
func (r *Registry) SlowThreshold() time.Duration {
	return time.Duration(r.slowNanos.Load())
}

// SetSlowThreshold updates the slow-query cutoff. d <= 0 marks every query
// slow, which the tests use to force the slow path deterministically.
func (r *Registry) SetSlowThreshold(d time.Duration) {
	r.slowNanos.Store(int64(d))
}

// Record appends one completed query to the ring and bumps the engine-wide
// counters.
func (r *Registry) Record(q QueryRecord) {
	r.queries.Add(1)
	if q.Status != "ok" {
		r.failed.Add(1)
	}
	if q.Slow {
		r.slow.Add(1)
	}
	if q.Rows > 0 {
		r.rowsOut.Add(uint64(q.Rows))
	}
	r.mu.Lock()
	r.ring[r.next] = q
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// History returns the retained records, oldest first.
func (r *Registry) History() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Counters is a snapshot of the engine-wide totals.
type Counters struct {
	Queries uint64
	Failed  uint64
	Slow    uint64
	RowsOut uint64
}

// Totals snapshots the engine-wide counters.
func (r *Registry) Totals() Counters {
	return Counters{
		Queries: r.queries.Load(),
		Failed:  r.failed.Load(),
		Slow:    r.slow.Load(),
		RowsOut: r.rowsOut.Load(),
	}
}

// MergeShardRecords folds per-shard records of the same scattered query
// into one cluster-level record. Elapsed is the max across shards (shards
// ran concurrently), row/stride counters are summed, and per-operator stats
// merge positionally when the shard plans line up (same shape, which holds
// for scatter: every shard runs the identical plan).
//
// expected is the number of shards the query was scattered to. When
// fewer records arrive — a shard died mid-query, or its result carried
// no instrumentation — the merged record surfaces as "degraded" instead
// of silently under-counting: a cluster-level aggregate built from a
// subset of shards is NOT the query's true cost, and monitoring must be
// able to tell.
func MergeShardRecords(recs []QueryRecord, expected int) QueryRecord {
	var out QueryRecord
	first := true
	for _, q := range recs {
		if first {
			out = q
			out.Ops = append([]OpRecord(nil), q.Ops...)
			out.Shards = 1
			first = false
			continue
		}
		out.Shards++
		if q.Elapsed > out.Elapsed {
			out.Elapsed = q.Elapsed
		}
		if q.Start.Before(out.Start) {
			out.Start = q.Start
		}
		out.Rows += q.Rows
		if q.Status != "ok" {
			out.Status = q.Status
			if out.Err == "" {
				out.Err = q.Err
			}
		}
		out.Slow = out.Slow || q.Slow
		if q.Dop > out.Dop {
			out.Dop = q.Dop
		}
		for i := range q.Ops {
			if i >= len(out.Ops) || out.Ops[i].Name != q.Ops[i].Name {
				continue // plan shapes diverged; keep the first shard's view
			}
			out.Ops[i].Rows += q.Ops[i].Rows
			out.Ops[i].Batches += q.Ops[i].Batches
			if q.Ops[i].Wall > out.Ops[i].Wall {
				out.Ops[i].Wall = q.Ops[i].Wall
			}
			out.Ops[i].StridesVisited += q.Ops[i].StridesVisited
			out.Ops[i].StridesSkipped += q.Ops[i].StridesSkipped
			out.Ops[i].SpillRuns += q.Ops[i].SpillRuns
			out.Ops[i].SpillBytes += q.Ops[i].SpillBytes
		}
	}
	if len(recs) < expected {
		// A shard-reported error is more specific than the gap it caused;
		// otherwise the record degrades so dashboards see the subset.
		if out.Status == "" || out.Status == "ok" {
			out.Status = "degraded"
		}
		if out.Err == "" {
			out.Err = fmt.Sprintf("%d of %d shard records missing", expected-len(recs), expected)
		}
	}
	return out
}
