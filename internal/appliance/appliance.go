// Package appliance simulates the "high performance analytic appliance"
// dashDB Local is compared against in Tests 1–3 (a Netezza-class machine:
// row-format storage streamed off disk through FPGA filter cards). Per
// DESIGN.md's substitution rules we implement its defining architectural
// traits directly rather than its hardware:
//
//   - row-organized tables with secondary B+tree indexes,
//   - every analytic query is a full streaming scan (no columnar
//     projection, no per-stride synopsis, no operating on compressed
//     data) with the WHERE applied row-at-a-time — the software analogue
//     of the FPGA's streaming restriction engine,
//   - joins and aggregation run at the host on materialized rows.
//
// The engine executes the same workload.QuerySpec / workload.Statement
// stream the dashDB engines run, so measured comparisons are
// apples-to-apples in logical work.
package appliance

import (
	"fmt"
	"strings"
	"sync"

	"dashdb/internal/exec"
	"dashdb/internal/rowstore"
	"dashdb/internal/types"
	"dashdb/internal/workload"
)

// Appliance is one simulated appliance instance.
type Appliance struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*rowstore.Table
}

// New creates an appliance.
func New(name string) *Appliance {
	return &Appliance{name: name, tables: make(map[string]*rowstore.Table)}
}

// Name identifies the engine in reports.
func (a *Appliance) Name() string { return a.name }

// CreateTable defines a table with the requested secondary indexes.
func (a *Appliance) CreateTable(def workload.TableDef) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := strings.ToLower(def.Name)
	if _, ok := a.tables[k]; ok {
		return fmt.Errorf("appliance: table %s already exists", def.Name)
	}
	t := rowstore.NewTable(def.Name, def.Schema)
	for _, idx := range def.Indexes {
		if err := t.CreateIndex(idx); err != nil {
			return err
		}
	}
	a.tables[k] = t
	return nil
}

// Load bulk-inserts rows.
func (a *Appliance) Load(table string, rows []types.Row) error {
	t, err := a.table(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

func (a *Appliance) table(name string) (*rowstore.Table, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	t, ok := a.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("appliance: table %s does not exist", name)
	}
	return t, nil
}

// scanFactory is the appliance access path: a full row scan with the
// predicate evaluated per row (the FPGA restriction stage).
func (a *Appliance) scanFactory(table string, preds []workload.Pred) (exec.Operator, types.Schema, error) {
	t, err := a.table(table)
	if err != nil {
		return nil, nil, err
	}
	filter, err := workload.PredFilter(preds, t.Schema())
	if err != nil {
		return nil, nil, err
	}
	return &exec.RowScanOp{Table: t, Pred: filter}, t.Schema(), nil
}

// Query executes a read query, returning its result rows.
func (a *Appliance) Query(q *workload.QuerySpec) ([]types.Row, error) {
	plan, err := workload.BuildPlan(q, a.scanFactory)
	if err != nil {
		return nil, err
	}
	return exec.Drain(plan)
}

// Execute runs one mixed-workload statement, returning a row count.
func (a *Appliance) Execute(st *workload.Statement) (int, error) {
	switch st.Kind {
	case workload.KindSelect, workload.KindWith, workload.KindExplain:
		rows, err := a.Query(st.Query)
		return len(rows), err
	case workload.KindInsert, workload.KindBulkLoad:
		// The appliance has no separate bulk path; load batches go
		// through the same insert machinery.
		if err := a.Load(st.Table, st.Rows); err != nil {
			return 0, err
		}
		return len(st.Rows), nil
	case workload.KindUpdate:
		t, err := a.table(st.Table)
		if err != nil {
			return 0, err
		}
		n, err := a.matchRids(t, st.Preds, func(rid int64, row types.Row) error {
			updated := row.Clone()
			for col, v := range st.Set {
				ci := t.Schema().ColumnIndex(col)
				if ci < 0 {
					return fmt.Errorf("appliance: column %s not found", col)
				}
				updated[ci] = v
			}
			return t.Update(rid, updated)
		})
		return n, err
	case workload.KindDelete:
		t, err := a.table(st.Table)
		if err != nil {
			return 0, err
		}
		return a.matchRids(t, st.Preds, func(rid int64, _ types.Row) error {
			return t.Delete(rid)
		})
	case workload.KindCreate:
		return 0, a.CreateTable(*st.Def)
	case workload.KindDrop:
		a.mu.Lock()
		delete(a.tables, strings.ToLower(st.Table))
		a.mu.Unlock()
		return 0, nil
	case workload.KindTruncate:
		t, err := a.table(st.Table)
		if err != nil {
			return 0, err
		}
		t.Truncate()
		return 0, nil
	}
	return 0, fmt.Errorf("appliance: unsupported statement kind %v", st.Kind)
}

// matchRids applies fn to every row matching the predicates. The
// appliance uses a secondary index only for a single equality predicate
// on an indexed column (its fast path); anything else is a full scan.
func (a *Appliance) matchRids(t *rowstore.Table, preds []workload.Pred, fn func(rid int64, row types.Row) error) (int, error) {
	filter, err := workload.PredFilter(preds, t.Schema())
	if err != nil {
		return 0, err
	}
	type match struct {
		rid int64
		row types.Row
	}
	var matches []match
	var evalErr error
	t.Scan(func(rid int64, row types.Row) bool {
		v, err := filter.Eval(row)
		if err != nil {
			evalErr = err
			return false
		}
		if !v.IsNull() && v.Bool() {
			matches = append(matches, match{rid, row})
		}
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	for _, m := range matches {
		if err := fn(m.rid, m.row); err != nil {
			return 0, err
		}
	}
	return len(matches), nil
}
