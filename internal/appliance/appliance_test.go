package appliance

import (
	"testing"

	"dashdb/internal/encoding"
	"dashdb/internal/types"
	"dashdb/internal/workload"
)

func loadedAppliance(t *testing.T) *Appliance {
	t.Helper()
	a := New("test-appliance")
	fin := workload.NewFinancial(5000, 1)
	for _, def := range fin.Tables() {
		if err := a.CreateTable(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Load("accounts", fin.Accounts()); err != nil {
		t.Fatal(err)
	}
	if err := a.Load("transactions", fin.Transactions()); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestQueryShapes(t *testing.T) {
	a := loadedAppliance(t)
	// Filtered aggregate.
	rows, err := a.Query(&workload.QuerySpec{
		Table: "transactions",
		Preds: []workload.Pred{{Col: "status", Op: encoding.OpEQ, Val: types.NewString("SETTLED")}},
		Aggs:  []workload.Agg{{Func: "COUNT"}, {Func: "SUM", Col: "amount"}},
	})
	if err != nil || len(rows) != 1 || rows[0][0].Int() == 0 {
		t.Fatalf("%v err %v", rows, err)
	}
	// Join + group.
	rows, err = a.Query(&workload.QuerySpec{
		Table:   "transactions",
		Joins:   []workload.Join{{Table: "accounts", LeftCol: "account_id", RightCol: "account_id"}},
		GroupBy: []string{"sector"},
		Aggs:    []workload.Agg{{Func: "COUNT"}},
		OrderBy: []string{"sector"},
	})
	if err != nil || len(rows) != 8 {
		t.Fatalf("join groups %d err %v", len(rows), err)
	}
	// Plain projection with limit.
	rows, err = a.Query(&workload.QuerySpec{
		Table:  "transactions",
		Select: []string{"txn_id"},
		Preds:  []workload.Pred{{Col: "txn_id", Op: encoding.OpLT, Val: types.NewInt(100)}},
		Limit:  5,
	})
	if err != nil || len(rows) != 5 {
		t.Fatalf("limit %d err %v", len(rows), err)
	}
}

func TestStatements(t *testing.T) {
	a := loadedAppliance(t)
	// INSERT.
	n, err := a.Execute(&workload.Statement{
		Kind:  workload.KindInsert,
		Table: "transactions",
		Rows: []types.Row{{
			types.NewInt(999_999), types.NewInt(1), types.NewDate(0),
			types.NewFloat(1), types.NewString("BUY"), types.NewString("PENDING"),
		}},
	})
	if err != nil || n != 1 {
		t.Fatalf("insert %d %v", n, err)
	}
	// UPDATE it.
	n, err = a.Execute(&workload.Statement{
		Kind:  workload.KindUpdate,
		Table: "transactions",
		Preds: []workload.Pred{{Col: "txn_id", Op: encoding.OpEQ, Val: types.NewInt(999_999)}},
		Set:   map[string]types.Value{"status": types.NewString("SETTLED")},
	})
	if err != nil || n != 1 {
		t.Fatalf("update %d %v", n, err)
	}
	// DELETE it.
	n, err = a.Execute(&workload.Statement{
		Kind:  workload.KindDelete,
		Table: "transactions",
		Preds: []workload.Pred{{Col: "txn_id", Op: encoding.OpEQ, Val: types.NewInt(999_999)}},
	})
	if err != nil || n != 1 {
		t.Fatalf("delete %d %v", n, err)
	}
	// CREATE / TRUNCATE / DROP scratch.
	def := &workload.TableDef{Name: "scratch", Schema: types.Schema{{Name: "k", Kind: types.KindInt}}}
	if _, err := a.Execute(&workload.Statement{Kind: workload.KindCreate, Def: def}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(&workload.Statement{Kind: workload.KindTruncate, Table: "scratch"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(&workload.Statement{Kind: workload.KindDrop, Table: "scratch"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(&workload.Statement{Kind: workload.KindTruncate, Table: "scratch"}); err == nil {
		t.Fatal("truncate after drop must fail")
	}
}

func TestErrors(t *testing.T) {
	a := New("x")
	if _, err := a.Query(&workload.QuerySpec{Table: "ghost"}); err == nil {
		t.Fatal("missing table must fail")
	}
	def := workload.TableDef{Name: "t", Schema: types.Schema{{Name: "k", Kind: types.KindInt}}}
	if err := a.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateTable(def); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, err := a.Query(&workload.QuerySpec{Table: "t", Aggs: []workload.Agg{{Func: "BOGUS", Col: "k"}}}); err == nil {
		t.Fatal("unknown aggregate must fail")
	}
	if _, err := a.Query(&workload.QuerySpec{Table: "t", Preds: []workload.Pred{{Col: "ghost"}}}); err == nil {
		t.Fatal("unknown predicate column must fail")
	}
}
