package sql

import (
	"fmt"
	"strings"

	"dashdb/internal/catalog"
	"dashdb/internal/columnar"
	"dashdb/internal/encoding"
	"dashdb/internal/exec"
	"dashdb/internal/mem"
	"dashdb/internal/plan"
	"dashdb/internal/types"
)

// Compiler binds ASTs to a catalog and produces executor plans. One
// Compiler serves one session (it carries the session dialect and clock).
type Compiler struct {
	Cat     *catalog.Catalog
	Dialect Dialect
	Env     *EvalEnv

	ctes      map[string]*cteData
	viewDepth int
	usage     *colUsage
	// UDX resolves user-defined functions before the built-in library.
	UDX *FuncRegistry
	// Params binds positional ? markers for this execution.
	Params []types.Value
	// Parallelism is the session's effective intra-query parallelism
	// degree (auto-configured, WLM-clamped, per-session overridable).
	// Degrees above 1 let the compiler fuse scan+aggregate plans into the
	// morsel-driven ParallelGroupByOp; 0/1 keeps every plan serial.
	Parallelism int
	// Gov is the session's memory governor: blocking operators acquire
	// heap reservations through it and spill when denied. Nil keeps the
	// legacy unbounded in-memory paths.
	Gov *mem.Governor
	// NoCompressedExec disables operate-on-compressed-data execution:
	// scans decode every dictionary column up front and predicates, join
	// keys, and group keys all run over values. Used for parity testing
	// and as an escape hatch.
	NoCompressedExec bool
	// DisableJoinReorder lowers FROM clauses in syntactic order with the
	// historical fixed build side instead of running the planner's
	// greedy join-ordering and build-side-selection passes. Settable per
	// session via SET JOIN_ORDER SYNTACTIC, and used by the
	// join-order-invariance suite as the ablation baseline.
	DisableJoinReorder bool
	// Snaps is the statement's snapshot set: every columnar scan the
	// compiler builds is pinned to one epoch per table through it, so a
	// statement's operators and planner statistics all read one
	// consistent view regardless of concurrent ingest. The session layer
	// owns the set and releases it when the statement finishes. Nil
	// leaves scans unpinned (each pins its own epoch at Open).
	Snaps *columnar.SnapshotSet
}

// planOptions translates compiler knobs into lowering options.
func (c *Compiler) planOptions() plan.Options {
	return plan.Options{Greedy: !c.DisableJoinReorder, Gov: c.Gov}
}

type cteData struct {
	schema types.Schema
	rows   []types.Row
}

// NewCompiler creates a compiler for the given catalog and dialect.
func NewCompiler(cat *catalog.Catalog, d Dialect, env *EvalEnv) *Compiler {
	return &Compiler{Cat: cat, Dialect: d, Env: env, ctes: make(map[string]*cteData)}
}

// scopeCol is one resolvable column: its source alias and name.
type scopeCol struct {
	table string // alias, lowercased
	name  string // column name, lowercased
	kind  types.Kind
}

// scope maps qualified names to ordinals in the current row layout.
type scope struct {
	cols []scopeCol
}

func (s *scope) add(table, name string, kind types.Kind) {
	s.cols = append(s.cols, scopeCol{table: strings.ToLower(table), name: strings.ToLower(name), kind: kind})
}

// resolve finds the ordinal of table.column ("" table = unqualified).
func (s *scope) resolve(table, column string) (int, error) {
	t, c := strings.ToLower(table), strings.ToLower(column)
	found := -1
	for i, col := range s.cols {
		if col.name != c {
			continue
		}
		if t != "" && col.table != t {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: column reference %q is ambiguous", column)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sql: column %s.%s not found", table, column)
		}
		return 0, fmt.Errorf("sql: column %s not found", column)
	}
	return found, nil
}

// schema converts the scope to an output schema with unqualified names.
func (s *scope) schema() types.Schema {
	out := make(types.Schema, len(s.cols))
	for i, c := range s.cols {
		out[i] = types.Column{Name: c.name, Kind: c.kind, Nullable: true}
	}
	return out
}

// merge concatenates two scopes (join output).
func (s *scope) merge(other *scope) *scope {
	m := &scope{}
	m.cols = append(append([]scopeCol{}, s.cols...), other.cols...)
	return m
}

// compiled is an operator plus its name scope.
type compiled struct {
	op    exec.Operator
	scope *scope
}

// planned is a logical-plan node plus its name scope. The FROM clause
// and the upper query pipeline compile into plan nodes; one plan.Lower
// call per SELECT block turns the tree into physical operators.
type planned struct {
	node  plan.Node
	scope *scope
}

// CompileSelect compiles a query to an operator tree and rewrites it for
// vectorized execution: eligible scan/filter/project/limit segments run
// on the columnar vector engine, everything else keeps the row contract
// behind a RowAdapter (see exec.Vectorize).
func (c *Compiler) CompileSelect(sel *SelectStmt) (exec.Operator, error) {
	cpl, err := c.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	return exec.VectorizeMode(cpl.op, !c.NoCompressedExec), nil
}

func (c *Compiler) compileSelect(sel *SelectStmt) (*compiled, error) {
	// Materialize CTEs first; they shadow catalog tables for this query.
	saved := make(map[string]*cteData)
	for _, cte := range sel.With {
		k := strings.ToLower(cte.Name)
		saved[k] = c.ctes[k]
		sub, err := c.compileSelect(cte.Sub)
		if err != nil {
			return nil, fmt.Errorf("sql: CTE %s: %w", cte.Name, err)
		}
		rows, err := exec.Drain(sub.op)
		if err != nil {
			return nil, fmt.Errorf("sql: CTE %s: %w", cte.Name, err)
		}
		c.ctes[k] = &cteData{schema: sub.op.Schema(), rows: rows}
	}
	defer func() {
		for _, cte := range sel.With {
			k := strings.ToLower(cte.Name)
			if saved[k] == nil {
				delete(c.ctes, k)
			} else {
				c.ctes[k] = saved[k]
			}
		}
	}()

	cpl, err := c.compileSelectCore(sel)
	if err != nil {
		return nil, err
	}
	// Set operations.
	if sel.Union != nil {
		right, err := c.compileSelect(sel.Union)
		if err != nil {
			return nil, err
		}
		if len(right.op.Schema()) != len(cpl.op.Schema()) {
			return nil, fmt.Errorf("sql: UNION operands have different arity")
		}
		var op exec.Operator = &exec.UnionAllOp{Children: []exec.Operator{cpl.op, right.op}}
		if !sel.UnionAll {
			op = &exec.DistinctOp{Child: op}
		}
		return &compiled{op: op, scope: cpl.scope}, nil
	}
	return cpl, nil
}

// compileSelectCore compiles one SELECT block (no set ops).
func (c *Compiler) compileSelectCore(sel *SelectStmt) (*compiled, error) {
	// Projection pruning: record every column the statement touches so
	// base-table scans fetch only the columns of active interest
	// (§II.B.3). Nested SELECTs recompute their own usage.
	savedUsage := c.usage
	usage := newColUsage()
	collectUsage(sel, usage)
	c.usage = usage
	defer func() { c.usage = savedUsage }()

	// --- FROM ---
	// The FROM clause compiles to a logical plan.Node tree; physical
	// join operators are produced by plan.Lower below, after the
	// planner's join-ordering and build-side passes.
	var cur *planned
	var err error
	if len(sel.From) == 0 {
		// SELECT without FROM: a single empty row (like DUAL).
		cur = &planned{
			node:  &plan.Input{Op: exec.NewValues(types.Schema{}, []types.Row{{}})},
			scope: &scope{},
		}
	}

	// Split WHERE into conjuncts for pushdown and join detection.
	conjuncts := splitConjuncts(sel.Where)
	// Oracle ROWNUM <= n in WHERE becomes a limit.
	rownumLimit := int64(-1)
	conjuncts, rownumLimit = extractRownumLimit(conjuncts)

	for i, fi := range sel.From {
		item, err2 := c.compileFromItem(fi, &conjuncts)
		if err2 != nil {
			return nil, err2
		}
		if i == 0 && cur == nil {
			cur = item
			continue
		}
		cur, err = c.combineComma(cur, item, &conjuncts)
		if err != nil {
			return nil, err
		}
	}

	// Residual WHERE.
	if len(conjuncts) > 0 {
		pred, err := c.compileConjuncts(conjuncts, cur.scope)
		if err != nil {
			return nil, err
		}
		cur = &planned{node: &plan.Filter{Child: cur.node, Pred: pred}, scope: cur.scope}
	}
	if rownumLimit >= 0 {
		cur = &planned{node: &plan.Limit{Child: cur.node, Limit: rownumLimit}, scope: cur.scope}
	}

	// Expand stars in the select list.
	items, err := c.expandStars(sel.Items, cur.scope)
	if err != nil {
		return nil, err
	}

	// --- aggregation ---
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	var outNode plan.Node
	var outSchema types.Schema
	hiddenSort := 0 // extra projected sort-key columns, dropped after Sort
	var sortKeys []exec.SortKey
	if hasAgg {
		// Aggregation still assembles its fused scan/group pipelines over
		// physical operators, so lower the FROM tree first and hand the
		// aggregate compiler a physical input.
		fromCpl := &compiled{op: plan.Lower(cur.node, c.planOptions()), scope: cur.scope}
		var outOp exec.Operator
		outOp, outSchema, sortKeys, err = c.compileAggregateWithOrder(sel, items, fromCpl)
		if err != nil {
			return nil, err
		}
		outNode = &plan.Input{Op: outOp}
	} else {
		exprs := make([]exec.Expr, len(items))
		outSchema = make(types.Schema, len(items))
		for i, it := range items {
			e, err := c.compileExpr(it.Expr, cur.scope)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			outSchema[i] = types.Column{Name: c.itemName(it, i), Kind: types.KindNull, Nullable: true}
		}
		// ORDER BY resolution: output ordinal → output alias/name →
		// input column (projected as a hidden sort key).
		outScope := &scope{}
		for _, col := range outSchema {
			outScope.add("", col.Name, col.Kind)
		}
		for _, oi := range sel.OrderBy {
			var e exec.Expr
			switch {
			case oi.Ordinal > 0:
				if oi.Ordinal > len(items) {
					return nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", oi.Ordinal)
				}
				e = exec.ColRef(oi.Ordinal - 1)
			default:
				// Try the output schema first (qualifier stripped: the
				// projection renames columns unqualified).
				probe := oi.Expr
				if ref, ok := probe.(*ColumnRef); ok && ref.Table != "" {
					if _, err := outScope.resolve("", ref.Column); err == nil {
						probe = &ColumnRef{Column: ref.Column}
					}
				}
				var cerr error
				e, cerr = c.compileExpr(probe, outScope)
				if cerr != nil {
					// Fall back to the input scope with a hidden column.
					ie, ierr := c.compileExpr(oi.Expr, cur.scope)
					if ierr != nil {
						return nil, cerr
					}
					exprs = append(exprs, ie)
					name := fmt.Sprintf("__sort%d", hiddenSort)
					outSchema = append(outSchema, types.Column{Name: name, Kind: types.KindNull, Nullable: true})
					e = exec.ColRef(len(exprs) - 1)
					hiddenSort++
				}
			}
			sortKeys = append(sortKeys, exec.SortKey{Expr: e, Desc: oi.Desc})
		}
		outNode = &plan.Project{Child: cur.node, Exprs: exprs, Out: outSchema}
	}

	if sel.Distinct {
		if hiddenSort > 0 {
			return nil, fmt.Errorf("sql: ORDER BY over non-selected columns cannot combine with DISTINCT")
		}
		outNode = &plan.Distinct{Child: outNode}
	}

	if len(sortKeys) > 0 {
		outNode = &plan.Sort{Child: outNode, Keys: sortKeys}
	}
	if hiddenSort > 0 {
		visible := len(outSchema) - hiddenSort
		exprs := make([]exec.Expr, visible)
		for i := range exprs {
			exprs[i] = exec.ColRef(i)
		}
		outSchema = outSchema[:visible]
		outNode = &plan.Project{Child: outNode, Exprs: exprs, Out: outSchema}
	}

	if sel.Limit >= 0 || sel.Offset > 0 {
		limit := sel.Limit
		if limit < 0 {
			limit = -1
		}
		outNode = &plan.Limit{Child: outNode, Offset: sel.Offset, Limit: limit}
	}

	outScope := &scope{}
	for _, col := range outSchema {
		outScope.add("", col.Name, col.Kind)
	}
	return &compiled{op: plan.Lower(outNode, c.planOptions()), scope: outScope}, nil
}

// itemName derives an output column name.
func (c *Compiler) itemName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*ColumnRef); ok {
		return ref.Column
	}
	if fc, ok := it.Expr.(*FuncCall); ok {
		return fc.Name
	}
	return fmt.Sprintf("COL%d", i+1)
}

// expandStars replaces * and t.* with explicit column references.
func (c *Compiler) expandStars(items []SelectItem, sc *scope) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		star, ok := it.Expr.(*Star)
		if !ok {
			out = append(out, it)
			continue
		}
		matched := false
		for _, col := range sc.cols {
			if star.Table != "" && col.table != strings.ToLower(star.Table) {
				continue
			}
			out = append(out, SelectItem{Expr: &ColumnRef{Table: col.table, Column: col.name}})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("sql: %s.* matches no columns", star.Table)
		}
	}
	return out, nil
}

// --- FROM compilation -------------------------------------------------------

// compileFromItem builds one FROM entry as a logical-plan leaf or join
// subtree, pushing pushable conjuncts into base-table scans.
func (c *Compiler) compileFromItem(fi FromItem, conjuncts *[]Expr) (*planned, error) {
	switch f := fi.(type) {
	case *TableRef:
		cpl, err := c.compileTableRef(f, conjuncts)
		if err != nil {
			return nil, err
		}
		name := f.Alias
		if name == "" {
			name = f.Name
		}
		return &planned{node: &plan.Input{Op: cpl.op, Name: name}, scope: cpl.scope}, nil
	case *SubqueryRef:
		sub, err := c.compileSelect(f.Sub)
		if err != nil {
			return nil, err
		}
		alias := f.Alias
		sc := &scope{}
		for _, col := range sub.op.Schema() {
			sc.add(alias, col.Name, col.Kind)
		}
		return &planned{node: &plan.Input{Op: sub.op, Name: alias}, scope: sc}, nil
	case *JoinRef:
		return c.compileJoin(f, conjuncts)
	}
	return nil, fmt.Errorf("sql: unsupported FROM item %T", fi)
}

func (c *Compiler) compileTableRef(f *TableRef, conjuncts *[]Expr) (*compiled, error) {
	alias := f.Alias
	if alias == "" {
		alias = f.Name
	}
	lname := strings.ToLower(f.Name)

	// DUAL (Oracle).
	if lname == "dual" {
		sc := &scope{}
		sc.add(alias, "dummy", types.KindString)
		return &compiled{
			op:    exec.NewValues(types.Schema{{Name: "DUMMY", Kind: types.KindString}}, []types.Row{{types.NewString("X")}}),
			scope: sc,
		}, nil
	}
	// CTE reference.
	if cte, ok := c.ctes[lname]; ok {
		sc := &scope{}
		for _, col := range cte.schema {
			sc.add(alias, col.Name, col.Kind)
		}
		return &compiled{op: exec.NewValues(cte.schema, cte.rows), scope: sc}, nil
	}
	// Base table: push applicable conjuncts into the compressed scan and
	// prune the projection to the referenced columns.
	if tbl, ok := c.Cat.Table(f.Name); ok {
		schema := tbl.Schema()
		preds := c.extractScanPreds(conjuncts, alias, schema)
		var projection []int
		if c.usage != nil && !c.usage.wantsAll(alias) {
			for i, col := range schema {
				if c.usage.uses(alias, col.Name) {
					projection = append(projection, i)
				}
			}
			if len(projection) == 0 {
				projection = []int{0} // row-count-only queries still need a lane
			}
			if len(projection) == len(schema) {
				projection = nil
			}
		}
		sc := &scope{}
		if projection == nil {
			for _, col := range schema {
				sc.add(alias, col.Name, col.Kind)
			}
		} else {
			for _, ci := range projection {
				sc.add(alias, schema[ci].Name, schema[ci].Kind)
			}
		}
		scanOp := exec.NewScan(tbl, preds, projection)
		if c.Snaps != nil {
			scanOp.Snap = c.Snaps.Get(tbl)
		}
		return &compiled{op: scanOp, scope: sc}, nil
	}
	// View: compile its stored query under its creation dialect.
	if view, ok := c.Cat.View(f.Name); ok {
		if c.viewDepth > 16 {
			return nil, fmt.Errorf("sql: view nesting too deep at %s", f.Name)
		}
		vd, err := ParseDialect(view.Dialect)
		if err != nil {
			vd = DialectANSI
		}
		sub, err := Parse(view.SQL, vd)
		if err != nil {
			return nil, fmt.Errorf("sql: view %s: %w", f.Name, err)
		}
		selStmt, ok := sub.(*SelectStmt)
		if !ok {
			return nil, fmt.Errorf("sql: view %s does not contain a query", f.Name)
		}
		vc := NewCompiler(c.Cat, vd, c.Env)
		vc.viewDepth = c.viewDepth + 1
		cpl, err := vc.compileSelect(selStmt)
		if err != nil {
			return nil, fmt.Errorf("sql: view %s: %w", f.Name, err)
		}
		sc := &scope{}
		for _, col := range cpl.op.Schema() {
			sc.add(alias, col.Name, col.Kind)
		}
		return &compiled{op: cpl.op, scope: sc}, nil
	}
	// Nickname (remote table via Fluid Query).
	if nick, ok := c.Cat.Nickname(f.Name); ok {
		rows, err := nick.Source.ScanAll()
		if err != nil {
			return nil, fmt.Errorf("sql: nickname %s: %w", f.Name, err)
		}
		sch := nick.Source.Schema()
		sc := &scope{}
		for _, col := range sch {
			sc.add(alias, col.Name, col.Kind)
		}
		return &compiled{op: exec.NewValues(sch, rows), scope: sc}, nil
	}
	return nil, fmt.Errorf("sql: table or view %s does not exist", f.Name)
}

// extractScanPreds removes conjuncts of the form <alias.col OP literal>
// from the list and converts them into columnar scan predicates.
func (c *Compiler) extractScanPreds(conjuncts *[]Expr, alias string, sch types.Schema) []columnar.Pred {
	var preds []columnar.Pred
	var rest []Expr
	for _, cj := range *conjuncts {
		if p, ok := c.asScanPred(cj, alias, sch); ok {
			preds = append(preds, p...)
			continue
		}
		rest = append(rest, cj)
	}
	*conjuncts = rest
	return preds
}

// asScanPred recognizes pushable predicates: col OP literal, literal OP
// col, and col BETWEEN l1 AND l2, where col belongs to the given alias.
func (c *Compiler) asScanPred(e Expr, alias string, sch types.Schema) ([]columnar.Pred, bool) {
	la := strings.ToLower(alias)
	colOf := func(x Expr) (int, bool) {
		ref, ok := x.(*ColumnRef)
		if !ok || ref.OuterJoin {
			return 0, false
		}
		if ref.Table != "" && strings.ToLower(ref.Table) != la {
			return 0, false
		}
		ci := sch.ColumnIndex(ref.Column)
		return ci, ci >= 0
	}
	litOf := func(x Expr) (types.Value, bool) {
		l, ok := x.(*Literal)
		if !ok {
			return types.Null, false
		}
		return l.Val, true
	}
	switch ex := e.(type) {
	case *BinaryOp:
		op, ok := cmpOpFor(ex.Op)
		if !ok {
			return nil, false
		}
		if ci, ok := colOf(ex.Left); ok {
			if v, ok := litOf(ex.Right); ok {
				return []columnar.Pred{{Col: ci, Op: op, Val: v}}, true
			}
		}
		if ci, ok := colOf(ex.Right); ok {
			if v, ok := litOf(ex.Left); ok {
				return []columnar.Pred{{Col: ci, Op: flipCmp(op), Val: v}}, true
			}
		}
	case *BetweenExpr:
		if ex.Not {
			return nil, false
		}
		ci, ok := colOf(ex.Expr)
		if !ok {
			return nil, false
		}
		lo, ok1 := litOf(ex.Lo)
		hi, ok2 := litOf(ex.Hi)
		if ok1 && ok2 {
			return []columnar.Pred{
				{Col: ci, Op: encoding.OpGE, Val: lo},
				{Col: ci, Op: encoding.OpLE, Val: hi},
			}, true
		}
	}
	return nil, false
}

func cmpOpFor(op string) (encoding.CmpOp, bool) {
	switch op {
	case "=":
		return encoding.OpEQ, true
	case "<>":
		return encoding.OpNE, true
	case "<":
		return encoding.OpLT, true
	case "<=":
		return encoding.OpLE, true
	case ">":
		return encoding.OpGT, true
	case ">=":
		return encoding.OpGE, true
	}
	return 0, false
}

func flipCmp(op encoding.CmpOp) encoding.CmpOp {
	switch op {
	case encoding.OpLT:
		return encoding.OpGT
	case encoding.OpLE:
		return encoding.OpGE
	case encoding.OpGT:
		return encoding.OpLT
	case encoding.OpGE:
		return encoding.OpLE
	default:
		return op
	}
}

// compileJoin handles explicit JOIN ... ON / USING, producing a logical
// plan.Join. Join orientation stays syntactic here: lowering maps RIGHT
// joins onto the executor's left-preserving operators and the planner
// picks build sides and join order.
func (c *Compiler) compileJoin(j *JoinRef, conjuncts *[]Expr) (*planned, error) {
	left, err := c.compileFromItem(j.Left, conjuncts)
	if err != nil {
		return nil, err
	}
	right, err := c.compileFromItem(j.Right, conjuncts)
	if err != nil {
		return nil, err
	}
	merged := left.scope.merge(right.scope)

	if j.Type == "CROSS" {
		return &planned{
			node:  &plan.Join{Left: left.node, Right: right.node, Kind: plan.CrossJoin},
			scope: merged,
		}, nil
	}

	// USING(cols) → equi-keys by shared column name.
	var on Expr = j.On
	if len(j.Using) > 0 {
		for _, col := range j.Using {
			eq := &BinaryOp{Op: "=",
				Left:  &ColumnRef{Table: tableOfScope(left.scope, col), Column: col},
				Right: &ColumnRef{Table: tableOfScope(right.scope, col), Column: col},
			}
			if on == nil {
				on = eq
			} else {
				on = &BinaryOp{Op: "AND", Left: on, Right: eq}
			}
		}
	}

	kind := plan.InnerJoin
	switch j.Type {
	case "LEFT":
		kind = plan.LeftOuterJoin
	case "RIGHT":
		kind = plan.RightOuterJoin
	}

	lk, rk, residual, err := c.extractEquiKeys(splitConjuncts(on), left.scope, right.scope)
	if err != nil {
		return nil, err
	}

	jn := &plan.Join{Left: left.node, Right: right.node, Kind: kind, LeftKeys: lk, RightKeys: rk}
	if len(lk) > 0 {
		if len(residual) > 0 {
			if kind != plan.InnerJoin {
				return nil, fmt.Errorf("sql: non-equi residual on outer join is not supported")
			}
			pred, err := c.compileConjuncts(residual, merged)
			if err != nil {
				return nil, err
			}
			jn.Residual = pred
		}
	} else {
		// No equi keys: the whole ON predicate drives a nested-loop
		// join, bound against the execution layout (preserved side
		// first — see plan.Join).
		sc := merged
		if kind == plan.RightOuterJoin {
			sc = right.scope.merge(left.scope)
		}
		if on != nil {
			pred, perr := c.compileExpr(on, sc)
			if perr != nil {
				return nil, perr
			}
			jn.Residual = pred
		}
		if kind == plan.InnerJoin && jn.Residual == nil {
			jn.Kind = plan.CrossJoin
		}
	}
	return &planned{node: jn, scope: merged}, nil
}

// tableOfScope finds which alias exposes the column (for USING).
func tableOfScope(s *scope, col string) string {
	lc := strings.ToLower(col)
	for _, c := range s.cols {
		if c.name == lc {
			return c.table
		}
	}
	return ""
}

// extractEquiKeys pulls equality conjuncts joining left and right scopes;
// remaining conjuncts are returned as residual. Oracle (+) markers are
// tolerated here (join type was already decided).
func (c *Compiler) extractEquiKeys(conjuncts []Expr, left, right *scope) (lk, rk []int, residual []Expr, err error) {
	for _, cj := range conjuncts {
		bo, ok := cj.(*BinaryOp)
		if !ok || bo.Op != "=" {
			residual = append(residual, cj)
			continue
		}
		lref, lok := bo.Left.(*ColumnRef)
		rref, rok := bo.Right.(*ColumnRef)
		if !lok || !rok {
			residual = append(residual, cj)
			continue
		}
		li, lerr := left.resolve(lref.Table, lref.Column)
		ri, rerr := right.resolve(rref.Table, rref.Column)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// Try swapped sides.
		li2, lerr2 := left.resolve(rref.Table, rref.Column)
		ri2, rerr2 := right.resolve(lref.Table, lref.Column)
		if lerr2 == nil && rerr2 == nil {
			lk = append(lk, li2)
			rk = append(rk, ri2)
			continue
		}
		residual = append(residual, cj)
	}
	return lk, rk, residual, nil
}

// combineComma joins two comma-separated FROM items, using WHERE
// conjuncts as join predicates (including Oracle (+) outer joins).
func (c *Compiler) combineComma(left, right *planned, conjuncts *[]Expr) (*planned, error) {
	// Find join conjuncts connecting the two scopes; detect (+).
	var joinCjs, rest []Expr
	outerRight := false // (+) on right side → LEFT JOIN
	outerLeft := false  // (+) on left side → RIGHT-style
	for _, cj := range *conjuncts {
		bo, ok := cj.(*BinaryOp)
		if !ok || bo.Op != "=" {
			rest = append(rest, cj)
			continue
		}
		lref, lok := bo.Left.(*ColumnRef)
		rref, rok := bo.Right.(*ColumnRef)
		if !lok || !rok {
			rest = append(rest, cj)
			continue
		}
		connects := false
		if _, err := left.scope.resolve(lref.Table, lref.Column); err == nil {
			if _, err := right.scope.resolve(rref.Table, rref.Column); err == nil {
				connects = true
				if rref.OuterJoin {
					outerRight = true
				}
				if lref.OuterJoin {
					outerLeft = true
				}
			}
		}
		if !connects {
			if _, err := left.scope.resolve(rref.Table, rref.Column); err == nil {
				if _, err := right.scope.resolve(lref.Table, lref.Column); err == nil {
					connects = true
					if lref.OuterJoin {
						outerRight = true
					}
					if rref.OuterJoin {
						outerLeft = true
					}
				}
			}
		}
		if connects {
			joinCjs = append(joinCjs, cj)
		} else {
			rest = append(rest, cj)
		}
	}
	*conjuncts = rest

	merged := left.scope.merge(right.scope)
	if len(joinCjs) == 0 {
		// Pure cross join (the planner may still connect the two sides
		// transitively once later comma items bring join conjuncts).
		return &planned{
			node:  &plan.Join{Left: left.node, Right: right.node, Kind: plan.CrossJoin},
			scope: merged,
		}, nil
	}
	lk, rk, residual, err := c.extractEquiKeys(joinCjs, left.scope, right.scope)
	if err != nil {
		return nil, err
	}
	kind := plan.InnerJoin
	if outerRight && !outerLeft {
		// (+) on the right side: preserve the left input.
		kind = plan.LeftOuterJoin
	}
	if outerLeft && !outerRight {
		// (+) on the left side: preserve the right input. Lowering maps
		// this onto a swapped LEFT join and restores column order.
		kind = plan.RightOuterJoin
	}
	jn := &plan.Join{Left: left.node, Right: right.node, Kind: kind, LeftKeys: lk, RightKeys: rk}
	if len(residual) > 0 {
		pred, perr := c.compileConjuncts(residual, merged)
		if perr != nil {
			return nil, perr
		}
		jn.Residual = pred
	}
	return &planned{node: jn, scope: merged}, nil
}

// --- helpers ----------------------------------------------------------------

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if bo, ok := e.(*BinaryOp); ok && bo.Op == "AND" {
		return append(splitConjuncts(bo.Left), splitConjuncts(bo.Right)...)
	}
	return []Expr{e}
}

// extractRownumLimit strips "ROWNUM <= n" / "ROWNUM < n" conjuncts.
func extractRownumLimit(conjuncts []Expr) ([]Expr, int64) {
	limit := int64(-1)
	var rest []Expr
	for _, cj := range conjuncts {
		bo, ok := cj.(*BinaryOp)
		if ok {
			if _, isRownum := bo.Left.(*RownumExpr); isRownum {
				if lit, ok := bo.Right.(*Literal); ok {
					if n, isInt := lit.Val.AsInt(); isInt {
						switch bo.Op {
						case "<=":
							limit = n
							continue
						case "<":
							limit = n - 1
							continue
						case "=":
							if n == 1 {
								limit = 1
								continue
							}
						}
					}
				}
			}
		}
		rest = append(rest, cj)
	}
	return rest, limit
}

// compileConjuncts ANDs compiled conjuncts into a single predicate as a
// chain of structured AndExprs (short-circuiting, and vectorizable when
// every conjunct is).
func (c *Compiler) compileConjuncts(conjuncts []Expr, sc *scope) (exec.Expr, error) {
	var pred exec.Expr
	for _, cj := range conjuncts {
		e, err := c.compileExpr(cj, sc)
		if err != nil {
			return nil, err
		}
		if pred == nil {
			pred = e
		} else {
			pred = &exec.AndExpr{L: pred, R: e}
		}
	}
	if pred == nil {
		pred = exec.Const{V: types.NewBool(true)}
	}
	return pred, nil
}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e Expr) bool {
	switch ex := e.(type) {
	case *FuncCall:
		if _, ok := aggFuncFor(ex.Name); ok {
			return true
		}
		for _, a := range ex.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryOp:
		return containsAggregate(ex.Left) || containsAggregate(ex.Right)
	case *UnaryOp:
		return containsAggregate(ex.Expr)
	case *CaseExpr:
		if ex.Operand != nil && containsAggregate(ex.Operand) {
			return true
		}
		for _, w := range ex.Whens {
			if containsAggregate(w.When) || containsAggregate(w.Then) {
				return true
			}
		}
		if ex.Else != nil {
			return containsAggregate(ex.Else)
		}
	case *CastExpr:
		return containsAggregate(ex.Expr)
	}
	return false
}

// aggFuncFor maps SQL aggregate names (across dialects) to executor
// aggregate kinds.
func aggFuncFor(name string) (exec.AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return exec.AggCount, true
	case "SUM":
		return exec.AggSum, true
	case "AVG", "MEAN":
		return exec.AggAvg, true
	case "MIN":
		return exec.AggMin, true
	case "MAX":
		return exec.AggMax, true
	case "STDDEV", "STDDEV_POP":
		return exec.AggStddevPop, true
	case "STDDEV_SAMP":
		return exec.AggStddevSamp, true
	case "VARIANCE", "VAR_POP":
		return exec.AggVarPop, true
	case "VAR_SAMP", "VARIANCE_SAMP":
		return exec.AggVarSamp, true
	case "MEDIAN":
		return exec.AggMedian, true
	case "PERCENTILE_CONT":
		return exec.AggPercentileCont, true
	case "PERCENTILE_DISC":
		return exec.AggPercentileDisc, true
	case "COVAR_POP", "COVARIANCE":
		return exec.AggCovarPop, true
	case "COVAR_SAMP", "COVARIANCE_SAMP":
		return exec.AggCovarSamp, true
	}
	return 0, false
}
