package sql

import (
	"fmt"
	"strings"
)

// Dialect selects the SQL language variant a session compiles under
// (paper §II.C.1–2). The parser accepts a superset of all variants;
// dialect-specific constructs are validated against the active dialect,
// and a few semantic incompatibilities (for example Oracle's empty-string-
// is-NULL VARCHAR2 rule) change behaviour rather than syntax.
type Dialect uint8

const (
	// DialectANSI is the standard-conforming core compiler.
	DialectANSI Dialect = iota
	// DialectOracle enables (+) outer joins, ROWNUM, DUAL,
	// seq.NEXTVAL/CURRVAL, DECODE/NVL, VARCHAR2 semantics.
	DialectOracle
	// DialectNetezza enables LIMIT/OFFSET, ::casts, ISNULL/NOTNULL,
	// ISTRUE/ISFALSE, JOIN USING, GROUP BY output name, ORDER BY ordinal.
	// It also covers the PostgreSQL surface.
	DialectNetezza
	// DialectDB2 enables VALUES statements, NEXT VALUE FOR, DECFLOAT
	// functions and DECLARE GLOBAL TEMPORARY TABLE.
	DialectDB2
)

// String returns the dialect's configuration name.
func (d Dialect) String() string {
	switch d {
	case DialectANSI:
		return "ANSI"
	case DialectOracle:
		return "ORACLE"
	case DialectNetezza:
		return "NETEZZA"
	case DialectDB2:
		return "DB2"
	default:
		return fmt.Sprintf("Dialect(%d)", uint8(d))
	}
}

// ParseDialect resolves a dialect name (SET SQL_DIALECT = '<name>').
// "NPS" and "POSTGRESQL" map to the Netezza surface.
func ParseDialect(name string) (Dialect, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "ANSI", "":
		return DialectANSI, nil
	case "ORACLE", "PLSQL":
		return DialectOracle, nil
	case "NETEZZA", "NPS", "POSTGRESQL", "POSTGRES", "PG":
		return DialectNetezza, nil
	case "DB2", "SQLPL":
		return DialectDB2, nil
	default:
		return DialectANSI, fmt.Errorf("sql: unknown dialect %q", name)
	}
}

// EmptyStringIsNull reports the VARCHAR2 semantic: under Oracle
// compatibility, the empty string literal denotes NULL (§II.C.2's example
// of a semantic incompatibility requiring consistent treatment).
func (d Dialect) EmptyStringIsNull() bool { return d == DialectOracle }

// allows reports whether the dialect permits a gated construct; the
// parser consults it for colliding syntaxes.
func (d Dialect) allows(feature string) bool {
	switch feature {
	case "oracle-outer-join", "rownum", "dual", "seq-postfix", "anonymous-block":
		return d == DialectOracle
	case "limit-offset", "cast-colon", "isnull-postfix", "istrue", "group-by-alias":
		return d == DialectNetezza || d == DialectANSI // ANSI core stays permissive for LIMIT
	case "values-statement", "next-value-for", "declare-temp":
		return d == DialectDB2 || d == DialectANSI
	default:
		return true
	}
}
