package sql

import (
	"encoding/gob"
	"sync"
)

// RegisterWire registers every AST node with encoding/gob so parsed
// statements can travel between the MPP coordinator and shard servers
// as-is: the coordinator rewrites the AST (partial-aggregate select
// lists, shuffle-table substitution) and ships the tree instead of
// rendering it back to SQL text. Literal values ride on
// types.Value.GobEncode. Safe to call from multiple packages; the
// registrations happen once.
var RegisterWire = sync.OnceFunc(func() {
	for _, t := range []any{
		// Expressions.
		&Literal{}, &ColumnRef{}, &Star{}, &BinaryOp{}, &UnaryOp{},
		&FuncCall{}, &CaseExpr{}, &CastExpr{}, &IsNullExpr{}, &IsBoolExpr{},
		&BetweenExpr{}, &InExpr{}, &ExistsExpr{}, &SubqueryExpr{},
		&SeqValExpr{}, &RownumExpr{}, &ParamExpr{}, &OverlapsExpr{},
		// FROM items.
		&TableRef{}, &SubqueryRef{}, &JoinRef{},
		// Statements the coordinator scatters or broadcasts.
		&SelectStmt{}, &InsertStmt{}, &UpdateStmt{}, &DeleteStmt{},
		&CreateTableStmt{}, &DropStmt{}, &TruncateStmt{}, &CreateViewStmt{},
		&CreateSequenceStmt{}, &CreateAliasStmt{}, &CreateIndexStmt{},
		&SetStmt{}, &ExplainStmt{}, &ValuesStmt{}, &CallStmt{}, &BeginBlockStmt{},
	} {
		gob.Register(t)
	}
})
