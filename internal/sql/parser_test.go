package sql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dashdb/internal/types"
)

func mustParse(t *testing.T, src string, d Dialect) Statement {
	t.Helper()
	st, err := Parse(src, d)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func mustFail(t *testing.T, src string, d Dialect) {
	t.Helper()
	if _, err := Parse(src, d); err == nil {
		t.Fatalf("parse %q should fail under %v", src, d)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT a, "Mixed Case", 'it''s', 1.5e3, x::int8 -- comment
		/* block */ FROM t WHERE a (+) = 1`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	// Spot checks.
	if texts[0] != "SELECT" || kinds[0] != TokIdent {
		t.Fatalf("first token %v %q", kinds[0], texts[0])
	}
	found := map[string]bool{}
	for i, tx := range texts {
		found[tx] = true
		if tx == "it's" && kinds[i] != TokString {
			t.Error("escaped string mishandled")
		}
		if tx == "Mixed Case" && kinds[i] != TokQuotedIdent {
			t.Error("quoted identifier mishandled")
		}
	}
	for _, want := range []string{"::", "(+)", "1.5e3", "Mixed Case"} {
		if !found[want] {
			t.Errorf("missing token %q in %v", want, texts)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "/* unterminated", "a @ b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	st := mustParse(t, `
		WITH w AS (SELECT a FROM t1)
		SELECT DISTINCT a, b AS bee, COUNT(*)
		FROM t2 x JOIN t3 ON x.id = t3.id LEFT JOIN t4 USING (k)
		WHERE a > 5 AND b IN (1,2,3) OR c IS NOT NULL
		GROUP BY a, bee
		HAVING COUNT(*) > 1
		ORDER BY 1 DESC, bee
		LIMIT 10 OFFSET 5`, DialectNetezza)
	sel := st.(*SelectStmt)
	if len(sel.With) != 1 || sel.With[0].Name != "W" {
		t.Fatalf("with %v", sel.With)
	}
	if !sel.Distinct || len(sel.Items) != 3 || sel.Items[1].Alias != "BEE" {
		t.Fatalf("items %+v", sel.Items)
	}
	if len(sel.From) != 1 {
		t.Fatalf("from %v", sel.From)
	}
	join, ok := sel.From[0].(*JoinRef)
	if !ok || join.Type != "LEFT" || len(join.Using) != 1 {
		t.Fatalf("outer join %+v", sel.From[0])
	}
	inner, ok := join.Left.(*JoinRef)
	if !ok || inner.Type != "INNER" || inner.On == nil {
		t.Fatalf("inner join %+v", join.Left)
	}
	if len(sel.GroupBy) != 2 || sel.Having == nil {
		t.Fatal("group/having lost")
	}
	if len(sel.OrderBy) != 2 || sel.OrderBy[0].Ordinal != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order %v", sel.OrderBy)
	}
	if sel.Limit != 10 || sel.Offset != 5 {
		t.Fatalf("limit %d offset %d", sel.Limit, sel.Offset)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := mustParse(t, `SELECT 1 + 2 * 3 FROM t`, DialectANSI)
	e := st.(*SelectStmt).Items[0].Expr.(*BinaryOp)
	if e.Op != "+" {
		t.Fatalf("top op %s", e.Op)
	}
	if r := e.Right.(*BinaryOp); r.Op != "*" {
		t.Fatalf("mul should bind tighter: %v", r.Op)
	}
	// AND binds tighter than OR.
	st = mustParse(t, `SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`, DialectANSI)
	w := st.(*SelectStmt).Where.(*BinaryOp)
	if w.Op != "OR" {
		t.Fatalf("top logical %s", w.Op)
	}
	// NOT before comparison chains.
	st = mustParse(t, `SELECT * FROM t WHERE NOT a = 1 AND b = 2`, DialectANSI)
	w = st.(*SelectStmt).Where.(*BinaryOp)
	if w.Op != "AND" {
		t.Fatalf("NOT scoping: %v", w.Op)
	}
}

func TestParseCaseCastBetween(t *testing.T) {
	st := mustParse(t, `
		SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END,
		       CASE a WHEN 1 THEN 'one' END,
		       CAST(a AS VARCHAR(10)),
		       a BETWEEN 1 AND 10,
		       a NOT BETWEEN 1 AND 10
		FROM t`, DialectANSI)
	items := st.(*SelectStmt).Items
	if _, ok := items[0].Expr.(*CaseExpr); !ok {
		t.Fatal("searched case")
	}
	if ce := items[1].Expr.(*CaseExpr); ce.Operand == nil {
		t.Fatal("simple case operand")
	}
	if c := items[2].Expr.(*CastExpr); c.Type != "VARCHAR" {
		t.Fatalf("cast type %s", c.Type)
	}
	if b := items[3].Expr.(*BetweenExpr); b.Not {
		t.Fatal("between")
	}
	if b := items[4].Expr.(*BetweenExpr); !b.Not {
		t.Fatal("not between")
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`, DialectANSI).(*InsertStmt)
	if ins.Table != "T" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	ins2 := mustParse(t, `INSERT INTO t SELECT * FROM s`, DialectANSI).(*InsertStmt)
	if ins2.Query == nil {
		t.Fatal("insert-select")
	}
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'z' WHERE a < 10`, DialectANSI).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	del := mustParse(t, `DELETE FROM t WHERE a = 1`, DialectANSI).(*DeleteStmt)
	if del.Table != "T" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE t (a BIGINT NOT NULL PRIMARY KEY, b VARCHAR(10), c DECIMAL(10,2))`, DialectANSI).(*CreateTableStmt)
	if len(ct.Columns) != 3 || !ct.Columns[0].NotNull || ct.Columns[2].Type != "DECIMAL" {
		t.Fatalf("%+v", ct.Columns)
	}
	tmp := mustParse(t, `CREATE TEMP TABLE s (a INT4)`, DialectNetezza).(*CreateTableStmt)
	if !tmp.Temp {
		t.Fatal("temp flag")
	}
	gt := mustParse(t, `CREATE GLOBAL TEMPORARY TABLE g (a INT)`, DialectOracle).(*CreateTableStmt)
	if !gt.Temp {
		t.Fatal("global temp flag")
	}
	ctas := mustParse(t, `CREATE TABLE c AS (SELECT a FROM t)`, DialectANSI).(*CreateTableStmt)
	if ctas.AsQuery == nil {
		t.Fatal("CTAS")
	}
	v := mustParse(t, `CREATE VIEW v AS SELECT a FROM t WHERE a > 0`, DialectANSI).(*CreateViewStmt)
	if v.Name != "V" || v.Sub == nil || v.SQL == "" {
		t.Fatalf("%+v", v)
	}
	seq := mustParse(t, `CREATE SEQUENCE s START WITH 5 INCREMENT BY -2`, DialectANSI).(*CreateSequenceStmt)
	if seq.Start != 5 || seq.Incr != -2 {
		t.Fatalf("%+v", seq)
	}
	dr := mustParse(t, `DROP TABLE IF EXISTS t`, DialectANSI).(*DropStmt)
	if !dr.IfExists || dr.Kind != "TABLE" {
		t.Fatalf("%+v", dr)
	}
	tr := mustParse(t, `TRUNCATE TABLE t`, DialectOracle).(*TruncateStmt)
	if tr.Table != "T" {
		t.Fatalf("%+v", tr)
	}
}

func TestDialectGatedSyntax(t *testing.T) {
	// Oracle-only.
	mustParse(t, `SELECT seq.NEXTVAL FROM DUAL`, DialectOracle)
	mustFail(t, `SELECT 1 FROM DUAL`, DialectNetezza)
	mustParse(t, `SELECT a FROM t WHERE ROWNUM < 5`, DialectOracle)
	mustFail(t, `SELECT ROWNUM FROM t`, DialectDB2)
	mustParse(t, `BEGIN INSERT INTO t VALUES (1); END`, DialectOracle)
	mustFail(t, `BEGIN INSERT INTO t VALUES (1); END`, DialectANSI)
	mustParse(t, `CREATE TABLE o (a VARCHAR2(10), n NUMBER(10,2))`, DialectOracle)
	mustFail(t, `CREATE TABLE o (a VARCHAR2(10))`, DialectANSI)
	// Netezza/PG-only.
	mustParse(t, `SELECT a::INT8 FROM t LIMIT 3`, DialectNetezza)
	mustFail(t, `SELECT a::INT8 FROM t`, DialectOracle)
	mustFail(t, `SELECT a FROM t LIMIT 3`, DialectDB2)
	mustParse(t, `SELECT a FROM t WHERE a ISNULL`, DialectNetezza)
	// DB2-only.
	mustParse(t, `VALUES (1), (2)`, DialectDB2)
	mustFail(t, `VALUES (1)`, DialectOracle)
	mustParse(t, `SELECT NEXT VALUE FOR s FROM t`, DialectDB2)
	mustFail(t, `SELECT NEXT VALUE FOR s FROM t`, DialectOracle)
	mustParse(t, `DECLARE GLOBAL TEMPORARY TABLE g (a INT)`, DialectDB2)
	mustFail(t, `DECLARE GLOBAL TEMPORARY TABLE g (a INT)`, DialectOracle)
	mustParse(t, `CREATE TABLE d (v DECFLOAT)`, DialectDB2)
	mustFail(t, `CREATE TABLE d (v DECFLOAT)`, DialectNetezza)
	// FETCH FIRST works everywhere.
	mustParse(t, `SELECT a FROM t FETCH FIRST 5 ROWS ONLY`, DialectANSI)
}

func TestParseScriptSplitting(t *testing.T) {
	stmts, err := ParseScript(`CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT * FROM a;`, DialectANSI)
	if err != nil || len(stmts) != 3 {
		t.Fatalf("%d stmts, err %v", len(stmts), err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT`, `SELECT FROM t`, `SELECT a FROM`, `INSERT t VALUES (1)`,
		`UPDATE t a = 1`, `CREATE TABLE`, `SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP`, `SELECT CASE END FROM t`,
		`SELECT a FROM t ORDER BY`, `SELECT 1 extra_token_1 extra_token_2 FROM`,
	} {
		if _, err := Parse(src, DialectANSI); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestOracleEmptyStringLiteralIsNull(t *testing.T) {
	st := mustParse(t, `SELECT '' FROM t`, DialectOracle)
	lit := st.(*SelectStmt).Items[0].Expr.(*Literal)
	if !lit.Val.IsNull() {
		t.Fatal("'' must parse to NULL under Oracle")
	}
	st = mustParse(t, `SELECT '' FROM t`, DialectANSI)
	lit = st.(*SelectStmt).Items[0].Expr.(*Literal)
	if lit.Val.IsNull() {
		t.Fatal("'' must stay empty string under ANSI")
	}
}

func TestParseDateLiterals(t *testing.T) {
	st := mustParse(t, `SELECT DATE '2016-06-15', TIMESTAMP '2016-06-15 10:00:00' FROM t`, DialectANSI)
	items := st.(*SelectStmt).Items
	if items[0].Expr.(*Literal).Val.Kind() != types.KindDate {
		t.Fatal("date literal")
	}
	if items[1].Expr.(*Literal).Val.Kind() != types.KindTimestamp {
		t.Fatal("timestamp literal")
	}
	mustFail(t, `SELECT DATE 'bogus' FROM t`, DialectANSI)
}

func TestParseSubqueriesAndExists(t *testing.T) {
	st := mustParse(t, `
		SELECT (SELECT MAX(a) FROM t2)
		FROM t1
		WHERE EXISTS (SELECT 1 FROM t3) AND a IN (SELECT b FROM t4)`, DialectANSI)
	sel := st.(*SelectStmt)
	if _, ok := sel.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery")
	}
	and := sel.Where.(*BinaryOp)
	if _, ok := and.Left.(*ExistsExpr); !ok {
		t.Fatal("exists")
	}
	if in := and.Right.(*InExpr); in.Sub == nil {
		t.Fatal("in subquery")
	}
}

func TestParseUnion(t *testing.T) {
	st := mustParse(t, `SELECT a FROM t UNION ALL SELECT b FROM s UNION SELECT c FROM u`, DialectANSI)
	sel := st.(*SelectStmt)
	if sel.Union == nil || !sel.UnionAll {
		t.Fatal("first union all")
	}
	if sel.Union.Union == nil || sel.Union.UnionAll {
		t.Fatal("second union distinct")
	}
}

func TestParseOverlaps(t *testing.T) {
	st := mustParse(t, `SELECT * FROM t WHERE (a, b) OVERLAPS (c, d)`, DialectNetezza)
	if _, ok := st.(*SelectStmt).Where.(*OverlapsExpr); !ok {
		t.Fatalf("overlaps: %T", st.(*SelectStmt).Where)
	}
	// Plain parenthesized expression must not be eaten by the probe.
	st = mustParse(t, `SELECT * FROM t WHERE (a + b) > 2`, DialectNetezza)
	if _, ok := st.(*SelectStmt).Where.(*BinaryOp); !ok {
		t.Fatalf("paren expr: %T", st.(*SelectStmt).Where)
	}
}

func TestParseCallAndSet(t *testing.T) {
	call := mustParse(t, `CALL SPARK_SUBMIT('myapp', 42)`, DialectANSI).(*CallStmt)
	if call.Proc != "SPARK_SUBMIT" || len(call.Args) != 2 {
		t.Fatalf("%+v", call)
	}
	set := mustParse(t, `SET SQL_DIALECT = 'ORACLE'`, DialectANSI).(*SetStmt)
	if set.Name != "SQL_DIALECT" || set.Value != "ORACLE" {
		t.Fatalf("%+v", set)
	}
}

func TestParsePercentileWithinGroup(t *testing.T) {
	st := mustParse(t, `SELECT PERCENTILE_CONT(0.25) WITHIN GROUP (ORDER BY x) FROM t`, DialectOracle)
	fc := st.(*SelectStmt).Items[0].Expr.(*FuncCall)
	if fc.WithinGroupOrder == nil {
		t.Fatal("within group lost")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "a%c%", true},
		{"mississippi", "%issip%", true},
		{"mississippi", "%issib%", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q,%q)=%v", c.s, c.p, got)
		}
	}
}

func TestFuncRegistryDialects(t *testing.T) {
	if _, err := LookupFunc("NVL", DialectOracle); err != nil {
		t.Error(err)
	}
	if _, err := LookupFunc("NVL", DialectANSI); err == nil {
		t.Error("NVL must be Oracle-gated")
	}
	if _, err := LookupFunc("DATE_PART", DialectNetezza); err != nil {
		t.Error(err)
	}
	if _, err := LookupFunc("DATE_PART", DialectDB2); err == nil {
		t.Error("DATE_PART must be Netezza-gated")
	}
	if _, err := LookupFunc("UPPER", DialectDB2); err != nil {
		t.Error("UPPER must be universal")
	}
	if _, err := LookupFunc("NO_SUCH_FN", DialectANSI); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestParseDialectNames(t *testing.T) {
	for name, want := range map[string]Dialect{
		"oracle": DialectOracle, "NPS": DialectNetezza, "postgresql": DialectNetezza,
		"db2": DialectDB2, "ansi": DialectANSI, "": DialectANSI,
	} {
		got, err := ParseDialect(name)
		if err != nil || got != want {
			t.Errorf("ParseDialect(%q)=%v,%v", name, got, err)
		}
	}
	if _, err := ParseDialect("klingon"); err == nil {
		t.Error("unknown dialect must fail")
	}
}

// Property: the parser never panics on arbitrary input (fuzz-ish
// robustness over random byte strings and mutated valid SQL).
func TestParserNeverPanicsProperty(t *testing.T) {
	seeds := []string{
		"SELECT a FROM t WHERE b = 1 GROUP BY a ORDER BY 1",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR(10))",
		"WITH w AS (SELECT 1) SELECT * FROM w",
	}
	f := func(seed int64, mutations uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := []byte(seeds[rng.Intn(len(seeds))])
		for m := 0; m < int(mutations%16)+1; m++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				if len(src) > 0 {
					src[rng.Intn(len(src))] = byte(rng.Intn(128))
				}
			case 1: // delete a byte
				if len(src) > 1 {
					i := rng.Intn(len(src))
					src = append(src[:i], src[i+1:]...)
				}
			default: // insert a byte
				i := rng.Intn(len(src) + 1)
				src = append(src[:i], append([]byte{byte(rng.Intn(128))}, src[i:]...)...)
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", src, r)
			}
		}()
		for _, d := range []Dialect{DialectANSI, DialectOracle, DialectNetezza, DialectDB2} {
			Parse(string(src), d) // errors are fine; panics are not
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseAnalyticQuery(b *testing.B) {
	q := `SELECT region, COUNT(*), SUM(amount), AVG(amount)
	      FROM transactions t JOIN accounts a ON t.account_id = a.account_id
	      WHERE t.txn_date >= DATE '2016-01-01' AND a.sector = 'tech'
	      GROUP BY region HAVING COUNT(*) > 10 ORDER BY 2 DESC`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q, DialectANSI); err != nil {
			b.Fatal(err)
		}
	}
}
