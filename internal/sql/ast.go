package sql

import (
	"dashdb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// --- Expressions -----------------------------------------------------------

// Literal is a constant value.
type Literal struct{ Val types.Value }

// ColumnRef names a column, optionally qualified ("t.c").
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
	// OuterJoin marks Oracle's (+) on this reference.
	OuterJoin bool
}

// Star is "*" or "t.*" in a select list.
type Star struct{ Table string }

// BinaryOp applies an infix operator: arithmetic (+ - * / %), comparison
// (= <> < <= > >=), logical (AND OR), string concat (||), LIKE, IN is
// separate (InExpr).
type BinaryOp struct {
	Op          string
	Left, Right Expr
}

// UnaryOp applies a prefix operator: - + NOT.
type UnaryOp struct {
	Op   string
	Expr Expr
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
	// WithinGroupOrder is the ORDER BY inside PERCENTILE_CONT(p)
	// WITHIN GROUP (ORDER BY e); nil otherwise.
	WithinGroupOrder Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ When, Then Expr }

// CastExpr is CAST(e AS type) or e::type.
type CastExpr struct {
	Expr Expr
	Type string // raw type name, e.g. "VARCHAR2", "INT8", "DECFLOAT"
}

// IsNullExpr is "e IS [NOT] NULL" / Netezza "e ISNULL" / "e NOTNULL".
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

// IsBoolExpr is "e IS [NOT] TRUE/FALSE" / Netezza ISTRUE/ISFALSE.
type IsBoolExpr struct {
	Expr Expr
	Want bool // the tested truth value
	Not  bool
}

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	Expr, Lo, Hi Expr
	Not          bool
}

// InExpr is "e [NOT] IN (list...)" or "e [NOT] IN (subquery)".
type InExpr struct {
	Expr Expr
	List []Expr
	Sub  *SelectStmt // nil for list form
	Not  bool
}

// ExistsExpr is "EXISTS (subquery)".
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sub *SelectStmt }

// SeqValExpr reads a sequence: Oracle "seq.NEXTVAL"/"seq.CURRVAL" and
// DB2 "NEXT VALUE FOR seq"/"PREVIOUS VALUE FOR seq".
type SeqValExpr struct {
	Seq  string
	Next bool // true = NEXTVAL, false = CURRVAL
}

// RownumExpr is Oracle's ROWNUM pseudo-column.
type RownumExpr struct{}

// ParamExpr is a positional parameter marker "?" (0-indexed), bound at
// execution time (prepared statements, §II.C.3's application interfaces).
type ParamExpr struct{ Index int }

// OverlapsExpr is "(s1, e1) OVERLAPS (s2, e2)" (Netezza/PG).
type OverlapsExpr struct {
	S1, E1, S2, E2 Expr
}

func (*Literal) expr()      {}
func (*ColumnRef) expr()    {}
func (*Star) expr()         {}
func (*BinaryOp) expr()     {}
func (*UnaryOp) expr()      {}
func (*FuncCall) expr()     {}
func (*CaseExpr) expr()     {}
func (*CastExpr) expr()     {}
func (*IsNullExpr) expr()   {}
func (*IsBoolExpr) expr()   {}
func (*BetweenExpr) expr()  {}
func (*InExpr) expr()       {}
func (*ExistsExpr) expr()   {}
func (*SubqueryExpr) expr() {}
func (*SeqValExpr) expr()   {}
func (*RownumExpr) expr()   {}
func (*ParamExpr) expr()    {}
func (*OverlapsExpr) expr() {}

// --- FROM clause -----------------------------------------------------------

// TableRef is a named relation (base table, view, nickname or DUAL) with
// an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table with alias.
type SubqueryRef struct {
	Sub   *SelectStmt
	Alias string
}

// JoinRef is an explicit JOIN.
type JoinRef struct {
	Left, Right FromItem
	Type        string // "INNER", "LEFT", "RIGHT", "CROSS"
	On          Expr   // nil for USING/CROSS
	Using       []string
}

// FromItem is anything that can appear in FROM.
type FromItem interface{ fromItem() }

func (*TableRef) fromItem()    {}
func (*SubqueryRef) fromItem() {}
func (*JoinRef) fromItem()     {}

// --- Statements ------------------------------------------------------------

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY term; Ordinal > 0 means "ORDER BY n".
type OrderItem struct {
	Expr    Expr
	Ordinal int
	Desc    bool
}

// CTE is one WITH-list entry.
type CTE struct {
	Name string
	Sub  *SelectStmt
}

// SelectStmt is a query, possibly with set operations chained via Union.
type SelectStmt struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     []FromItem // comma-separated items (implicit cross join)
	Where    Expr
	GroupBy  []Expr // may include ordinals/aliases (resolved at compile)
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Offset   int64
	// Union chains the next set operand; UnionAll distinguishes ALL.
	Union    *SelectStmt
	UnionAll bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES ... | SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *SelectStmt
}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE p].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one "col = expr" assignment.
type SetClause struct {
	Column string
	Expr   Expr
}

// DeleteStmt is DELETE FROM t [WHERE p].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    string
	NotNull bool
}

// CreateTableStmt covers CREATE TABLE, CREATE [GLOBAL] TEMP[ORARY] TABLE
// and DECLARE GLOBAL TEMPORARY TABLE.
type CreateTableStmt struct {
	Table       string
	Columns     []ColumnDef
	Temp        bool
	IfNotExists bool
	AsQuery     *SelectStmt // CREATE TABLE ... AS SELECT
}

// DropStmt drops an object.
type DropStmt struct {
	Kind     string // "TABLE", "VIEW", "SEQUENCE", "NICKNAME"
	Name     string
	IfExists bool
}

// TruncateStmt empties a table.
type TruncateStmt struct{ Table string }

// CreateViewStmt registers a view; the session dialect is recorded.
type CreateViewStmt struct {
	Name string
	SQL  string // the view query's original text
	Sub  *SelectStmt
}

// CreateSequenceStmt registers a sequence.
type CreateSequenceStmt struct {
	Name  string
	Start int64
	Incr  int64
}

// CreateAliasStmt is DB2 CREATE ALIAS name FOR target.
type CreateAliasStmt struct{ Name, Target string }

// CreateIndexStmt is CREATE [UNIQUE] INDEX. The engine's scan-centric
// runtime makes secondary indexes unnecessary; per §II.B.7 only
// uniqueness-enforcing indexes are accepted (as constraints), all others
// are rejected.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// SetStmt is "SET name = value" (session variables, e.g. SQL_DIALECT).
type SetStmt struct{ Name, Value string }

// ExplainStmt wraps a statement for plan display. Analyze (EXPLAIN
// ANALYZE) additionally executes the target and annotates every plan node
// with actual row counts, wall time, and scan skip ratios.
type ExplainStmt struct {
	Target  Statement
	Analyze bool
}

// ValuesStmt is DB2's standalone VALUES expression statement.
type ValuesStmt struct{ Rows [][]Expr }

// CallStmt is CALL proc(args) — used for the Spark stored-procedure
// interface (§II.D: SQL Stored Procedure interfaces to submit or cancel
// Spark applications).
type CallStmt struct {
	Proc string
	Args []Expr
}

// BeginBlockStmt is an Oracle anonymous PL/SQL block: BEGIN ... END. The
// body statements execute sequentially.
type BeginBlockStmt struct{ Body []Statement }

func (*SelectStmt) stmt()         {}
func (*InsertStmt) stmt()         {}
func (*UpdateStmt) stmt()         {}
func (*DeleteStmt) stmt()         {}
func (*CreateTableStmt) stmt()    {}
func (*DropStmt) stmt()           {}
func (*TruncateStmt) stmt()       {}
func (*CreateViewStmt) stmt()     {}
func (*CreateSequenceStmt) stmt() {}
func (*CreateAliasStmt) stmt()    {}
func (*CreateIndexStmt) stmt()    {}
func (*SetStmt) stmt()            {}
func (*ExplainStmt) stmt()        {}
func (*ValuesStmt) stmt()         {}
func (*CallStmt) stmt()           {}
func (*BeginBlockStmt) stmt()     {}
