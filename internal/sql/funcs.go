package sql

import (
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"dashdb/internal/types"
)

// EvalEnv carries per-session evaluation state into scalar functions:
// the statement clock (NOW/SYSDATE are stable within a statement) and the
// active dialect.
type EvalEnv struct {
	Now     time.Time
	Dialect Dialect
}

// ScalarFunc is one entry of the polyglot function library (§II.C.1).
type ScalarFunc struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	// Dialects restricts availability; nil = all dialects.
	Dialects []Dialect
	Fn       func(env *EvalEnv, args []types.Value) (types.Value, error)
}

func (f *ScalarFunc) availableIn(d Dialect) bool {
	if len(f.Dialects) == 0 {
		return true
	}
	for _, fd := range f.Dialects {
		if fd == d {
			return true
		}
	}
	return false
}

// LookupFunc resolves a scalar function name under a dialect.
func LookupFunc(name string, d Dialect) (*ScalarFunc, error) {
	f, ok := funcRegistry[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown function %s", name)
	}
	if !f.availableIn(d) {
		return nil, fmt.Errorf("sql: function %s is not available in the %s dialect", name, d)
	}
	return f, nil
}

var funcRegistry = map[string]*ScalarFunc{}

func register(f *ScalarFunc) {
	funcRegistry[f.Name] = f
}

// alias registers an alternate name for an existing function.
func alias(name, target string, dialects ...Dialect) {
	t := funcRegistry[target]
	register(&ScalarFunc{Name: name, MinArgs: t.MinArgs, MaxArgs: t.MaxArgs, Dialects: dialects, Fn: t.Fn})
}

// argument helpers -----------------------------------------------------------

func strArg(v types.Value) string { return v.Str() }

func intArg(v types.Value) (int64, error) {
	i, ok := v.AsInt()
	if !ok {
		return 0, fmt.Errorf("sql: expected numeric argument, got %v", v)
	}
	return i, nil
}

func floatArg(v types.Value) (float64, error) {
	f, ok := v.AsFloat()
	if !ok {
		return 0, fmt.Errorf("sql: expected numeric argument, got %v", v)
	}
	return f, nil
}

// anyNull returns true if any argument is NULL (the common strict rule).
func anyNull(args []types.Value) bool {
	for _, a := range args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

// strict wraps a function with NULL-in → NULL-out semantics.
func strict(fn func(env *EvalEnv, args []types.Value) (types.Value, error)) func(*EvalEnv, []types.Value) (types.Value, error) {
	return func(env *EvalEnv, args []types.Value) (types.Value, error) {
		if anyNull(args) {
			return types.Null, nil
		}
		return fn(env, args)
	}
}

var oracleOnly = []Dialect{DialectOracle}
var netezzaOnly = []Dialect{DialectNetezza}
var db2Only = []Dialect{DialectDB2}

func init() {
	registerCommon()
	registerOracle()
	registerNetezza()
	registerDB2()
}

func registerCommon() {
	register(&ScalarFunc{Name: "UPPER", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewString(strings.ToUpper(strArg(a[0]))), nil
	})})
	register(&ScalarFunc{Name: "LOWER", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewString(strings.ToLower(strArg(a[0]))), nil
	})})
	register(&ScalarFunc{Name: "LENGTH", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewInt(int64(len(strArg(a[0])))), nil
	})})
	alias("CHAR_LENGTH", "LENGTH")
	alias("LEN", "LENGTH")
	register(&ScalarFunc{Name: "TRIM", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewString(strings.TrimSpace(strArg(a[0]))), nil
	})})
	register(&ScalarFunc{Name: "LTRIM", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		cut := " "
		if len(a) == 2 {
			cut = strArg(a[1])
		}
		return types.NewString(strings.TrimLeft(strArg(a[0]), cut)), nil
	})})
	register(&ScalarFunc{Name: "RTRIM", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		cut := " "
		if len(a) == 2 {
			cut = strArg(a[1])
		}
		return types.NewString(strings.TrimRight(strArg(a[0]), cut)), nil
	})})
	register(&ScalarFunc{Name: "REPLACE", MinArgs: 3, MaxArgs: 3, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewString(strings.ReplaceAll(strArg(a[0]), strArg(a[1]), strArg(a[2]))), nil
	})})
	register(&ScalarFunc{Name: "CONCAT", MinArgs: 2, MaxArgs: -1, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		var b strings.Builder
		for _, v := range a {
			if !v.IsNull() {
				b.WriteString(v.String())
			}
		}
		return types.NewString(b.String()), nil
	}})
	register(&ScalarFunc{Name: "ABS", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		if a[0].Kind() == types.KindInt {
			i := a[0].Int()
			if i < 0 {
				i = -i
			}
			return types.NewInt(i), nil
		}
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Abs(f)), nil
	})})
	register(&ScalarFunc{Name: "MOD", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		x, err := intArg(a[0])
		if err != nil {
			return types.Null, err
		}
		y, err := intArg(a[1])
		if err != nil {
			return types.Null, err
		}
		if y == 0 {
			return types.Null, fmt.Errorf("sql: division by zero in MOD")
		}
		return types.NewInt(x % y), nil
	})})
	register(&ScalarFunc{Name: "ROUND", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		scale := int64(0)
		if len(a) == 2 {
			if scale, err = intArg(a[1]); err != nil {
				return types.Null, err
			}
		}
		mult := math.Pow(10, float64(scale))
		return types.NewFloat(math.Round(f*mult) / mult), nil
	})})
	register(&ScalarFunc{Name: "TRUNC", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		scale := int64(0)
		if len(a) == 2 {
			if scale, err = intArg(a[1]); err != nil {
				return types.Null, err
			}
		}
		mult := math.Pow(10, float64(scale))
		return types.NewFloat(math.Trunc(f*mult) / mult), nil
	})})
	register(&ScalarFunc{Name: "FLOOR", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Floor(f)), nil
	})})
	register(&ScalarFunc{Name: "CEIL", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Ceil(f)), nil
	})})
	alias("CEILING", "CEIL")
	register(&ScalarFunc{Name: "SQRT", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Sqrt(f)), nil
	})})
	register(&ScalarFunc{Name: "POWER", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		x, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		y, err := floatArg(a[1])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Pow(x, y)), nil
	})})
	register(&ScalarFunc{Name: "SIGN", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		switch {
		case f > 0:
			return types.NewInt(1), nil
		case f < 0:
			return types.NewInt(-1), nil
		default:
			return types.NewInt(0), nil
		}
	})})
	register(&ScalarFunc{Name: "COALESCE", MinArgs: 1, MaxArgs: -1, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.Null, nil
	}})
	register(&ScalarFunc{Name: "NULLIF", MinArgs: 2, MaxArgs: 2, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		if types.Equal(a[0], a[1]) {
			return types.Null, nil
		}
		return a[0], nil
	}})
	register(&ScalarFunc{Name: "YEAR", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t, err := asTime(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(t.Year())), nil
	})})
	register(&ScalarFunc{Name: "MONTH", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t, err := asTime(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(t.Month())), nil
	})})
	register(&ScalarFunc{Name: "DAY", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t, err := asTime(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(t.Day())), nil
	})})
	register(&ScalarFunc{Name: "CURRENT_DATE", MinArgs: 0, MaxArgs: 0, Fn: func(env *EvalEnv, _ []types.Value) (types.Value, error) {
		return types.DateFromTime(env.Now), nil
	}})
	register(&ScalarFunc{Name: "CURRENT_TIMESTAMP", MinArgs: 0, MaxArgs: 0, Fn: func(env *EvalEnv, _ []types.Value) (types.Value, error) {
		return types.TimestampFromTime(env.Now), nil
	}})
}

// asTime coerces a date/timestamp/string value to time.Time.
func asTime(v types.Value) (time.Time, error) {
	switch v.Kind() {
	case types.KindDate, types.KindTimestamp:
		return v.Time(), nil
	case types.KindString:
		if d, err := types.ParseDate(v.Str()); err == nil {
			return d.Time(), nil
		}
		if ts, err := types.ParseTimestamp(v.Str()); err == nil {
			return ts.Time(), nil
		}
	}
	return time.Time{}, fmt.Errorf("sql: expected date/timestamp, got %v", v)
}

func registerOracle() {
	register(&ScalarFunc{Name: "NVL", MinArgs: 2, MaxArgs: 2, Dialects: oracleOnly, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		if a[0].IsNull() {
			return a[1], nil
		}
		return a[0], nil
	}})
	register(&ScalarFunc{Name: "NVL2", MinArgs: 3, MaxArgs: 3, Dialects: oracleOnly, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		if a[0].IsNull() {
			return a[2], nil
		}
		return a[1], nil
	}})
	register(&ScalarFunc{Name: "DECODE", MinArgs: 3, MaxArgs: -1, Dialects: oracleOnly, Fn: func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		// DECODE(expr, s1, r1, s2, r2, ..., [default]); NULL matches NULL.
		expr := a[0]
		rest := a[1:]
		for len(rest) >= 2 {
			s, r := rest[0], rest[1]
			if types.Equal(expr, s) || (expr.IsNull() && s.IsNull()) {
				return r, nil
			}
			rest = rest[2:]
		}
		if len(rest) == 1 {
			return rest[0], nil
		}
		return types.Null, nil
	}})
	substr := func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		s := strArg(a[0])
		start, err := intArg(a[1])
		if err != nil {
			return types.Null, err
		}
		// Oracle: position 1-based; 0 treated as 1; negative counts from end.
		switch {
		case start == 0:
			start = 1
		case start < 0:
			start = int64(len(s)) + start + 1
			if start < 1 {
				return types.NewString(""), nil
			}
		}
		if start > int64(len(s)) {
			return types.NewString(""), nil
		}
		sub := s[start-1:]
		if len(a) == 3 {
			n, err := intArg(a[2])
			if err != nil {
				return types.Null, err
			}
			if n < 0 {
				return types.Null, nil
			}
			if n < int64(len(sub)) {
				sub = sub[:n]
			}
		}
		return types.NewString(sub), nil
	}
	register(&ScalarFunc{Name: "SUBSTR", MinArgs: 2, MaxArgs: 3, Fn: strict(substr)})
	alias("SUBSTR2", "SUBSTR", DialectOracle)
	alias("SUBSTR4", "SUBSTR", DialectOracle)
	alias("SUBSTRB", "SUBSTR", DialectOracle)
	alias("SUBSTRING", "SUBSTR")
	register(&ScalarFunc{Name: "INSTR", MinArgs: 2, MaxArgs: 2, Dialects: oracleOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewInt(int64(strings.Index(strArg(a[0]), strArg(a[1])) + 1)), nil
	})})
	pad := func(left bool) func(*EvalEnv, []types.Value) (types.Value, error) {
		return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
			s := strArg(a[0])
			n, err := intArg(a[1])
			if err != nil {
				return types.Null, err
			}
			fill := " "
			if len(a) == 3 {
				fill = strArg(a[2])
			}
			if fill == "" || n <= int64(len(s)) {
				if n < int64(len(s)) {
					s = s[:n]
				}
				return types.NewString(s), nil
			}
			padLen := int(n) - len(s)
			padding := strings.Repeat(fill, padLen/len(fill)+1)[:padLen]
			if left {
				return types.NewString(padding + s), nil
			}
			return types.NewString(s + padding), nil
		})
	}
	register(&ScalarFunc{Name: "LPAD", MinArgs: 2, MaxArgs: 3, Fn: pad(true)})
	register(&ScalarFunc{Name: "RPAD", MinArgs: 2, MaxArgs: 3, Fn: pad(false)})
	register(&ScalarFunc{Name: "INITCAP", MinArgs: 1, MaxArgs: 1, Dialects: oracleOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		s := strings.ToLower(strArg(a[0]))
		var b strings.Builder
		up := true
		for _, r := range s {
			if up && r >= 'a' && r <= 'z' {
				b.WriteRune(r - 32)
			} else {
				b.WriteRune(r)
			}
			up = r == ' ' || r == '\t' || r == '-' || r == '_'
		}
		return types.NewString(b.String()), nil
	})})
	register(&ScalarFunc{Name: "HEXTORAW", MinArgs: 1, MaxArgs: 1, Dialects: oracleOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		raw, err := hex.DecodeString(strArg(a[0]))
		if err != nil {
			return types.Null, fmt.Errorf("sql: HEXTORAW: %v", err)
		}
		return types.NewString(string(raw)), nil
	})})
	register(&ScalarFunc{Name: "RAWTOHEX", MinArgs: 1, MaxArgs: 1, Dialects: oracleOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewString(strings.ToUpper(hex.EncodeToString([]byte(strArg(a[0]))))), nil
	})})
	register(&ScalarFunc{Name: "LEAST", MinArgs: 1, MaxArgs: -1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		best := a[0]
		for _, v := range a[1:] {
			if types.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	})})
	register(&ScalarFunc{Name: "GREATEST", MinArgs: 1, MaxArgs: -1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		best := a[0]
		for _, v := range a[1:] {
			if types.Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	})})
	register(&ScalarFunc{Name: "TO_CHAR", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		if len(a) == 2 && (a[0].Kind() == types.KindDate || a[0].Kind() == types.KindTimestamp) {
			return types.NewString(formatOracleDate(a[0].Time(), strArg(a[1]))), nil
		}
		return types.NewString(a[0].String()), nil
	})})
	register(&ScalarFunc{Name: "TO_DATE", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		v, err := types.ParseDate(strArg(a[0]))
		if err != nil && len(a) == 2 {
			if t, perr := parseOracleDate(strArg(a[0]), strArg(a[1])); perr == nil {
				return types.DateFromTime(t), nil
			}
		}
		return v, err
	})})
	register(&ScalarFunc{Name: "TO_NUMBER", MinArgs: 1, MaxArgs: 1, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		s := strings.TrimSpace(strArg(a[0]))
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return types.NewInt(i), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return types.Null, fmt.Errorf("sql: TO_NUMBER: %q is not numeric", s)
		}
		return types.NewFloat(f), nil
	})})
	register(&ScalarFunc{Name: "SYSDATE", MinArgs: 0, MaxArgs: 0, Dialects: oracleOnly, Fn: func(env *EvalEnv, _ []types.Value) (types.Value, error) {
		return types.DateFromTime(env.Now), nil
	}})
}

// formatOracleDate supports the common Oracle date format elements.
func formatOracleDate(t time.Time, format string) string {
	r := strings.NewReplacer(
		"YYYY", "2006", "YY", "06",
		"MM", "01", "MON", "Jan",
		"DD", "02",
		"HH24", "15", "HH", "03",
		"MI", "04", "SS", "05",
	)
	return t.Format(r.Replace(strings.ToUpper(format)))
}

func parseOracleDate(s, format string) (time.Time, error) {
	r := strings.NewReplacer(
		"YYYY", "2006", "YY", "06",
		"MM", "01", "MON", "Jan",
		"DD", "02",
		"HH24", "15", "HH", "03",
		"MI", "04", "SS", "05",
	)
	return time.ParseInLocation(r.Replace(strings.ToUpper(format)), s, time.UTC)
}

func registerNetezza() {
	register(&ScalarFunc{Name: "NOW", MinArgs: 0, MaxArgs: 0, Dialects: netezzaOnly, Fn: func(env *EvalEnv, _ []types.Value) (types.Value, error) {
		return types.TimestampFromTime(env.Now), nil
	}})
	register(&ScalarFunc{Name: "DATE_PART", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t, err := asTime(a[1])
		if err != nil {
			return types.Null, err
		}
		switch strings.ToLower(strArg(a[0])) {
		case "year":
			return types.NewInt(int64(t.Year())), nil
		case "month":
			return types.NewInt(int64(t.Month())), nil
		case "day":
			return types.NewInt(int64(t.Day())), nil
		case "hour":
			return types.NewInt(int64(t.Hour())), nil
		case "minute":
			return types.NewInt(int64(t.Minute())), nil
		case "second":
			return types.NewInt(int64(t.Second())), nil
		case "dow":
			return types.NewInt(int64(t.Weekday())), nil
		case "doy":
			return types.NewInt(int64(t.YearDay())), nil
		case "quarter":
			return types.NewInt(int64((t.Month()-1)/3 + 1)), nil
		case "week":
			_, w := t.ISOWeek()
			return types.NewInt(int64(w)), nil
		case "epoch":
			return types.NewInt(t.Unix()), nil
		default:
			return types.Null, fmt.Errorf("sql: DATE_PART: unknown field %q", strArg(a[0]))
		}
	})})
	register(&ScalarFunc{Name: "POW", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: funcRegistry["POWER"].Fn})
	hashFn := func(mask uint64) func(*EvalEnv, []types.Value) (types.Value, error) {
		return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
			return types.NewInt(int64(a[0].Hash() & mask)), nil
		})
	}
	register(&ScalarFunc{Name: "HASH", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: hashFn(1<<63 - 1)})
	register(&ScalarFunc{Name: "HASH4", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: hashFn(1<<31 - 1)})
	register(&ScalarFunc{Name: "HASH8", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: hashFn(1<<63 - 1)})
	register(&ScalarFunc{Name: "BTRIM", MinArgs: 1, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		cut := " "
		if len(a) == 2 {
			cut = strArg(a[1])
		}
		return types.NewString(strings.Trim(strArg(a[0]), cut)), nil
	})})
	register(&ScalarFunc{Name: "TO_HEX", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		i, err := intArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewString(strconv.FormatInt(i, 16)), nil
	})})
	// intNand / intNor / intNnor / intNnot bit operations.
	for _, n := range []string{"1", "2", "4", "8"} {
		n := n
		register(&ScalarFunc{Name: "INT" + n + "AND", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: bitop(func(x, y int64) int64 { return x & y })})
		register(&ScalarFunc{Name: "INT" + n + "OR", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: bitop(func(x, y int64) int64 { return x | y })})
		register(&ScalarFunc{Name: "INT" + n + "NOR", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: bitop(func(x, y int64) int64 { return ^(x | y) })})
		register(&ScalarFunc{Name: "INT" + n + "XOR", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: bitop(func(x, y int64) int64 { return x ^ y })})
		register(&ScalarFunc{Name: "INT" + n + "NOT", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
			x, err := intArg(a[0])
			if err != nil {
				return types.Null, err
			}
			return types.NewInt(^x), nil
		})})
	}
	register(&ScalarFunc{Name: "STRLEFT", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		s := strArg(a[0])
		n, err := intArg(a[1])
		if err != nil {
			return types.Null, err
		}
		if n < 0 {
			n = 0
		}
		if n > int64(len(s)) {
			n = int64(len(s))
		}
		return types.NewString(s[:n]), nil
	})})
	alias("STRLFT", "STRLEFT", DialectNetezza)
	register(&ScalarFunc{Name: "STRRIGHT", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		s := strArg(a[0])
		n, err := intArg(a[1])
		if err != nil {
			return types.Null, err
		}
		if n < 0 {
			n = 0
		}
		if n > int64(len(s)) {
			n = int64(len(s))
		}
		return types.NewString(s[int64(len(s))-n:]), nil
	})})
	register(&ScalarFunc{Name: "STRPOS", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		return types.NewInt(int64(strings.Index(strArg(a[0]), strArg(a[1])) + 1)), nil
	})})
	register(&ScalarFunc{Name: "AGE", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t1, err := asTime(a[0])
		if err != nil {
			return types.Null, err
		}
		t2, err := asTime(a[1])
		if err != nil {
			return types.Null, err
		}
		days := int64(t1.Sub(t2).Hours() / 24)
		return types.NewInt(days), nil
	})})
	register(&ScalarFunc{Name: "NEXT_MONTH", MinArgs: 1, MaxArgs: 1, Dialects: netezzaOnly, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		t, err := asTime(a[0])
		if err != nil {
			return types.Null, err
		}
		first := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC).AddDate(0, 1, 0)
		return types.DateFromTime(first), nil
	})})
	between := func(unit time.Duration) func(*EvalEnv, []types.Value) (types.Value, error) {
		return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
			t1, err := asTime(a[0])
			if err != nil {
				return types.Null, err
			}
			t2, err := asTime(a[1])
			if err != nil {
				return types.Null, err
			}
			return types.NewInt(int64(t2.Sub(t1) / unit)), nil
		})
	}
	register(&ScalarFunc{Name: "DAYS_BETWEEN", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: between(24 * time.Hour)})
	register(&ScalarFunc{Name: "HOURS_BETWEEN", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: between(time.Hour)})
	register(&ScalarFunc{Name: "SECONDS_BETWEEN", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: between(time.Second)})
	register(&ScalarFunc{Name: "WEEKS_BETWEEN", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: between(7 * 24 * time.Hour)})
	register(&ScalarFunc{Name: "MINUTES_BETWEEN", MinArgs: 2, MaxArgs: 2, Dialects: netezzaOnly, Fn: between(time.Minute)})
}

func bitop(op func(x, y int64) int64) func(*EvalEnv, []types.Value) (types.Value, error) {
	return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		x, err := intArg(a[0])
		if err != nil {
			return types.Null, err
		}
		y, err := intArg(a[1])
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(op(x, y)), nil
	})
}

func registerDB2() {
	register(&ScalarFunc{Name: "NORMALIZE_DECFLOAT", MinArgs: 1, MaxArgs: 1, Dialects: db2Only, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		f, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(f), nil
	})})
	register(&ScalarFunc{Name: "COMPARE_DECFLOAT", MinArgs: 2, MaxArgs: 2, Dialects: db2Only, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		x, err := floatArg(a[0])
		if err != nil {
			return types.Null, err
		}
		y, err := floatArg(a[1])
		if err != nil {
			return types.Null, err
		}
		switch {
		case math.IsNaN(x) || math.IsNaN(y):
			return types.NewInt(3), nil // unordered, per DB2
		case x < y:
			return types.NewInt(-1), nil
		case x > y:
			return types.NewInt(1), nil
		default:
			return types.NewInt(0), nil
		}
	})})
}

// LikeMatch implements SQL LIKE: '%' matches any run, '_' one character.
func LikeMatch(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking on '%'.
	var si, pi int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
