package sql

import (
	"dashdb/internal/columnar"
	"dashdb/internal/exec"
	"dashdb/internal/types"
)

// CompileConstExpr compiles an expression with no input columns (VALUES
// rows, CALL arguments, DEFAULT expressions). Sequence references and
// scalar subqueries are allowed.
func (c *Compiler) CompileConstExpr(e Expr) (exec.Expr, error) {
	return c.compileExpr(e, &scope{})
}

// CompileRowExpr compiles an expression against a single table's schema
// (UPDATE SET clauses, CHECK-style predicates).
func (c *Compiler) CompileRowExpr(e Expr, sch types.Schema) (exec.Expr, error) {
	sc := &scope{}
	for _, col := range sch {
		sc.add("", col.Name, col.Kind)
	}
	return c.compileExpr(e, sc)
}

// CompileTablePredicate splits a WHERE clause for direct table DML into
// pushable columnar scan predicates and a residual row filter (nil when
// everything pushed down). The same split the query compiler applies to
// base-table scans.
func (c *Compiler) CompileTablePredicate(where Expr, sch types.Schema) ([]columnar.Pred, exec.Expr, error) {
	if where == nil {
		return nil, nil, nil
	}
	conjuncts := splitConjuncts(where)
	var preds []columnar.Pred
	var rest []Expr
	for _, cj := range conjuncts {
		if p, ok := c.asScanPred(cj, "", sch); ok {
			preds = append(preds, p...)
			continue
		}
		rest = append(rest, cj)
	}
	if len(rest) == 0 {
		return preds, nil, nil
	}
	sc := &scope{}
	for _, col := range sch {
		sc.add("", col.Name, col.Kind)
	}
	residual, err := c.compileConjuncts(rest, sc)
	if err != nil {
		return nil, nil, err
	}
	return preds, residual, nil
}
