package sql

import (
	"encoding/json"
	"fmt"
	"strconv"

	"dashdb/internal/jsonpath"
	"dashdb/internal/types"
)

// JSON analytics surface (paper §VI future work: "Support for Big Data
// Analytics on JSON data"): JSON documents travel as VARCHAR; JSON_VALUE
// extracts scalars by dotted path with [n] array indexes, and
// JSON_EXISTS / JSON_TYPE probe structure. Available in every dialect.

func init() {
	register(&ScalarFunc{Name: "JSON_VALUE", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		doc, err := decodeJSON(a[0])
		if err != nil {
			return types.Null, err
		}
		v, ok := jsonpath.Extract(doc, a[1].Str())
		if !ok || v == nil {
			return types.Null, nil
		}
		switch n := v.(type) {
		case float64:
			if n == float64(int64(n)) {
				return types.NewInt(int64(n)), nil
			}
			return types.NewFloat(n), nil
		case bool:
			return types.NewBool(n), nil
		case string:
			return types.NewString(n), nil
		default:
			raw, err := json.Marshal(v)
			if err != nil {
				return types.Null, nil
			}
			return types.NewString(string(raw)), nil
		}
	})})
	register(&ScalarFunc{Name: "JSON_EXISTS", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		doc, err := decodeJSON(a[0])
		if err != nil {
			return types.Null, err
		}
		_, ok := jsonpath.Extract(doc, a[1].Str())
		return types.NewBool(ok), nil
	})})
	register(&ScalarFunc{Name: "JSON_TYPE", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		doc, err := decodeJSON(a[0])
		if err != nil {
			return types.Null, err
		}
		if len(a) == 2 {
			v, ok := jsonpath.Extract(doc, a[1].Str())
			if !ok {
				return types.Null, nil
			}
			doc = v
		}
		return types.NewString(jsonTypeName(doc)), nil
	})})
	register(&ScalarFunc{Name: "JSON_ARRAY_LENGTH", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		doc, err := decodeJSON(a[0])
		if err != nil {
			return types.Null, err
		}
		if len(a) == 2 {
			v, ok := jsonpath.Extract(doc, a[1].Str())
			if !ok {
				return types.Null, nil
			}
			doc = v
		}
		arr, ok := doc.([]interface{})
		if !ok {
			return types.Null, fmt.Errorf("sql: JSON_ARRAY_LENGTH target is %s", jsonTypeName(doc))
		}
		return types.NewInt(int64(len(arr))), nil
	})})
}

func decodeJSON(v types.Value) (interface{}, error) {
	if v.Kind() != types.KindString {
		return nil, fmt.Errorf("sql: expected JSON text, got %s", v.Kind())
	}
	var doc interface{}
	if err := json.Unmarshal([]byte(v.Str()), &doc); err != nil {
		return nil, fmt.Errorf("sql: invalid JSON %s: %v", strconv.Quote(truncateStr(v.Str(), 40)), err)
	}
	return doc, nil
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func jsonTypeName(v interface{}) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case []interface{}:
		return "array"
	default:
		return "object"
	}
}
