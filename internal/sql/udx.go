package sql

import (
	"fmt"
	"strings"
	"sync"

	"dashdb/internal/types"
)

// FuncRegistry holds user-defined extensions (UDX, §II.C.4): custom
// scalar functions registered per database that extend the built-in
// library. User functions shadow nothing: a UDX name colliding with a
// built-in is rejected at registration.
type FuncRegistry struct {
	mu    sync.RWMutex
	funcs map[string]*ScalarFunc
}

// NewFuncRegistry returns an empty registry.
func NewFuncRegistry() *FuncRegistry {
	return &FuncRegistry{funcs: make(map[string]*ScalarFunc)}
}

// Register adds a user-defined scalar function. The name must not clash
// with a built-in (in any dialect) or an existing UDX.
func (r *FuncRegistry) Register(name string, minArgs, maxArgs int, fn func(args []types.Value) (types.Value, error)) error {
	key := strings.ToUpper(name)
	if _, exists := funcRegistry[key]; exists {
		return fmt.Errorf("sql: %s is a built-in function", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.funcs[key]; exists {
		return fmt.Errorf("sql: UDX %s already registered", name)
	}
	r.funcs[key] = &ScalarFunc{
		Name:    key,
		MinArgs: minArgs,
		MaxArgs: maxArgs,
		Fn: func(_ *EvalEnv, args []types.Value) (types.Value, error) {
			return fn(args)
		},
	}
	return nil
}

// Lookup resolves a UDX by name.
func (r *FuncRegistry) Lookup(name string) (*ScalarFunc, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[strings.ToUpper(name)]
	return f, ok
}
