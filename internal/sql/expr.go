package sql

import (
	"fmt"
	"strings"
	"sync"

	"dashdb/internal/exec"
	"dashdb/internal/types"
)

// and3 / or3 implement SQL three-valued logic over BOOLEAN values where
// NULL stands for UNKNOWN.
func and3(a, b types.Value) types.Value {
	af, bf := !a.IsNull() && !a.Bool(), !b.IsNull() && !b.Bool()
	if af || bf {
		return types.NewBool(false)
	}
	if a.IsNull() || b.IsNull() {
		return types.Null
	}
	return types.NewBool(true)
}

func or3(a, b types.Value) types.Value {
	at, bt := !a.IsNull() && a.Bool(), !b.IsNull() && b.Bool()
	if at || bt {
		return types.NewBool(true)
	}
	if a.IsNull() || b.IsNull() {
		return types.Null
	}
	return types.NewBool(false)
}

func not3(a types.Value) types.Value {
	if a.IsNull() {
		return types.Null
	}
	return types.NewBool(!a.Bool())
}

// TypeKindFor maps a SQL type name (any dialect) to the engine kind.
func TypeKindFor(name string) (types.Kind, error) {
	switch strings.ToUpper(name) {
	case "VARCHAR", "VARCHAR2", "CHAR", "CHARACTER", "BPCHAR", "TEXT", "GRAPHIC", "VARGRAPHIC", "CLOB", "STRING", "NVARCHAR":
		return types.KindString, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "INT2", "INT4", "INT8", "BYTEINT":
		return types.KindInt, nil
	case "FLOAT", "FLOAT4", "FLOAT8", "DOUBLE", "REAL", "DECFLOAT", "DECIMAL", "NUMERIC", "NUMBER", "MONEY":
		return types.KindFloat, nil
	case "DATE":
		return types.KindDate, nil
	case "TIMESTAMP", "DATETIME":
		return types.KindTimestamp, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	default:
		return types.KindNull, fmt.Errorf("sql: unsupported type %s", name)
	}
}

// compileExpr lowers an AST expression to an executor expression bound to
// the given scope.
func (c *Compiler) compileExpr(e Expr, sc *scope) (exec.Expr, error) {
	switch ex := e.(type) {
	case *Literal:
		return exec.Const{V: ex.Val}, nil

	case *ColumnRef:
		i, err := sc.resolve(ex.Table, ex.Column)
		if err != nil {
			return nil, err
		}
		return exec.ColRef(i), nil

	case *BinaryOp:
		return c.compileBinary(ex, sc)

	case *UnaryOp:
		inner, err := c.compileExpr(ex.Expr, sc)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "NOT":
			return &exec.NotExpr{E: inner}, nil
		case "-":
			return &exec.NegExpr{E: inner}, nil
		}
		return nil, fmt.Errorf("sql: unsupported unary operator %q", ex.Op)

	case *FuncCall:
		if _, isAgg := aggFuncFor(ex.Name); isAgg {
			return nil, fmt.Errorf("sql: aggregate %s is not allowed here", ex.Name)
		}
		return c.compileScalarCall(ex, sc)

	case *CaseExpr:
		return c.compileCase(ex, sc)

	case *CastExpr:
		kind, err := TypeKindFor(ex.Type)
		if err != nil {
			return nil, err
		}
		inner, err := c.compileExpr(ex.Expr, sc)
		if err != nil {
			return nil, err
		}
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			return types.Coerce(v, kind)
		}), nil

	case *IsNullExpr:
		inner, err := c.compileExpr(ex.Expr, sc)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != not), nil
		}), nil

	case *IsBoolExpr:
		inner, err := c.compileExpr(ex.Expr, sc)
		if err != nil {
			return nil, err
		}
		want, not := ex.Want, ex.Not
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			res := !v.IsNull() && v.Bool() == want
			return types.NewBool(res != not), nil
		}), nil

	case *BetweenExpr:
		val, err := c.compileExpr(ex.Expr, sc)
		if err != nil {
			return nil, err
		}
		lo, err := c.compileExpr(ex.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileExpr(ex.Hi, sc)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := val.Eval(row)
			if err != nil {
				return types.Null, err
			}
			l, err := lo.Eval(row)
			if err != nil {
				return types.Null, err
			}
			h, err := hi.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() || l.IsNull() || h.IsNull() {
				return types.Null, nil
			}
			in := types.Compare(v, l) >= 0 && types.Compare(v, h) <= 0
			return types.NewBool(in != not), nil
		}), nil

	case *InExpr:
		return c.compileIn(ex, sc)

	case *ExistsExpr:
		rowsFn := c.lazySubquery(ex.Sub)
		not := ex.Not
		return exec.FuncExpr(func(types.Row) (types.Value, error) {
			rows, _, err := rowsFn()
			if err != nil {
				return types.Null, err
			}
			return types.NewBool((len(rows) > 0) != not), nil
		}), nil

	case *SubqueryExpr:
		rowsFn := c.lazySubquery(ex.Sub)
		return exec.FuncExpr(func(types.Row) (types.Value, error) {
			rows, _, err := rowsFn()
			if err != nil {
				return types.Null, err
			}
			if len(rows) == 0 {
				return types.Null, nil
			}
			if len(rows) > 1 {
				return types.Null, fmt.Errorf("sql: scalar subquery returned %d rows", len(rows))
			}
			if len(rows[0]) != 1 {
				return types.Null, fmt.Errorf("sql: scalar subquery must return one column")
			}
			return rows[0][0], nil
		}), nil

	case *SeqValExpr:
		seq, ok := c.Cat.Sequence(ex.Seq)
		if !ok {
			return nil, fmt.Errorf("sql: sequence %s does not exist", ex.Seq)
		}
		next := ex.Next
		return exec.FuncExpr(func(types.Row) (types.Value, error) {
			if next {
				return types.NewInt(seq.NextVal()), nil
			}
			v, err := seq.CurrVal()
			if err != nil {
				return types.Null, err
			}
			return types.NewInt(v), nil
		}), nil

	case *ParamExpr:
		idx := ex.Index
		params := c.Params
		if idx >= len(params) {
			return nil, fmt.Errorf("sql: statement has parameter ?%d but only %d values bound", idx+1, len(params))
		}
		return exec.Const{V: params[idx]}, nil

	case *RownumExpr:
		// ROWNUM as an expression: a per-plan running counter.
		n := new(int64)
		return exec.FuncExpr(func(types.Row) (types.Value, error) {
			*n++
			return types.NewInt(*n), nil
		}), nil

	case *OverlapsExpr:
		args := make([]exec.Expr, 4)
		for i, sub := range []Expr{ex.S1, ex.E1, ex.S2, ex.E2} {
			ce, err := c.compileExpr(sub, sc)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			vals := make([]types.Value, 4)
			for i, a := range args {
				v, err := a.Eval(row)
				if err != nil {
					return types.Null, err
				}
				if v.IsNull() {
					return types.Null, nil
				}
				vals[i] = v
			}
			s1, e1, s2, e2 := vals[0], vals[1], vals[2], vals[3]
			if types.Compare(s1, e1) > 0 {
				s1, e1 = e1, s1
			}
			if types.Compare(s2, e2) > 0 {
				s2, e2 = e2, s2
			}
			// SQL standard: (s1,e1) OVERLAPS (s2,e2) ⇔ s1 < e2 AND s2 < e1.
			return types.NewBool(types.Compare(s1, e2) < 0 && types.Compare(s2, e1) < 0), nil
		}), nil

	case *Star:
		return nil, fmt.Errorf("sql: * is only allowed in the select list")
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

func (c *Compiler) compileBinary(ex *BinaryOp, sc *scope) (exec.Expr, error) {
	left, err := c.compileExpr(ex.Left, sc)
	if err != nil {
		return nil, err
	}
	right, err := c.compileExpr(ex.Right, sc)
	if err != nil {
		return nil, err
	}
	op := ex.Op
	switch op {
	case "AND":
		return &exec.AndExpr{L: left, R: right}, nil
	case "OR":
		return &exec.OrExpr{L: left, R: right}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, _ := cmpOpFor(op)
		return &exec.CmpExpr{Op: cmp, L: left, R: right}, nil
	case "LIKE":
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			a, err := left.Eval(row)
			if err != nil {
				return types.Null, err
			}
			b, err := right.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(LikeMatch(a.String(), b.String())), nil
		}), nil
	case "||":
		oracle := c.Dialect == DialectOracle
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			a, err := left.Eval(row)
			if err != nil {
				return types.Null, err
			}
			b, err := right.Eval(row)
			if err != nil {
				return types.Null, err
			}
			// Oracle treats NULL as '' in concatenation; ANSI yields NULL.
			if !oracle && (a.IsNull() || b.IsNull()) {
				return types.Null, nil
			}
			as, bs := "", ""
			if !a.IsNull() {
				as = a.String()
			}
			if !b.IsNull() {
				bs = b.String()
			}
			return types.NewString(as + bs), nil
		}), nil
	case "+", "-", "*", "/", "%":
		// Structured arithmetic nodes vectorize; exec.ArithValue is the
		// scalar semantics (numeric promotion, date ± int day arithmetic).
		return &exec.ArithExpr{Op: op, L: left, R: right}, nil
	}
	return nil, fmt.Errorf("sql: unsupported binary operator %q", op)
}

func (c *Compiler) compileScalarCall(ex *FuncCall, sc *scope) (exec.Expr, error) {
	fn, ok := c.UDX.Lookup(ex.Name)
	if !ok {
		var err error
		fn, err = LookupFunc(ex.Name, c.Dialect)
		if err != nil {
			return nil, err
		}
	}
	if len(ex.Args) < fn.MinArgs || (fn.MaxArgs >= 0 && len(ex.Args) > fn.MaxArgs) {
		return nil, fmt.Errorf("sql: %s expects %d..%d arguments, got %d", fn.Name, fn.MinArgs, fn.MaxArgs, len(ex.Args))
	}
	args := make([]exec.Expr, len(ex.Args))
	for i, a := range ex.Args {
		ce, err := c.compileExpr(a, sc)
		if err != nil {
			return nil, err
		}
		args[i] = ce
	}
	env := c.Env
	return exec.FuncExpr(func(row types.Row) (types.Value, error) {
		vals := make([]types.Value, len(args))
		for i, a := range args {
			v, err := a.Eval(row)
			if err != nil {
				return types.Null, err
			}
			vals[i] = v
		}
		return fn.Fn(env, vals)
	}), nil
}

func (c *Compiler) compileCase(ex *CaseExpr, sc *scope) (exec.Expr, error) {
	var operand exec.Expr
	var err error
	if ex.Operand != nil {
		operand, err = c.compileExpr(ex.Operand, sc)
		if err != nil {
			return nil, err
		}
	}
	type arm struct{ when, then exec.Expr }
	arms := make([]arm, len(ex.Whens))
	for i, w := range ex.Whens {
		we, err := c.compileExpr(w.When, sc)
		if err != nil {
			return nil, err
		}
		te, err := c.compileExpr(w.Then, sc)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{when: we, then: te}
	}
	var elseE exec.Expr
	if ex.Else != nil {
		elseE, err = c.compileExpr(ex.Else, sc)
		if err != nil {
			return nil, err
		}
	}
	return exec.FuncExpr(func(row types.Row) (types.Value, error) {
		var opv types.Value
		if operand != nil {
			var err error
			opv, err = operand.Eval(row)
			if err != nil {
				return types.Null, err
			}
		}
		for _, a := range arms {
			w, err := a.when.Eval(row)
			if err != nil {
				return types.Null, err
			}
			hit := false
			if operand != nil {
				hit = types.Equal(opv, w)
			} else {
				hit = !w.IsNull() && w.Kind() == types.KindBool && w.Bool()
			}
			if hit {
				return a.then.Eval(row)
			}
		}
		if elseE != nil {
			return elseE.Eval(row)
		}
		return types.Null, nil
	}), nil
}

func (c *Compiler) compileIn(ex *InExpr, sc *scope) (exec.Expr, error) {
	val, err := c.compileExpr(ex.Expr, sc)
	if err != nil {
		return nil, err
	}
	not := ex.Not
	if ex.Sub != nil {
		rowsFn := c.lazySubquery(ex.Sub)
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := val.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			rows, _, err := rowsFn()
			if err != nil {
				return types.Null, err
			}
			sawNull := false
			for _, r := range rows {
				if len(r) != 1 {
					return types.Null, fmt.Errorf("sql: IN subquery must return one column")
				}
				if r[0].IsNull() {
					sawNull = true
					continue
				}
				if types.Equal(v, r[0]) {
					return types.NewBool(!not), nil
				}
			}
			if sawNull {
				return types.Null, nil
			}
			return types.NewBool(not), nil
		}), nil
	}
	list := make([]exec.Expr, len(ex.List))
	for i, le := range ex.List {
		ce, err := c.compileExpr(le, sc)
		if err != nil {
			return nil, err
		}
		list[i] = ce
	}
	return exec.FuncExpr(func(row types.Row) (types.Value, error) {
		v, err := val.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		sawNull := false
		for _, le := range list {
			lv, err := le.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() {
				sawNull = true
				continue
			}
			if types.Equal(v, lv) {
				return types.NewBool(!not), nil
			}
		}
		if sawNull {
			return types.Null, nil
		}
		return types.NewBool(not), nil
	}), nil
}

// lazySubquery compiles an uncorrelated subquery now and materializes it
// at most once, on first evaluation.
func (c *Compiler) lazySubquery(sub *SelectStmt) func() ([]types.Row, types.Schema, error) {
	var (
		once sync.Once
		rows []types.Row
		sch  types.Schema
		err  error
	)
	cpl, cerr := c.compileSelect(sub)
	return func() ([]types.Row, types.Schema, error) {
		if cerr != nil {
			return nil, nil, cerr
		}
		once.Do(func() {
			rows, err = exec.Drain(cpl.op)
			sch = cpl.op.Schema()
		})
		return rows, sch, err
	}
}
