package sql

import "strings"

// colUsage records which columns a query references, per table alias.
// It drives projection pruning: a base-table scan fetches only the
// columns of active interest — the essential columnar win of §II.B.3
// ("only active columns of interest to the workload need to be fetched").
type colUsage struct {
	// cols maps lower(alias) -> set of lower(column). Alias "" holds
	// unqualified references, which may belong to any table.
	cols map[string]map[string]bool
	// star marks aliases needing every column ("" = bare SELECT *).
	star map[string]bool
}

func newColUsage() *colUsage {
	return &colUsage{cols: make(map[string]map[string]bool), star: make(map[string]bool)}
}

func (u *colUsage) addRef(table, column string) {
	t := strings.ToLower(table)
	if u.cols[t] == nil {
		u.cols[t] = make(map[string]bool)
	}
	u.cols[t][strings.ToLower(column)] = true
}

// uses reports whether the column may be needed by the given alias.
func (u *colUsage) uses(alias, column string) bool {
	a, c := strings.ToLower(alias), strings.ToLower(column)
	if u.star[""] || u.star[a] {
		return true
	}
	return u.cols[a][c] || u.cols[""][c]
}

// wantsAll reports whether the alias needs every column.
func (u *colUsage) wantsAll(alias string) bool {
	return u.star[""] || u.star[strings.ToLower(alias)]
}

// collectUsage walks the whole statement, conservatively recording every
// column reference (over-inclusion is safe; omission is not).
func collectUsage(sel *SelectStmt, u *colUsage) {
	for _, cte := range sel.With {
		collectUsage(cte.Sub, u)
	}
	for _, it := range sel.Items {
		if st, ok := it.Expr.(*Star); ok {
			u.star[strings.ToLower(st.Table)] = true
			continue
		}
		collectExprUsage(it.Expr, u)
	}
	for _, fi := range sel.From {
		collectFromUsage(fi, u)
	}
	collectExprUsage(sel.Where, u)
	for _, g := range sel.GroupBy {
		collectExprUsage(g, u)
	}
	collectExprUsage(sel.Having, u)
	for _, oi := range sel.OrderBy {
		collectExprUsage(oi.Expr, u)
	}
	if sel.Union != nil {
		collectUsage(sel.Union, u)
	}
}

func collectFromUsage(fi FromItem, u *colUsage) {
	switch f := fi.(type) {
	case *SubqueryRef:
		collectUsage(f.Sub, u)
	case *JoinRef:
		collectFromUsage(f.Left, u)
		collectFromUsage(f.Right, u)
		collectExprUsage(f.On, u)
		for _, c := range f.Using {
			u.addRef("", c)
		}
	}
}

func collectExprUsage(e Expr, u *colUsage) {
	switch ex := e.(type) {
	case nil:
	case *ColumnRef:
		u.addRef(ex.Table, ex.Column)
	case *Star:
		u.star[strings.ToLower(ex.Table)] = true
	case *BinaryOp:
		collectExprUsage(ex.Left, u)
		collectExprUsage(ex.Right, u)
	case *UnaryOp:
		collectExprUsage(ex.Expr, u)
	case *FuncCall:
		if ex.Star {
			// COUNT(*) needs no column data.
			return
		}
		for _, a := range ex.Args {
			collectExprUsage(a, u)
		}
		collectExprUsage(ex.WithinGroupOrder, u)
	case *CaseExpr:
		collectExprUsage(ex.Operand, u)
		for _, w := range ex.Whens {
			collectExprUsage(w.When, u)
			collectExprUsage(w.Then, u)
		}
		collectExprUsage(ex.Else, u)
	case *CastExpr:
		collectExprUsage(ex.Expr, u)
	case *IsNullExpr:
		collectExprUsage(ex.Expr, u)
	case *IsBoolExpr:
		collectExprUsage(ex.Expr, u)
	case *BetweenExpr:
		collectExprUsage(ex.Expr, u)
		collectExprUsage(ex.Lo, u)
		collectExprUsage(ex.Hi, u)
	case *InExpr:
		collectExprUsage(ex.Expr, u)
		for _, le := range ex.List {
			collectExprUsage(le, u)
		}
		if ex.Sub != nil {
			collectUsage(ex.Sub, u)
		}
	case *ExistsExpr:
		collectUsage(ex.Sub, u)
	case *SubqueryExpr:
		collectUsage(ex.Sub, u)
	case *OverlapsExpr:
		collectExprUsage(ex.S1, u)
		collectExprUsage(ex.E1, u)
		collectExprUsage(ex.S2, u)
		collectExprUsage(ex.E2, u)
	}
}
