// Package sql is the polyglot SQL front end (paper §II.C): an ANSI
// compiler extended with Oracle, Netezza/PostgreSQL and DB2 dialect
// syntax, a dialect-tagged scalar/aggregate function library, per-session
// dialect selection, and a compiler from the AST to the executor's
// operator tree with predicate pushdown into the compressed columnar scan.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

const (
	// TokEOF terminates the token stream.
	TokEOF TokKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokQuotedIdent is a "double quoted" identifier.
	TokQuotedIdent
	// TokNumber is a numeric literal.
	TokNumber
	// TokString is a 'single quoted' string literal.
	TokString
	// TokOp is an operator or punctuation.
	TokOp
)

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string // identifiers are uppercased; quoted identifiers verbatim
	Pos  int    // byte offset in the input
}

// lexer turns SQL text into tokens. It understands -- and /* */ comments,
// ” escapes inside strings, PostgreSQL's :: cast operator and Oracle's
// (+) outer-join marker (emitted as a single "(+)" operator token).
type lexer struct {
	src  string
	pos  int
	toks []Token
}

// Lex tokenizes src, returning a slice ending with a TokEOF token.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.peek(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return fmt.Errorf("sql: unterminated block comment at %d", l.pos)
			}
			l.pos += end + 4
		case c == '\'':
			if err := l.lexString(); err != nil {
				return err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return err
			}
		case isDigit(c) || (c == '.' && isDigit(l.peek(1))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return err
			}
		}
	}
	l.emit(TokEOF, "", l.pos)
	return nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(k TokKind, text string, pos int) {
	l.toks = append(l.toks, Token{Kind: k, Text: text, Pos: pos})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peek(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(TokString, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.peek(1) == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(TokQuotedIdent, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated quoted identifier at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			next := l.peek(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peek(2))) {
				seenExp = true
				l.pos++
				if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
					l.pos++
				}
			} else {
				l.emit(TokNumber, l.src[start:l.pos], start)
				return
			}
		default:
			l.emit(TokNumber, l.src[start:l.pos], start)
			return
		}
	}
	l.emit(TokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.emit(TokIdent, strings.ToUpper(l.src[start:l.pos]), start)
}

// multi-character operators, longest first.
var multiOps = []string{"(+)", "::", "<=", ">=", "<>", "!=", "||"}

func (l *lexer) lexOp() error {
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.emit(TokOp, op, l.pos)
			l.pos += len(op)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '+', '-', '*', '/', '<', '>', '=', '.', ';', '%', ':', '?':
		l.emit(TokOp, string(c), l.pos)
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", rune(c), l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c == '#' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
