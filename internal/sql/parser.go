package sql

import (
	"fmt"
	"strconv"
	"strings"

	"dashdb/internal/types"
)

// Parser turns tokens into an AST under a given dialect.
type Parser struct {
	src     string
	toks    []Token
	pos     int
	dialect Dialect
	nparams int
}

// Parse parses a single statement (a trailing ';' is tolerated).
func Parse(src string, d Dialect) (Statement, error) {
	p, err := newParser(src, d)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.matchOp(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return st, nil
}

// ParseScript parses a ';'-separated statement list.
func ParseScript(src string, d Dialect) ([]Statement, error) {
	p, err := newParser(src, d)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for !p.atEOF() {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.matchOp(";") {
			break
		}
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return out, nil
}

func newParser(src string, d Dialect) (*Parser, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{src: src, toks: toks, dialect: d}, nil
}

// --- token helpers ---------------------------------------------------------

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) peekN(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().Pos)
}

// matchKw consumes the keyword if present.
func (p *Parser) matchKw(kw string) bool {
	if p.cur().Kind == TokIdent && p.cur().Text == kw {
		p.advance()
		return true
	}
	return false
}

// peekKw reports whether the current token is the keyword.
func (p *Parser) peekKw(kw string) bool {
	return p.cur().Kind == TokIdent && p.cur().Text == kw
}

func (p *Parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().Text)
	}
	return nil
}

func (p *Parser) matchOp(op string) bool {
	if p.cur().Kind == TokOp && p.cur().Text == op {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) peekOp(op string) bool {
	return p.cur().Kind == TokOp && p.cur().Text == op
}

func (p *Parser) expectOp(op string) error {
	if !p.matchOp(op) {
		return p.errf("expected %q, found %q", op, p.cur().Text)
	}
	return nil
}

// ident consumes an identifier (plain or quoted).
func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent || t.Kind == TokQuotedIdent {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

// --- statements ------------------------------------------------------------

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKw("SELECT") || p.peekKw("WITH"):
		return p.parseSelect()
	case p.peekKw("INSERT"):
		return p.parseInsert()
	case p.peekKw("UPDATE"):
		return p.parseUpdate()
	case p.peekKw("DELETE"):
		return p.parseDelete()
	case p.peekKw("CREATE"):
		return p.parseCreate()
	case p.peekKw("DECLARE"):
		return p.parseDeclareTemp()
	case p.peekKw("DROP"):
		return p.parseDrop()
	case p.peekKw("TRUNCATE"):
		return p.parseTruncate()
	case p.peekKw("SET"):
		return p.parseSet()
	case p.peekKw("EXPLAIN"):
		p.advance()
		analyze := p.matchKw("ANALYZE")
		target, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Target: target, Analyze: analyze}, nil
	case p.peekKw("VALUES"):
		if !p.dialect.allows("values-statement") {
			return nil, p.errf("VALUES statement requires DB2 dialect")
		}
		rows, err := p.parseValuesRows()
		if err != nil {
			return nil, err
		}
		return &ValuesStmt{Rows: rows}, nil
	case p.peekKw("CALL"):
		return p.parseCall()
	case p.peekKw("BEGIN"):
		return p.parseBeginBlock()
	}
	return nil, p.errf("unrecognized statement start %q", p.cur().Text)
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	st := &SelectStmt{Limit: -1}
	if p.matchKw("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.With = append(st.With, CTE{Name: name, Sub: sub})
			if !p.matchOp(",") {
				break
			}
		}
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if p.matchKw("DISTINCT") {
		st.Distinct = true
	} else {
		p.matchKw("ALL")
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.matchOp(",") {
			break
		}
	}
	if p.matchKw("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, fi)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.matchKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if p.matchKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.matchKw("UNION") {
		all := p.matchKw("ALL")
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Union = next
		st.UnionAll = all
		return st, nil
	}
	if p.matchKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			var oi OrderItem
			if p.cur().Kind == TokNumber {
				n, err := strconv.Atoi(p.advance().Text)
				if err != nil || n < 1 {
					return nil, p.errf("bad ORDER BY ordinal")
				}
				oi.Ordinal = n
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				oi.Expr = e
			}
			if p.matchKw("DESC") {
				oi.Desc = true
			} else {
				p.matchKw("ASC")
			}
			st.OrderBy = append(st.OrderBy, oi)
			if !p.matchOp(",") {
				break
			}
		}
	}
	// LIMIT n [OFFSET m]  (Netezza/PostgreSQL)
	if p.peekKw("LIMIT") {
		if !p.dialect.allows("limit-offset") {
			return nil, p.errf("LIMIT requires Netezza/PostgreSQL dialect")
		}
		p.advance()
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.matchKw("OFFSET") {
			m, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			st.Offset = m
		}
	} else if p.matchKw("OFFSET") {
		m, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Offset = m
		if p.matchKw("LIMIT") {
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			st.Limit = n
		}
	} else if p.matchKw("FETCH") {
		// FETCH FIRST n ROWS ONLY (DB2 / ANSI)
		if !p.matchKw("FIRST") && !p.matchKw("NEXT") {
			return nil, p.errf("expected FIRST after FETCH")
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if !p.matchKw("ROWS") {
			p.matchKw("ROW")
		}
		if err := p.expectKw("ONLY"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *Parser) parseInt() (int64, error) {
	if p.cur().Kind != TokNumber {
		return 0, p.errf("expected number, found %q", p.cur().Text)
	}
	n, err := strconv.ParseInt(p.advance().Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer literal: %v", err)
	}
	return n, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.peekOp("*") {
		p.advance()
		return SelectItem{Expr: &Star{}}, nil
	}
	if p.cur().Kind == TokIdent && p.peekN(1).Kind == TokOp && p.peekN(1).Text == "." &&
		p.peekN(2).Kind == TokOp && p.peekN(2).Text == "*" {
		tbl := p.advance().Text
		p.advance()
		p.advance()
		return SelectItem{Expr: &Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.matchKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent && !p.reservedAfterItem(p.cur().Text) {
		item.Alias = p.advance().Text
	} else if p.cur().Kind == TokQuotedIdent {
		item.Alias = p.advance().Text
	}
	return item, nil
}

// reservedAfterItem lists keywords ending a select item / table ref so
// bare aliases do not swallow them.
func (p *Parser) reservedAfterItem(kw string) bool {
	switch kw {
	case "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
		"FETCH", "UNION", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS",
		"ON", "USING", "AND", "OR", "AS", "SET", "VALUES", "DESC", "ASC",
		"WHEN", "THEN", "ELSE", "END", "INTO", "SELECT", "WITH", "CONNECT", "START":
		return true
	}
	return false
}

func (p *Parser) parseFromItem() (FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		joinType := ""
		switch {
		case p.peekKw("JOIN"):
			joinType = "INNER"
		case p.peekKw("INNER") && p.peekN(1).Text == "JOIN":
			p.advance()
			joinType = "INNER"
		case p.peekKw("LEFT"):
			p.advance()
			p.matchKw("OUTER")
			joinType = "LEFT"
		case p.peekKw("RIGHT"):
			p.advance()
			p.matchKw("OUTER")
			joinType = "RIGHT"
		case p.peekKw("CROSS"):
			p.advance()
			joinType = "CROSS"
		default:
			return left, nil
		}
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parseFromPrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Left: left, Right: right, Type: joinType}
		if joinType != "CROSS" {
			if p.matchKw("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				j.On = on
			} else if p.matchKw("USING") {
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					j.Using = append(j.Using, c)
					if !p.matchOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			} else {
				return nil, p.errf("JOIN requires ON or USING")
			}
		}
		left = j
	}
}

func (p *Parser) parseFromPrimary() (FromItem, error) {
	if p.matchOp("(") {
		if p.peekKw("SELECT") || p.peekKw("WITH") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			p.matchKw("AS")
			if p.cur().Kind == TokIdent && !p.reservedAfterItem(p.cur().Text) {
				alias = p.advance().Text
			}
			return &SubqueryRef{Sub: sub, Alias: alias}, nil
		}
		// Parenthesized join expression.
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fi, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if name == "DUAL" && !p.dialect.allows("dual") {
		return nil, p.errf("DUAL requires Oracle dialect")
	}
	ref := &TableRef{Name: name}
	p.matchKw("AS")
	if p.cur().Kind == TokIdent && !p.reservedAfterItem(p.cur().Text) {
		ref.Alias = p.advance().Text
	} else if p.cur().Kind == TokQuotedIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.peekOp("(") {
		p.advance()
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.matchOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.peekKw("VALUES"):
		rows, err := p.parseValuesRows()
		if err != nil {
			return nil, err
		}
		st.Rows = rows
	case p.peekKw("SELECT") || p.peekKw("WITH"):
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Query = q
	default:
		return nil, p.errf("INSERT requires VALUES or SELECT")
	}
	return st, nil
}

func (p *Parser) parseValuesRows() ([][]Expr, error) {
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		var row []Expr
		if p.matchOp("(") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.matchOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			// DB2 allows VALUES 1, 2 (single-column rows).
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
		}
		rows = append(rows, row)
		if !p.matchOp(",") {
			break
		}
	}
	return rows, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Expr: e})
		if !p.matchOp(",") {
			break
		}
	}
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	p.matchKw("FROM")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.matchKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	temp := false
	if p.matchKw("GLOBAL") {
		if !p.matchKw("TEMPORARY") && !p.matchKw("TEMP") {
			return nil, p.errf("expected TEMPORARY after GLOBAL")
		}
		temp = true
	} else if p.matchKw("TEMP") || p.matchKw("TEMPORARY") {
		temp = true
	}
	switch {
	case p.matchKw("TABLE"):
		return p.parseCreateTable(temp)
	case temp:
		return nil, p.errf("expected TABLE after TEMP")
	case p.matchKw("UNIQUE"):
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.matchKw("INDEX"):
		return p.parseCreateIndex(false)
	case p.matchKw("VIEW"):
		return p.parseCreateView()
	case p.matchKw("SEQUENCE"):
		return p.parseCreateSequence()
	case p.matchKw("ALIAS"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("FOR"); err != nil {
			return nil, err
		}
		target, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateAliasStmt{Name: name, Target: target}, nil
	}
	return nil, p.errf("unsupported CREATE object %q", p.cur().Text)
}

func (p *Parser) parseCreateTable(temp bool) (Statement, error) {
	st := &CreateTableStmt{Temp: temp}
	if p.matchKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.matchKw("AS") {
		if err := p.expectOp("("); err == nil {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.AsQuery = q
		} else {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.AsQuery = q
		}
		return st, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		cd := ColumnDef{Name: cname, Type: tname}
		for {
			if p.matchKw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				cd.NotNull = true
				continue
			}
			if p.matchKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				cd.NotNull = true
				continue
			}
			if p.matchKw("NULL") || p.matchKw("UNIQUE") {
				continue
			}
			break
		}
		st.Columns = append(st.Columns, cd)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	// Storage clauses (ON COMMIT ... for temp tables) are accepted and
	// ignored.
	if p.matchKw("ON") {
		if err := p.expectKw("COMMIT"); err != nil {
			return nil, err
		}
		if !p.matchKw("PRESERVE") && !p.matchKw("DELETE") {
			return nil, p.errf("expected PRESERVE or DELETE")
		}
		if err := p.expectKw("ROWS"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseTypeName reads a type with optional (p[,s]) suffix, validating
// dialect-gated type names.
func (p *Parser) parseTypeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	// Two-word types.
	if name == "DOUBLE" && p.matchKw("PRECISION") {
		name = "DOUBLE"
	}
	if name == "VARCHAR2" || name == "NUMBER" {
		if p.dialect != DialectOracle {
			return "", p.errf("type %s requires Oracle dialect", name)
		}
	}
	if name == "DECFLOAT" || name == "GRAPHIC" {
		if p.dialect != DialectDB2 {
			return "", p.errf("type %s requires DB2 dialect", name)
		}
	}
	if p.matchOp("(") {
		if _, err := p.parseInt(); err != nil {
			return "", err
		}
		if p.matchOp(",") {
			if _, err := p.parseInt(); err != nil {
				return "", err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *Parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{Name: name, Table: table, Unique: unique}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.matchOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseCreateView() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	start := p.cur().Pos
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	end := p.cur().Pos
	if p.atEOF() {
		end = len(p.src)
	}
	return &CreateViewStmt{Name: name, SQL: strings.TrimSpace(p.src[start:end]), Sub: sub}, nil
}

func (p *Parser) parseCreateSequence() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateSequenceStmt{Name: name, Start: 1, Incr: 1}
	for {
		switch {
		case p.matchKw("START"):
			p.matchKw("WITH")
			n, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			st.Start = n
		case p.matchKw("INCREMENT"):
			p.matchKw("BY")
			n, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			st.Incr = n
		default:
			return st, nil
		}
	}
}

func (p *Parser) parseSignedInt() (int64, error) {
	neg := false
	if p.matchOp("-") {
		neg = true
	}
	n, err := p.parseInt()
	if err != nil {
		return 0, err
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *Parser) parseDeclareTemp() (Statement, error) {
	p.advance() // DECLARE
	if !p.dialect.allows("declare-temp") {
		return nil, p.errf("DECLARE GLOBAL TEMPORARY TABLE requires DB2 dialect")
	}
	if err := p.expectKw("GLOBAL"); err != nil {
		return nil, err
	}
	if !p.matchKw("TEMPORARY") && !p.matchKw("TEMP") {
		return nil, p.errf("expected TEMPORARY")
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	return p.parseCreateTable(true)
}

func (p *Parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	kind := ""
	switch {
	case p.matchKw("TABLE"):
		kind = "TABLE"
	case p.matchKw("VIEW"):
		kind = "VIEW"
	case p.matchKw("SEQUENCE"):
		kind = "SEQUENCE"
	case p.matchKw("NICKNAME"):
		kind = "NICKNAME"
	default:
		return nil, p.errf("unsupported DROP object %q", p.cur().Text)
	}
	st := &DropStmt{Kind: kind}
	if p.matchKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseTruncate() (Statement, error) {
	p.advance() // TRUNCATE
	p.matchKw("TABLE")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: name}, nil
}

func (p *Parser) parseSet() (Statement, error) {
	p.advance() // SET
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.matchOp("=")
	p.matchKw("TO")
	var val string
	t := p.cur()
	switch t.Kind {
	case TokString, TokIdent, TokNumber, TokQuotedIdent:
		val = p.advance().Text
	default:
		return nil, p.errf("expected SET value, found %q", t.Text)
	}
	// Byte-size values like 64KB / 16MB lex as a number followed by a
	// unit identifier; glue them back together for SET SORTHEAP et al.
	if t.Kind == TokNumber && p.cur().Kind == TokIdent {
		val += p.advance().Text
	}
	return &SetStmt{Name: name, Value: val}, nil
}

func (p *Parser) parseCall() (Statement, error) {
	p.advance() // CALL
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Proc: name}
	if p.matchOp("(") {
		if !p.peekOp(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, e)
				if !p.matchOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *Parser) parseBeginBlock() (Statement, error) {
	if !p.dialect.allows("anonymous-block") {
		return nil, p.errf("anonymous blocks require Oracle dialect")
	}
	p.advance() // BEGIN
	st := &BeginBlockStmt{}
	for !p.peekKw("END") {
		if p.atEOF() {
			return nil, p.errf("unterminated BEGIN block")
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Body = append(st.Body, inner)
		if !p.matchOp(";") {
			break
		}
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return st, nil
}

// --- expressions -----------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.matchKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	if e, ok, err := p.tryParseOverlaps(); err != nil {
		return nil, err
	} else if ok {
		return e, nil
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("=") || p.peekOp("<>") || p.peekOp("!=") || p.peekOp("<") ||
			p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			op := p.advance().Text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: op, Left: left, Right: right}
		case p.peekKw("LIKE"):
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryOp{Op: "LIKE", Left: left, Right: right}
		case p.peekKw("NOT") && p.peekN(1).Text == "LIKE":
			p.advance()
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &UnaryOp{Op: "NOT", Expr: &BinaryOp{Op: "LIKE", Left: left, Right: right}}
		case p.peekKw("BETWEEN") || (p.peekKw("NOT") && p.peekN(1).Text == "BETWEEN"):
			not := p.matchKw("NOT")
			p.advance() // BETWEEN
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: not}
		case p.peekKw("IN") || (p.peekKw("NOT") && p.peekN(1).Text == "IN"):
			not := p.matchKw("NOT")
			p.advance() // IN
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			ie := &InExpr{Expr: left, Not: not}
			if p.peekKw("SELECT") || p.peekKw("WITH") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				ie.Sub = sub
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					ie.List = append(ie.List, e)
					if !p.matchOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			left = ie
		case p.peekKw("IS"):
			p.advance()
			not := p.matchKw("NOT")
			switch {
			case p.matchKw("NULL"):
				left = &IsNullExpr{Expr: left, Not: not}
			case p.matchKw("TRUE"):
				left = &IsBoolExpr{Expr: left, Want: true, Not: not}
			case p.matchKw("FALSE"):
				left = &IsBoolExpr{Expr: left, Want: false, Not: not}
			default:
				return nil, p.errf("expected NULL/TRUE/FALSE after IS")
			}
		case p.peekKw("ISNULL"):
			p.advance()
			left = &IsNullExpr{Expr: left}
		case p.peekKw("NOTNULL"):
			p.advance()
			left = &IsNullExpr{Expr: left, Not: true}
		case p.peekKw("ISTRUE"):
			p.advance()
			left = &IsBoolExpr{Expr: left, Want: true}
		case p.peekKw("ISFALSE"):
			p.advance()
			left = &IsBoolExpr{Expr: left, Want: false}
		default:
			return left, nil
		}
	}
}

// tryParseOverlaps handles "(s1, e1) OVERLAPS (s2, e2)". It requires
// lookahead: a '(' followed by an expression and a comma.
func (p *Parser) tryParseOverlaps() (Expr, bool, error) {
	if !p.peekOp("(") {
		return nil, false, nil
	}
	save := p.pos
	p.advance()
	s1, err := p.parseExpr()
	if err != nil || !p.matchOp(",") {
		p.pos = save
		return nil, false, nil
	}
	e1, err := p.parseExpr()
	if err != nil || !p.matchOp(")") || !p.peekKw("OVERLAPS") {
		p.pos = save
		return nil, false, nil
	}
	p.advance() // OVERLAPS
	if err := p.expectOp("("); err != nil {
		return nil, false, err
	}
	s2, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, false, err
	}
	e2, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, false, err
	}
	return &OverlapsExpr{S1: s1, E1: e1, S2: s2, E2: e2}, true, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekOp("+"):
			op = "+"
		case p.peekOp("-"):
			op = "-"
		case p.peekOp("||"):
			op = "||"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekOp("*"):
			op = "*"
		case p.peekOp("/"):
			op = "/"
		case p.peekOp("%"):
			op = "%"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.matchOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "-", Expr: e}, nil
	}
	if p.matchOp("+") {
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix handles ::type casts and Oracle's (+) marker.
func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("::"):
			if !p.dialect.allows("cast-colon") {
				return nil, p.errf(":: cast requires Netezza/PostgreSQL dialect")
			}
			p.advance()
			tname, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			e = &CastExpr{Expr: e, Type: tname}
		case p.peekOp("(+)"):
			if !p.dialect.allows("oracle-outer-join") {
				return nil, p.errf("(+) outer join requires Oracle dialect")
			}
			p.advance()
			ref, ok := e.(*ColumnRef)
			if !ok {
				return nil, p.errf("(+) must follow a column reference")
			}
			ref.OuterJoin = true
		default:
			return e, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		return &Literal{Val: types.NewInt(i)}, nil
	case TokString:
		p.advance()
		if t.Text == "" && p.dialect.EmptyStringIsNull() {
			// Oracle VARCHAR2 semantics: '' is NULL.
			return &Literal{Val: types.NullOf(types.KindString)}, nil
		}
		return &Literal{Val: types.NewString(t.Text)}, nil
	case TokQuotedIdent:
		p.advance()
		return p.finishColumnRef(t.Text)
	case TokOp:
		if t.Text == "(" {
			p.advance()
			if p.peekKw("SELECT") || p.peekKw("WITH") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.advance()
			e := &ParamExpr{Index: p.nparams}
			p.nparams++
			return e, nil
		}
	case TokIdent:
		switch t.Text {
		case "NULL":
			p.advance()
			return &Literal{Val: types.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: types.NewBool(false)}, nil
		case "ROWNUM":
			if !p.dialect.allows("rownum") {
				return nil, p.errf("ROWNUM requires Oracle dialect")
			}
			p.advance()
			return &RownumExpr{}, nil
		case "DATE":
			// DATE 'YYYY-MM-DD' literal.
			if p.peekN(1).Kind == TokString {
				p.advance()
				v, err := types.ParseDate(p.advance().Text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				return &Literal{Val: v}, nil
			}
		case "TIMESTAMP":
			if p.peekN(1).Kind == TokString {
				p.advance()
				v, err := types.ParseTimestamp(p.advance().Text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				return &Literal{Val: v}, nil
			}
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			tname, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{Expr: e, Type: tname}, nil
		case "EXISTS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "NEXT", "PREVIOUS":
			// DB2: NEXT VALUE FOR seq / PREVIOUS VALUE FOR seq.
			if p.peekN(1).Text == "VALUE" {
				if !p.dialect.allows("next-value-for") {
					return nil, p.errf("NEXT VALUE FOR requires DB2 dialect")
				}
				next := t.Text == "NEXT"
				p.advance()
				p.advance()
				if err := p.expectKw("FOR"); err != nil {
					return nil, err
				}
				seq, err := p.ident()
				if err != nil {
					return nil, err
				}
				return &SeqValExpr{Seq: seq, Next: next}, nil
			}
		case "CURRENT_DATE", "CURRENT_TIMESTAMP", "SYSDATE", "NOW":
			// Parsed as zero-argument function calls.
			if p.peekN(1).Text != "(" {
				p.advance()
				return &FuncCall{Name: t.Text}, nil
			}
		case "CURRENT":
			// DB2 "CURRENT DATE" / "CURRENT TIMESTAMP".
			if p.peekN(1).Text == "DATE" || p.peekN(1).Text == "TIMESTAMP" {
				p.advance()
				which := p.advance().Text
				return &FuncCall{Name: "CURRENT_" + which}, nil
			}
		}
		// Function call or column reference. Reserved clause keywords
		// cannot start an expression (catches "SELECT FROM t").
		if p.reservedAfterItem(t.Text) && p.peekN(1).Text != "(" {
			return nil, p.errf("unexpected keyword %s in expression", t.Text)
		}
		p.advance()
		if p.peekOp("(") {
			return p.parseFuncCall(t.Text)
		}
		return p.finishColumnRef(t.Text)
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

// finishColumnRef handles "name" or "qual.name", plus Oracle's
// seq.NEXTVAL / seq.CURRVAL postfix form.
func (p *Parser) finishColumnRef(first string) (Expr, error) {
	if !p.peekOp(".") {
		return &ColumnRef{Column: first}, nil
	}
	p.advance()
	second, err := p.ident()
	if err != nil {
		return nil, err
	}
	if (second == "NEXTVAL" || second == "CURRVAL") && p.dialect.allows("seq-postfix") {
		return &SeqValExpr{Seq: first, Next: second == "NEXTVAL"}, nil
	}
	return &ColumnRef{Table: first, Column: second}, nil
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.peekOp("*") {
		p.advance()
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.matchKw("DISTINCT") {
		fc.Distinct = true
	}
	if !p.peekOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.matchOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	// PERCENTILE_CONT(0.5) WITHIN GROUP (ORDER BY x)
	if p.peekKw("WITHIN") {
		p.advance()
		if err := p.expectKw("GROUP"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if err := p.expectKw("ORDER"); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.matchKw("ASC")
		p.matchKw("DESC")
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		fc.WithinGroupOrder = e
	}
	return fc, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.advance() // CASE
	ce := &CaseExpr{}
	if !p.peekKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.matchKw("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{When: w, Then: t})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.matchKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
