package sql

import "testing"

// FuzzParseSQL asserts the front end is total: on arbitrary input the
// lexer and both parser entry points must return a value or an error,
// never panic, and must uphold their structural contracts (EOF-terminated
// token streams, non-nil statements on success) under every dialect.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, COUNT(*) FROM t WHERE b > 10 GROUP BY a ORDER BY a LIMIT 5;",
		"SELECT t1.x FROM t1, t2 WHERE t1.id = t2.id(+)",
		"SELECT x::int FROM t WHERE y ISNULL",
		"VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))",
		"SELECT DECODE(a, 1, 'one', 'many') FROM DUAL",
		"SELECT ROWNUM FROM t WHERE ROWNUM <= 10",
		"SELECT NVL(a, 0) FROM t; SELECT 2;",
		"SELECT 'it''s' || \"Quoted\" FROM t -- comment\n/* block */",
		"SELECT NEXT VALUE FOR seq FROM t",
		"SELECT * FROM a JOIN b USING (id) WHERE c ISTRUE",
		"SELECT 1 /* unterminated",
		"'unterminated string",
		"\"unterminated ident",
		"\xff\xfe bogus \x00",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	dialects := []Dialect{DialectANSI, DialectOracle, DialectNetezza, DialectDB2}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err == nil {
			if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
				t.Fatalf("Lex(%q): token stream not EOF-terminated", src)
			}
		}
		for _, d := range dialects {
			st, err := Parse(src, d)
			if err == nil && st == nil {
				t.Fatalf("Parse(%q, %v): nil statement without error", src, d)
			}
			sts, err := ParseScript(src, d)
			if err == nil {
				for i, s := range sts {
					if s == nil {
						t.Fatalf("ParseScript(%q, %v): nil statement %d without error", src, d, i)
					}
				}
			}
		}
	})
}
