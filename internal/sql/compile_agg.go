package sql

import (
	"fmt"
	"strings"

	"dashdb/internal/exec"
	"dashdb/internal/types"
)

// exprKey canonicalizes an expression for structural matching between the
// GROUP BY list and the select list. Column references resolve to input
// ordinals so "region" and "t.region" compare equal.
func exprKey(e Expr, sc *scope) string {
	switch ex := e.(type) {
	case *Literal:
		return "lit:" + ex.Val.Kind().String() + ":" + ex.Val.String()
	case *ColumnRef:
		if i, err := sc.resolve(ex.Table, ex.Column); err == nil {
			return fmt.Sprintf("col#%d", i)
		}
		return "col:" + strings.ToLower(ex.Table) + "." + strings.ToLower(ex.Column)
	case *BinaryOp:
		return "(" + exprKey(ex.Left, sc) + " " + ex.Op + " " + exprKey(ex.Right, sc) + ")"
	case *UnaryOp:
		return "(" + ex.Op + " " + exprKey(ex.Expr, sc) + ")"
	case *FuncCall:
		var b strings.Builder
		b.WriteString("fn:")
		b.WriteString(strings.ToUpper(ex.Name))
		b.WriteByte('(')
		if ex.Star {
			b.WriteByte('*')
		}
		if ex.Distinct {
			b.WriteString("distinct ")
		}
		for i, a := range ex.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(exprKey(a, sc))
		}
		b.WriteByte(')')
		if ex.WithinGroupOrder != nil {
			b.WriteString("wg:" + exprKey(ex.WithinGroupOrder, sc))
		}
		return b.String()
	case *CastExpr:
		return "cast(" + exprKey(ex.Expr, sc) + " as " + strings.ToUpper(ex.Type) + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("case(")
		if ex.Operand != nil {
			b.WriteString(exprKey(ex.Operand, sc))
		}
		for _, w := range ex.Whens {
			b.WriteString("|" + exprKey(w.When, sc) + "->" + exprKey(w.Then, sc))
		}
		if ex.Else != nil {
			b.WriteString("|else:" + exprKey(ex.Else, sc))
		}
		b.WriteByte(')')
		return b.String()
	case *IsNullExpr:
		return fmt.Sprintf("isnull(%s,%v)", exprKey(ex.Expr, sc), ex.Not)
	case *BetweenExpr:
		return fmt.Sprintf("between(%s,%s,%s,%v)", exprKey(ex.Expr, sc), exprKey(ex.Lo, sc), exprKey(ex.Hi, sc), ex.Not)
	default:
		return fmt.Sprintf("%T:%p", e, e)
	}
}

// collectAggregates walks the expression and appends distinct aggregate
// calls to aggs (deduplicated via seen).
func collectAggregates(e Expr, sc *scope, seen map[string]int, aggs *[]*FuncCall) {
	switch ex := e.(type) {
	case *FuncCall:
		if _, ok := aggFuncFor(ex.Name); ok {
			k := exprKey(ex, sc)
			if _, dup := seen[k]; !dup {
				seen[k] = len(*aggs)
				*aggs = append(*aggs, ex)
			}
			return // no nested aggregates
		}
		for _, a := range ex.Args {
			collectAggregates(a, sc, seen, aggs)
		}
	case *BinaryOp:
		collectAggregates(ex.Left, sc, seen, aggs)
		collectAggregates(ex.Right, sc, seen, aggs)
	case *UnaryOp:
		collectAggregates(ex.Expr, sc, seen, aggs)
	case *CaseExpr:
		if ex.Operand != nil {
			collectAggregates(ex.Operand, sc, seen, aggs)
		}
		for _, w := range ex.Whens {
			collectAggregates(w.When, sc, seen, aggs)
			collectAggregates(w.Then, sc, seen, aggs)
		}
		if ex.Else != nil {
			collectAggregates(ex.Else, sc, seen, aggs)
		}
	case *CastExpr:
		collectAggregates(ex.Expr, sc, seen, aggs)
	case *IsNullExpr:
		collectAggregates(ex.Expr, sc, seen, aggs)
	case *BetweenExpr:
		collectAggregates(ex.Expr, sc, seen, aggs)
		collectAggregates(ex.Lo, sc, seen, aggs)
		collectAggregates(ex.Hi, sc, seen, aggs)
	}
}

// compileAggregateWithOrder compiles the aggregation pipeline and the
// ORDER BY keys of an aggregating SELECT: ordinals and output names bind
// to the projection; other expressions (e.g. ORDER BY COUNT(*)) are
// resolved against the aggregated row.
func (c *Compiler) compileAggregateWithOrder(sel *SelectStmt, items []SelectItem, cur *compiled) (exec.Operator, types.Schema, []exec.SortKey, error) {
	op, outSchema, mapping, err := c.compileAggregate(sel, items, cur)
	if err != nil {
		return nil, nil, nil, err
	}
	outScope := &scope{}
	for _, col := range outSchema {
		outScope.add("", col.Name, col.Kind)
	}
	var keys []exec.SortKey
	for _, oi := range sel.OrderBy {
		var e exec.Expr
		switch {
		case oi.Ordinal > 0:
			if oi.Ordinal > len(outSchema) {
				return nil, nil, nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", oi.Ordinal)
			}
			e = exec.ColRef(oi.Ordinal - 1)
		default:
			probe := oi.Expr
			if ref, ok := probe.(*ColumnRef); ok && ref.Table != "" {
				if _, rerr := outScope.resolve("", ref.Column); rerr == nil {
					probe = &ColumnRef{Column: ref.Column}
				}
			}
			var cerr error
			e, cerr = c.compileExpr(probe, outScope)
			if cerr != nil {
				// The post-projection schema does not have it; ORDER BY
				// over select-item expressions: locate the matching item.
				found := false
				for i, it := range items {
					if exprKey(it.Expr, cur.scope) == exprKey(oi.Expr, cur.scope) {
						e = exec.ColRef(i)
						found = true
						break
					}
				}
				if !found {
					return nil, nil, nil, cerr
				}
			}
		}
		keys = append(keys, exec.SortKey{Expr: e, Desc: oi.Desc})
	}
	_ = mapping
	return op, outSchema, keys, nil
}

// compileAggregate builds GroupBy → Having → Project for an aggregating
// SELECT block.
func (c *Compiler) compileAggregate(sel *SelectStmt, items []SelectItem, cur *compiled) (exec.Operator, types.Schema, map[string]int, error) {
	inSc := cur.scope

	// Resolve GROUP BY terms: ordinals and select-list aliases (Netezza's
	// "GROUP BY output column name") resolve to the item's expression.
	var groupExprs []Expr
	for _, g := range sel.GroupBy {
		if lit, ok := g.(*Literal); ok {
			if n, isInt := lit.Val.AsInt(); isInt && lit.Val.Kind() == types.KindInt {
				if n < 1 || int(n) > len(items) {
					return nil, nil, nil, fmt.Errorf("sql: GROUP BY ordinal %d out of range", n)
				}
				groupExprs = append(groupExprs, items[n-1].Expr)
				continue
			}
		}
		if ref, ok := g.(*ColumnRef); ok && ref.Table == "" {
			if _, err := inSc.resolve("", ref.Column); err != nil {
				matched := false
				for _, it := range items {
					if strings.EqualFold(it.Alias, ref.Column) {
						groupExprs = append(groupExprs, it.Expr)
						matched = true
						break
					}
				}
				if matched {
					continue
				}
			}
		}
		groupExprs = append(groupExprs, g)
	}

	// Collect aggregate calls from the select list and HAVING.
	seen := make(map[string]int)
	var aggCalls []*FuncCall
	for _, it := range items {
		collectAggregates(it.Expr, inSc, seen, &aggCalls)
	}
	if sel.Having != nil {
		collectAggregates(sel.Having, inSc, seen, &aggCalls)
	}

	// Build the GroupByOp.
	g := &exec.GroupByOp{Child: cur.op, Gov: c.Gov}
	mapping := make(map[string]int) // exprKey -> post-agg ordinal
	for gi, ge := range groupExprs {
		ce, err := c.compileExpr(ge, inSc)
		if err != nil {
			return nil, nil, nil, err
		}
		g.GroupBy = append(g.GroupBy, ce)
		name := fmt.Sprintf("GRP%d", gi+1)
		if ref, ok := ge.(*ColumnRef); ok {
			name = ref.Column
		}
		g.GroupCols = append(g.GroupCols, types.Column{Name: name, Kind: types.KindNull, Nullable: true})
		mapping[exprKey(ge, inSc)] = gi
	}
	for ai, fc := range aggCalls {
		spec, err := c.buildAggSpec(fc, inSc)
		if err != nil {
			return nil, nil, nil, err
		}
		g.Aggs = append(g.Aggs, spec)
		mapping[exprKey(fc, inSc)] = len(groupExprs) + ai
	}

	var op exec.Operator = g

	// Parallel fusion: when the aggregation input is a bare columnar scan
	// (all predicates pushed down, no residual filter or join) and every
	// aggregate merges exactly, replace scan→group-by with the
	// morsel-driven ParallelGroupByOp at the session's effective degree.
	// MEDIAN/PERCENTILE keep the serial path (their state does not merge).
	if c.Parallelism > 1 && exec.MergeableAggs(g.Aggs) {
		if scan, ok := cur.op.(*exec.ScanOp); ok {
			op = &exec.ParallelGroupByOp{
				Table:      scan.Table,
				Snap:       scan.Snap,
				Preds:      scan.Preds,
				Projection: scan.Projection,
				GroupBy:    g.GroupBy,
				GroupCols:  g.GroupCols,
				Aggs:       g.Aggs,
				Dop:        c.Parallelism,
				Gov:        c.Gov,
				Compressed: !c.NoCompressedExec,
			}
		}
	}

	// HAVING, rewritten against the aggregated row.
	if sel.Having != nil {
		pred, err := c.compilePostAgg(sel.Having, mapping, inSc)
		if err != nil {
			return nil, nil, nil, err
		}
		op = &exec.FilterOp{Child: op, Pred: pred}
	}

	// Final projection, rewritten against the aggregated row.
	exprs := make([]exec.Expr, len(items))
	outSchema := make(types.Schema, len(items))
	for i, it := range items {
		e, err := c.compilePostAgg(it.Expr, mapping, inSc)
		if err != nil {
			return nil, nil, nil, err
		}
		exprs[i] = e
		outSchema[i] = types.Column{Name: c.itemName(it, i), Kind: types.KindNull, Nullable: true}
	}
	op = &exec.ProjectOp{Child: op, Exprs: exprs, Out: outSchema}
	return op, outSchema, mapping, nil
}

// buildAggSpec converts an aggregate FuncCall into an executor AggSpec.
func (c *Compiler) buildAggSpec(fc *FuncCall, sc *scope) (exec.AggSpec, error) {
	fn, _ := aggFuncFor(fc.Name)
	spec := exec.AggSpec{Func: fn, Name: fc.Name}
	switch fn {
	case exec.AggCount:
		if fc.Star {
			spec.Func = exec.AggCountStar
			return spec, nil
		}
		if fc.Distinct {
			spec.Func = exec.AggCountDistinct
		}
		if len(fc.Args) != 1 {
			return spec, fmt.Errorf("sql: COUNT expects one argument")
		}
		arg, err := c.compileExpr(fc.Args[0], sc)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		return spec, nil
	case exec.AggPercentileCont, exec.AggPercentileDisc:
		if len(fc.Args) != 1 || fc.WithinGroupOrder == nil {
			return spec, fmt.Errorf("sql: %s requires (p) WITHIN GROUP (ORDER BY expr)", fc.Name)
		}
		lit, ok := fc.Args[0].(*Literal)
		if !ok {
			return spec, fmt.Errorf("sql: %s requires a literal percentile", fc.Name)
		}
		p, okf := lit.Val.AsFloat()
		if !okf || p < 0 || p > 1 {
			return spec, fmt.Errorf("sql: percentile must be in [0,1]")
		}
		spec.Param = p
		arg, err := c.compileExpr(fc.WithinGroupOrder, sc)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		return spec, nil
	case exec.AggCovarPop, exec.AggCovarSamp:
		if len(fc.Args) != 2 {
			return spec, fmt.Errorf("sql: %s expects two arguments", fc.Name)
		}
		a1, err := c.compileExpr(fc.Args[0], sc)
		if err != nil {
			return spec, err
		}
		a2, err := c.compileExpr(fc.Args[1], sc)
		if err != nil {
			return spec, err
		}
		spec.Arg, spec.Arg2 = a1, a2
		return spec, nil
	default:
		if len(fc.Args) != 1 {
			return spec, fmt.Errorf("sql: %s expects one argument", fc.Name)
		}
		arg, err := c.compileExpr(fc.Args[0], sc)
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
		return spec, nil
	}
}

// compilePostAgg compiles an expression against the aggregated row:
// subtrees matching a GROUP BY expression or an aggregate call become
// column references into the group output; other column references are
// illegal (not grouped).
func (c *Compiler) compilePostAgg(e Expr, mapping map[string]int, inSc *scope) (exec.Expr, error) {
	if i, ok := mapping[exprKey(e, inSc)]; ok {
		return exec.ColRef(i), nil
	}
	switch ex := e.(type) {
	case *Literal:
		return exec.Const{V: ex.Val}, nil
	case *ColumnRef:
		return nil, fmt.Errorf("sql: column %s must appear in GROUP BY or inside an aggregate", ex.Column)
	case *BinaryOp:
		l, err := c.compilePostAgg(ex.Left, mapping, inSc)
		if err != nil {
			return nil, err
		}
		r, err := c.compilePostAgg(ex.Right, mapping, inSc)
		if err != nil {
			return nil, err
		}
		rebuilt := &BinaryOp{Op: ex.Op}
		return c.compileBinaryPre(rebuilt, l, r)
	case *UnaryOp:
		inner, err := c.compilePostAgg(ex.Expr, mapping, inSc)
		if err != nil {
			return nil, err
		}
		op := ex.Op
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			switch op {
			case "NOT":
				return not3(v), nil
			case "-":
				if v.IsNull() {
					return types.Null, nil
				}
				if v.Kind() == types.KindInt {
					return types.NewInt(-v.Int()), nil
				}
				f, _ := v.AsFloat()
				return types.NewFloat(-f), nil
			}
			return types.Null, fmt.Errorf("sql: unsupported unary %q", op)
		}), nil
	case *FuncCall:
		// Scalar function over aggregated values.
		fn, ok := c.UDX.Lookup(ex.Name)
		if !ok {
			var err error
			fn, err = LookupFunc(ex.Name, c.Dialect)
			if err != nil {
				return nil, err
			}
		}
		args := make([]exec.Expr, len(ex.Args))
		for i, a := range ex.Args {
			ce, err := c.compilePostAgg(a, mapping, inSc)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		env := c.Env
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			vals := make([]types.Value, len(args))
			for i, a := range args {
				v, err := a.Eval(row)
				if err != nil {
					return types.Null, err
				}
				vals[i] = v
			}
			return fn.Fn(env, vals)
		}), nil
	case *CastExpr:
		kind, err := TypeKindFor(ex.Type)
		if err != nil {
			return nil, err
		}
		inner, err := c.compilePostAgg(ex.Expr, mapping, inSc)
		if err != nil {
			return nil, err
		}
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			return types.Coerce(v, kind)
		}), nil
	case *CaseExpr:
		// Compile arms via post-agg resolution.
		rebuilt := &CaseExpr{}
		var err error
		var operand exec.Expr
		if ex.Operand != nil {
			operand, err = c.compilePostAgg(ex.Operand, mapping, inSc)
			if err != nil {
				return nil, err
			}
		}
		type arm struct{ when, then exec.Expr }
		arms := make([]arm, len(ex.Whens))
		for i, w := range ex.Whens {
			we, err := c.compilePostAgg(w.When, mapping, inSc)
			if err != nil {
				return nil, err
			}
			te, err := c.compilePostAgg(w.Then, mapping, inSc)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{when: we, then: te}
		}
		var elseE exec.Expr
		if ex.Else != nil {
			elseE, err = c.compilePostAgg(ex.Else, mapping, inSc)
			if err != nil {
				return nil, err
			}
		}
		_ = rebuilt
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			var opv types.Value
			if operand != nil {
				var err error
				opv, err = operand.Eval(row)
				if err != nil {
					return types.Null, err
				}
			}
			for _, a := range arms {
				w, err := a.when.Eval(row)
				if err != nil {
					return types.Null, err
				}
				hit := false
				if operand != nil {
					hit = types.Equal(opv, w)
				} else {
					hit = !w.IsNull() && w.Kind() == types.KindBool && w.Bool()
				}
				if hit {
					return a.then.Eval(row)
				}
			}
			if elseE != nil {
				return elseE.Eval(row)
			}
			return types.Null, nil
		}), nil
	case *IsNullExpr:
		inner, err := c.compilePostAgg(ex.Expr, mapping, inSc)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := inner.Eval(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != not), nil
		}), nil
	case *BetweenExpr:
		val, err := c.compilePostAgg(ex.Expr, mapping, inSc)
		if err != nil {
			return nil, err
		}
		lo, err := c.compilePostAgg(ex.Lo, mapping, inSc)
		if err != nil {
			return nil, err
		}
		hi, err := c.compilePostAgg(ex.Hi, mapping, inSc)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			v, err := val.Eval(row)
			if err != nil {
				return types.Null, err
			}
			l, err := lo.Eval(row)
			if err != nil {
				return types.Null, err
			}
			h, err := hi.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() || l.IsNull() || h.IsNull() {
				return types.Null, nil
			}
			in := types.Compare(v, l) >= 0 && types.Compare(v, h) <= 0
			return types.NewBool(in != not), nil
		}), nil
	}
	return nil, fmt.Errorf("sql: unsupported expression %T after aggregation", e)
}

// compileBinaryPre builds the runtime evaluator for a binary operator
// whose operands are already compiled.
func (c *Compiler) compileBinaryPre(ex *BinaryOp, left, right exec.Expr) (exec.Expr, error) {
	op := ex.Op
	switch op {
	case "AND":
		return &exec.AndExpr{L: left, R: right}, nil
	case "OR":
		return &exec.OrExpr{L: left, R: right}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, _ := cmpOpFor(op)
		return &exec.CmpExpr{Op: cmp, L: left, R: right}, nil
	case "||":
		return exec.FuncExpr(func(row types.Row) (types.Value, error) {
			a, err := left.Eval(row)
			if err != nil {
				return types.Null, err
			}
			b, err := right.Eval(row)
			if err != nil {
				return types.Null, err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null, nil
			}
			return types.NewString(a.String() + b.String()), nil
		}), nil
	default:
		return &exec.ArithExpr{Op: op, L: left, R: right}, nil
	}
}
