package sql

import (
	"fmt"

	"dashdb/internal/geo"
	"dashdb/internal/types"
)

// Geospatial function surface per SQL/MM (§II.C.5). Geometries travel as
// WKT strings, so any VARCHAR column can hold location data; functions
// parse on use. Available in every dialect (the paper ships them with the
// base engine).

func geomArg(v types.Value) (*geo.Geometry, error) {
	if v.Kind() != types.KindString {
		return nil, fmt.Errorf("sql: expected WKT geometry text, got %s", v.Kind())
	}
	return geo.ParseWKT(v.Str())
}

// geoFn wraps a unary geometry function.
func geoFn(f func(g *geo.Geometry) (types.Value, error)) func(*EvalEnv, []types.Value) (types.Value, error) {
	return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		g, err := geomArg(a[0])
		if err != nil {
			return types.Null, err
		}
		return f(g)
	})
}

// geoFn2 wraps a binary geometry function.
func geoFn2(f func(g1, g2 *geo.Geometry) (types.Value, error)) func(*EvalEnv, []types.Value) (types.Value, error) {
	return strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		g1, err := geomArg(a[0])
		if err != nil {
			return types.Null, err
		}
		g2, err := geomArg(a[1])
		if err != nil {
			return types.Null, err
		}
		return f(g1, g2)
	})
}

func init() {
	register(&ScalarFunc{Name: "ST_POINT", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		x, ok1 := a[0].AsFloat()
		y, ok2 := a[1].AsFloat()
		if !ok1 || !ok2 {
			return types.Null, fmt.Errorf("sql: ST_POINT expects numeric coordinates")
		}
		g := &geo.Geometry{Kind: geo.KindPoint, Pts: []geo.XY{{X: x, Y: y}}}
		return types.NewString(g.WKT()), nil
	})})
	register(&ScalarFunc{Name: "ST_GEOMFROMTEXT", MinArgs: 1, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		g, err := geomArg(a[0]) // optional SRID argument accepted, ignored
		if err != nil {
			return types.Null, err
		}
		return types.NewString(g.WKT()), nil
	})})
	alias("ST_GEOMETRYFROMTEXT", "ST_GEOMFROMTEXT")
	register(&ScalarFunc{Name: "ST_ASTEXT", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewString(g.WKT()), nil
	})})
	register(&ScalarFunc{Name: "ST_GEOMETRYTYPE", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewString("ST_" + g.Kind.String()), nil
	})})
	register(&ScalarFunc{Name: "ST_X", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		if g.Kind != geo.KindPoint {
			return types.Null, fmt.Errorf("sql: ST_X expects a POINT")
		}
		return types.NewFloat(g.Pts[0].X), nil
	})})
	register(&ScalarFunc{Name: "ST_Y", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		if g.Kind != geo.KindPoint {
			return types.Null, fmt.Errorf("sql: ST_Y expects a POINT")
		}
		return types.NewFloat(g.Pts[0].Y), nil
	})})
	register(&ScalarFunc{Name: "ST_DISTANCE", MinArgs: 2, MaxArgs: 2, Fn: geoFn2(func(g1, g2 *geo.Geometry) (types.Value, error) {
		return types.NewFloat(g1.Distance(g2)), nil
	})})
	register(&ScalarFunc{Name: "ST_CONTAINS", MinArgs: 2, MaxArgs: 2, Fn: geoFn2(func(g1, g2 *geo.Geometry) (types.Value, error) {
		return types.NewBool(g1.Contains(g2)), nil
	})})
	register(&ScalarFunc{Name: "ST_WITHIN", MinArgs: 2, MaxArgs: 2, Fn: geoFn2(func(g1, g2 *geo.Geometry) (types.Value, error) {
		return types.NewBool(g1.Within(g2)), nil
	})})
	register(&ScalarFunc{Name: "ST_INTERSECTS", MinArgs: 2, MaxArgs: 2, Fn: geoFn2(func(g1, g2 *geo.Geometry) (types.Value, error) {
		return types.NewBool(g1.Intersects(g2)), nil
	})})
	register(&ScalarFunc{Name: "ST_AREA", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewFloat(g.Area()), nil
	})})
	register(&ScalarFunc{Name: "ST_LENGTH", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewFloat(g.Length()), nil
	})})
	register(&ScalarFunc{Name: "ST_NUMPOINTS", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewInt(int64(g.NumPoints())), nil
	})})
	register(&ScalarFunc{Name: "ST_CENTROID", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		c := g.Centroid()
		p := &geo.Geometry{Kind: geo.KindPoint, Pts: []geo.XY{c}}
		return types.NewString(p.WKT()), nil
	})})
	register(&ScalarFunc{Name: "ST_ENVELOPE", MinArgs: 1, MaxArgs: 1, Fn: geoFn(func(g *geo.Geometry) (types.Value, error) {
		return types.NewString(g.Envelope().WKT()), nil
	})})
	register(&ScalarFunc{Name: "ST_BUFFER", MinArgs: 2, MaxArgs: 2, Fn: strict(func(_ *EvalEnv, a []types.Value) (types.Value, error) {
		g, err := geomArg(a[0])
		if err != nil {
			return types.Null, err
		}
		r, ok := a[1].AsFloat()
		if !ok {
			return types.Null, fmt.Errorf("sql: ST_BUFFER expects a numeric radius")
		}
		buf, err := g.Buffer(r, 32)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(buf.WKT()), nil
	})})
}
