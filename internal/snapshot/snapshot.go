// Package snapshot provides epoch-based snapshot isolation: a publisher
// swaps immutable state versions (epochs) behind a single atomic pointer,
// readers pin the current epoch for the lifetime of a query and observe a
// frozen view with no locks on the read path, and resources owned by a
// superseded epoch are reclaimed only after it — and every epoch before
// it — has fully drained.
//
// The protocol (DESIGN.md §13):
//
//   - Writers prepare a fully formed immutable state S and call Publish.
//     The swap is one atomic pointer store; there is never a moment when
//     readers can observe a half-built state.
//   - Readers call Pin, which returns the current epoch with its
//     reference count raised. Everything reachable from Epoch.State is
//     immutable for the epoch's lifetime; the reader drops the pin with
//     Release when the query finishes.
//   - Publish may attach cleanup functions. They are attached to the
//     epoch being superseded (the last epoch that references the doomed
//     resources) and run only once that epoch and all older epochs have
//     drained — epochs retire strictly in order, so a cleanup never runs
//     while any earlier snapshot could still reach the resource.
//
// The reference count starts at 1: the publisher's own reference, dropped
// when the epoch is superseded. A pin therefore can only observe a count
// of zero on an epoch that is both superseded and drained, in which case
// Pin retries against the new current epoch — readers can never resurrect
// a retired epoch whose cleanups may already be running.
package snapshot

import (
	"sync"
	"sync/atomic"
)

// Epoch is one published immutable state version.
type Epoch[S any] struct {
	seq   uint64
	state S
	pins  atomic.Int64
	mgr   *Manager[S]
	// cleanups run when this epoch and all older epochs have drained.
	// Written under mgr.mu while the epoch is current; read by advance
	// under mgr.mu after it is superseded.
	cleanups []func()
}

// Seq returns the epoch's sequence number (monotonically increasing from
// 1; 1 is the manager's initial state).
func (e *Epoch[S]) Seq() uint64 { return e.seq }

// State returns the epoch's immutable payload.
func (e *Epoch[S]) State() S { return e.state }

// tryPin raises the reference count unless the epoch has already drained
// (count zero). The CAS loop makes "increment if nonzero" atomic: a
// drained epoch stays drained.
func (e *Epoch[S]) tryPin() bool {
	for {
		p := e.pins.Load()
		if p <= 0 {
			return false
		}
		if e.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// Release drops one pin. When the last pin of a superseded epoch drops,
// the manager advances the drain frontier and runs any cleanups whose
// epochs are now fully unreachable. Each Pin must be matched by exactly
// one Release.
func (e *Epoch[S]) Release() {
	if e.pins.Add(-1) == 0 {
		e.mgr.advance()
	}
}

// Manager publishes epochs for one protected object (one columnar table,
// say). The zero value is not usable; construct with NewManager.
type Manager[S any] struct {
	cur atomic.Pointer[Epoch[S]]

	mu      sync.Mutex // guards seq, queue, cleanups attachment
	seq     uint64
	queue   []*Epoch[S] // superseded epochs awaiting drain, oldest first
	drained atomic.Uint64
}

// NewManager creates a manager whose current epoch holds initial.
func NewManager[S any](initial S) *Manager[S] {
	m := &Manager[S]{seq: 1}
	e := &Epoch[S]{seq: 1, state: initial, mgr: m}
	e.pins.Store(1) // publisher reference
	m.cur.Store(e)
	return m
}

// Pin returns the current epoch with its reference count raised. The
// caller must Release it exactly once. Pin never blocks and never fails:
// if the loaded epoch drained between the load and the pin (a publish
// raced in and every reader left), it retries against the new current
// epoch.
func (m *Manager[S]) Pin() *Epoch[S] {
	for {
		e := m.cur.Load()
		if e.tryPin() {
			return e
		}
	}
}

// Current returns the current epoch without pinning it. The returned
// state is safe to read (it is immutable), but the epoch may be
// superseded at any moment — use Pin when the view must stay stable
// across multiple reads. Intended for monitoring and point lookups.
func (m *Manager[S]) Current() *Epoch[S] { return m.cur.Load() }

// Publish installs state as the new current epoch and returns it. The
// optional cleanups are attached to the epoch being superseded and run
// once it and every older epoch have drained — use them to free
// resources (storage pages, files) that the new state no longer
// references but pinned readers still might.
//
// Publishers are expected to be serialized externally (the table's writer
// mutex); Publish is nevertheless safe to call concurrently.
func (m *Manager[S]) Publish(state S, cleanups ...func()) *Epoch[S] {
	m.mu.Lock()
	m.seq++
	e := &Epoch[S]{seq: m.seq, state: state, mgr: m}
	e.pins.Store(1)
	old := m.cur.Swap(e)
	old.cleanups = append(old.cleanups, cleanups...)
	m.queue = append(m.queue, old)
	m.mu.Unlock()
	// Drop the publisher's reference on the superseded epoch; if no
	// reader holds it, this advances the drain frontier immediately.
	old.Release()
	return e
}

// advance pops fully drained epochs off the head of the retire queue, in
// publication order, and runs their cleanups outside the lock. An epoch
// deeper in the queue with zero pins must still wait: an older epoch may
// be pinned, and its readers may reach resources the younger epoch's
// cleanups would free.
func (m *Manager[S]) advance() {
	var run []func()
	m.mu.Lock()
	for len(m.queue) > 0 && m.queue[0].pins.Load() == 0 {
		run = append(run, m.queue[0].cleanups...)
		m.queue[0].cleanups = nil
		m.queue = m.queue[1:]
		m.drained.Add(1)
	}
	m.mu.Unlock()
	for _, f := range run {
		f()
	}
}

// Info is a point-in-time monitoring snapshot of the manager.
type Info struct {
	// Seq is the current epoch's sequence number.
	Seq uint64
	// PinnedReaders counts reader pins across the current and all
	// superseded epochs (the publisher's own reference is excluded).
	PinnedReaders int64
	// Behind counts superseded epochs still awaiting drain: old readers
	// holding back resource reclamation.
	Behind int
	// Drained counts epochs fully retired since the manager was created.
	Drained uint64
}

// Info reports the manager's monitoring counters (MON_SNAPSHOTS).
func (m *Manager[S]) Info() Info {
	m.mu.Lock()
	cur := m.cur.Load()
	info := Info{
		Seq:     cur.seq,
		Behind:  len(m.queue),
		Drained: m.drained.Load(),
	}
	if p := cur.pins.Load() - 1; p > 0 { // exclude the publisher reference
		info.PinnedReaders += p
	}
	for _, e := range m.queue {
		if p := e.pins.Load(); p > 0 {
			info.PinnedReaders += p
		}
	}
	m.mu.Unlock()
	return info
}
