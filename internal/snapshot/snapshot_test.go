package snapshot

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPinSeesPublishedState(t *testing.T) {
	m := NewManager(10)
	e := m.Pin()
	if e.State() != 10 || e.Seq() != 1 {
		t.Fatalf("initial epoch = (%d, seq %d), want (10, 1)", e.State(), e.Seq())
	}
	m.Publish(20)
	// The pinned epoch keeps its state; a fresh pin sees the new one.
	if e.State() != 10 {
		t.Fatalf("pinned epoch mutated: %d", e.State())
	}
	e2 := m.Pin()
	if e2.State() != 20 || e2.Seq() != 2 {
		t.Fatalf("after publish = (%d, seq %d), want (20, 2)", e2.State(), e2.Seq())
	}
	e.Release()
	e2.Release()
}

func TestCleanupWaitsForDrain(t *testing.T) {
	m := NewManager(1)
	reader := m.Pin()

	var cleaned atomic.Bool
	m.Publish(2, func() { cleaned.Store(true) })
	if cleaned.Load() {
		t.Fatal("cleanup ran while the superseded epoch was pinned")
	}
	if got := m.Info(); got.Behind != 1 || got.PinnedReaders != 1 {
		t.Fatalf("Info = %+v, want Behind=1 PinnedReaders=1", got)
	}
	reader.Release()
	if !cleaned.Load() {
		t.Fatal("cleanup did not run after the last pin dropped")
	}
	if got := m.Info(); got.Behind != 0 || got.Drained != 1 {
		t.Fatalf("Info after drain = %+v, want Behind=0 Drained=1", got)
	}
}

func TestCleanupRunsImmediatelyWithoutReaders(t *testing.T) {
	m := NewManager(1)
	ran := false
	m.Publish(2, func() { ran = true })
	if !ran {
		t.Fatal("cleanup deferred although nothing was pinned")
	}
}

// TestDrainOrder pins an OLD epoch and verifies that a YOUNGER superseded
// epoch's cleanup still waits: epochs retire strictly in publication
// order, because readers of the old epoch may reach resources the young
// epoch's cleanup would free.
func TestDrainOrder(t *testing.T) {
	m := NewManager(1)
	oldReader := m.Pin() // pins epoch 1

	var order []int
	m.Publish(2, func() { order = append(order, 1) })
	young := m.Pin() // pins epoch 2
	m.Publish(3, func() { order = append(order, 2) })
	young.Release() // epoch 2 drained, but epoch 1 still pinned
	if len(order) != 0 {
		t.Fatalf("cleanups ran out of order: %v", order)
	}
	oldReader.Release()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("cleanup order = %v, want [1 2]", order)
	}
}

func TestReleaseIsExact(t *testing.T) {
	m := NewManager(1)
	a := m.Pin()
	b := m.Pin()
	var cleaned atomic.Bool
	m.Publish(2, func() { cleaned.Store(true) })
	a.Release()
	if cleaned.Load() {
		t.Fatal("cleanup ran with one pin outstanding")
	}
	b.Release()
	if !cleaned.Load() {
		t.Fatal("cleanup missing after final release")
	}
}

// TestConcurrentPinPublish hammers Pin/Release against Publish under the
// race detector: every reader must observe a fully formed state, every
// cleanup must run exactly once, and the retire queue must fully drain.
func TestConcurrentPinPublish(t *testing.T) {
	type state struct{ a, b int } // invariant: b == 2*a
	m := NewManager(&state{1, 2})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := m.Pin()
				s := e.State()
				if s.b != 2*s.a {
					t.Errorf("torn state: %+v", *s)
					e.Release()
					return
				}
				e.Release()
			}
		}()
	}
	var cleanups atomic.Int64
	const publishes = 2000
	for i := 2; i < publishes+2; i++ {
		m.Publish(&state{i, 2 * i}, func() { cleanups.Add(1) })
	}
	close(stop)
	wg.Wait()
	// All readers have released; the queue must drain completely.
	if got := m.Info(); got.Behind != 0 || got.PinnedReaders != 0 {
		t.Fatalf("Info after quiesce = %+v, want fully drained", got)
	}
	if n := cleanups.Load(); n != publishes {
		t.Fatalf("cleanups ran %d times, want %d", n, publishes)
	}
}
