package dashdb

import (
	"time"

	"dashdb/internal/clusterfs"
	"dashdb/internal/deploy"
	"dashdb/internal/mpp"
	"dashdb/internal/spark"
)

// NodeSpec describes one cluster server.
type NodeSpec = mpp.NodeSpec

// TableOptions control MPP table placement.
type TableOptions = mpp.TableOptions

// Cluster is a deployed MPP dashDB Local cluster.
type Cluster struct {
	inner *mpp.Cluster
	// DeployTime is the simulated wall-clock time the deployment took
	// (the paper's < 30 minutes claim, experiment F-A).
	DeployTime time.Duration
	// Timeline is the per-phase deployment schedule.
	Timeline deploy.Timeline

	dispatcher *spark.Dispatcher
}

// HostSpec describes one deployment host for Deploy.
type HostSpec struct {
	Name     string
	Cores    int
	RAMBytes int64
}

// Deploy simulates the paper's one-command cluster deployment: pull the
// dashDB Local image to every host, start containers, auto-configure each
// engine from its hardware, and form the MPP cluster over a simulated
// clustered filesystem. The returned cluster is immediately usable.
func Deploy(hosts []HostSpec) (*Cluster, error) {
	reg := deploy.NewRegistry()
	reg.Push(deploy.Image{Name: "dashdb-local", Version: "1.0", SizeBytes: 4 << 30})
	var dh []*deploy.Host
	for _, h := range hosts {
		dh = append(dh, deploy.NewHost(h.Name, deploy.Hardware{
			Cores:        h.Cores,
			RAMBytes:     h.RAMBytes,
			StorageBytes: 1 << 40,
		}))
	}
	dep, err := deploy.DeployCluster(reg, dh, "dashdb-local", "1.0", clusterfs.New())
	if err != nil {
		return nil, err
	}
	return &Cluster{
		inner:      dep.Cluster,
		DeployTime: dep.Timeline.Total(),
		Timeline:   dep.Timeline,
	}, nil
}

// NewCluster forms a cluster directly (no deployment simulation): the
// programmatic path used by tests and benchmarks.
func NewCluster(nodes []NodeSpec, shardsPerNode int) (*Cluster, error) {
	c, err := mpp.NewCluster(nodes, shardsPerNode, clusterfs.New())
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// Exec parses and executes a SQL statement cluster-wide (ANSI dialect).
func (c *Cluster) Exec(sqlText string) (*Result, error) { return c.inner.Query(sqlText) }

// ExecDialect is Exec under an explicit dialect.
func (c *Cluster) ExecDialect(sqlText string, d Dialect) (*Result, error) {
	return c.inner.QueryDialect(sqlText, d)
}

// CreateTable creates a table with explicit placement (distribution key
// or replication), which the SQL path cannot express.
func (c *Cluster) CreateTable(name string, schema Schema, opts TableOptions) error {
	return c.inner.CreateTable(name, schema, opts)
}

// Insert routes rows to shards by the table's distribution key.
func (c *Cluster) Insert(table string, rows []Row) error { return c.inner.Insert(table, rows) }

// Rows returns a table's cluster-wide live row count.
func (c *Cluster) Rows(table string) (int, error) { return c.inner.Rows(table) }

// Assignment renders the current shard→node balance, e.g. "A:6 B:6 C:6".
func (c *Cluster) Assignment() string { return c.inner.Assignment() }

// FailNode simulates a server failure: its shards re-associate across the
// survivors (Figure 9) and queries keep working.
func (c *Cluster) FailNode(name string) error { return c.inner.FailNode(name) }

// RemoveNode performs elastic contraction.
func (c *Cluster) RemoveNode(name string) error { return c.inner.RemoveNode(name) }

// AddNode performs elastic growth or reinstates a repaired node.
func (c *Cluster) AddNode(spec NodeSpec) error { return c.inner.AddNode(spec) }

// Internal exposes the MPP layer for advanced integrations.
func (c *Cluster) Internal() *mpp.Cluster { return c.inner }

// Spark returns (starting on first use) the integrated analytics runtime:
// the dispatcher with per-user cluster managers and shard-collocated
// workers of §II.D.
func (c *Cluster) Spark() (*spark.Dispatcher, error) {
	if c.dispatcher != nil {
		return c.dispatcher, nil
	}
	d, err := spark.NewDispatcher(c.inner)
	if err != nil {
		return nil, err
	}
	c.dispatcher = d
	return d, nil
}

// Close releases cluster resources (the Spark data servers).
func (c *Cluster) Close() {
	if c.dispatcher != nil {
		c.dispatcher.Close()
		c.dispatcher = nil
	}
}

// Checkpoint persists every table (pages were already on the clustered
// filesystem; this adds dictionaries, synopses and counters) plus a
// cluster manifest, enabling Restore.
func (c *Cluster) Checkpoint() error { return c.inner.Checkpoint() }

// FSSnapshot deep-copies the clustered filesystem — the transport unit of
// §II.E's portability story ("copy the filesystem, deploy anywhere").
func (c *Cluster) FSSnapshot() *clusterfs.FS { return c.inner.FS().Snapshot() }

// Restore builds a cluster over any node topology from a checkpointed
// clustered filesystem (usually an FSSnapshot of another cluster).
func Restore(nodes []NodeSpec, fs *clusterfs.FS) (*Cluster, error) {
	inner, err := mpp.Restore(nodes, fs)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// --- distributed (multi-process) runtime -------------------------------------

// NetNode describes one shard-server process of a distributed cluster.
type NetNode = mpp.NetNode

// NetCluster is the multi-process MPP coordinator: shards live behind
// shard servers (dashdb-local -shard-listen) on a shared clustered
// filesystem; queries scatter over RPC, distributed joins run through
// the partitioned-hash shuffle, and node deaths fail over onto the
// survivors (§II.E, Figure 9).
type NetCluster struct {
	inner *mpp.NetCluster
}

// ConnectCluster forms a coordinator over running shard servers. When
// the clustered filesystem already holds a manifest the existing tables
// (and shard count) are restored; otherwise a fresh cluster with
// nShards shards is bootstrapped.
func ConnectCluster(nodes []NetNode, nShards int, fs *clusterfs.FS) (*NetCluster, error) {
	inner, err := mpp.OpenNetCluster(nodes, fs)
	if err != nil {
		inner, err = mpp.NewNetCluster(nodes, nShards, fs)
		if err != nil {
			return nil, err
		}
	}
	return &NetCluster{inner: inner}, nil
}

// Exec runs one SQL statement cluster-wide (ANSI dialect).
func (c *NetCluster) Exec(sqlText string) (*Result, error) { return c.inner.Query(sqlText) }

// ExecDialect runs one SQL statement under an explicit dialect.
func (c *NetCluster) ExecDialect(sqlText string, d Dialect) (*Result, error) {
	return c.inner.QueryDialect(sqlText, d)
}

// CreateTable registers a distributed table.
func (c *NetCluster) CreateTable(name string, schema Schema, opts TableOptions) error {
	return c.inner.CreateTable(name, schema, opts)
}

// Insert routes rows to shard servers by distribution-key hash.
func (c *NetCluster) Insert(table string, rows []Row) error { return c.inner.Insert(table, rows) }

// Rows returns a table's cluster-wide live row count.
func (c *NetCluster) Rows(table string) (int, error) { return c.inner.Rows(table) }

// Assignment renders the shard→node association.
func (c *NetCluster) Assignment() string { return c.inner.Assignment() }

// FailNode declares a node dead; survivors adopt its shards with
// reduced per-shard memory and parallelism.
func (c *NetCluster) FailNode(name string) error { return c.inner.FailNode(name) }

// AddNode grows the cluster onto a running shard server.
func (c *NetCluster) AddNode(spec NetNode) error { return c.inner.AddNode(spec) }

// RemoveNode shrinks the cluster gracefully.
func (c *NetCluster) RemoveNode(name string) error { return c.inner.RemoveNode(name) }

// Close releases the coordinator's connections (servers keep running).
func (c *NetCluster) Close() { c.inner.Close() }

// Internal exposes the underlying coordinator for advanced callers.
func (c *NetCluster) Internal() *mpp.NetCluster { return c.inner }
