package dashdb_test

import (
	"testing"

	"dashdb/internal/columnar"
	"dashdb/internal/core"
	"dashdb/internal/encoding"
	"dashdb/internal/types"
	"dashdb/internal/workload"
)

// Ablation benchmarks for the design choices called out in DESIGN.md §6:
// each isolates one BLU technique by toggling it while holding everything
// else constant.

// --- operate-on-compressed vs decode-then-evaluate ---------------------------
//
// Same table, same predicate on an UNCLUSTERED column (so data skipping
// cannot help either side): the only difference is SWAR evaluation over
// codes vs decoding every value.

var ablationTable = func() *columnar.Table {
	fin := workload.NewFinancial(200_000, 1)
	t := columnar.NewTable(1, "transactions", fin.Tables()[1].Schema, columnar.Config{})
	if err := t.InsertBatch(fin.Transactions()); err != nil {
		panic(err)
	}
	return t
}()

// account_id is uniformly random across strides: no skipping possible.
var ablationPred = []columnar.Pred{{Col: 1, Op: encoding.OpLT, Val: types.NewInt(100)}}

func BenchmarkAblationCompressedPredicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ablationTable.CountWhere(ablationPred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDecodeThenEvaluate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		err := ablationTable.ScanNaive(ablationPred, func(batch *columnar.Batch) bool {
			n += batch.Len()
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- cache policy under a working set larger than the pool -------------------
//
// Repeated analytic scans with a pool sized at ~half the table: the
// probabilistic policy retains a stable page subset while LRU thrashes.

func cachePolicyBench(b *testing.B, policy string) {
	fin := workload.NewFinancial(150_000, 1)
	tbl := fin.Tables()[1]
	// Size the pool to roughly half the compressed table.
	probe := columnar.NewTable(9, "probe", tbl.Schema, columnar.Config{})
	if err := probe.InsertBatch(fin.Transactions()); err != nil {
		b.Fatal(err)
	}
	half := probe.Compression().PageBytes / 12 // well below the two referenced columns' working set
	db := core.Open(core.Config{BufferPoolBytes: half, CachePolicy: policy})
	t, err := db.CreateTable("transactions", tbl.Schema)
	if err != nil {
		b.Fatal(err)
	}
	if err := t.InsertBatch(fin.Transactions()); err != nil {
		b.Fatal(err)
	}
	sess := db.NewSession()
	query := `SELECT txn_type, COUNT(*), SUM(amount) FROM transactions GROUP BY txn_type`
	if _, err := sess.Exec(query); err != nil { // warm
		b.Fatal(err)
	}
	db.Pool().ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(query); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(db.Pool().Stats().HitRatio(), "hit-ratio")
}

func BenchmarkAblationCachePROB(b *testing.B) { cachePolicyBench(b, "PROB") }
func BenchmarkAblationCacheLRU(b *testing.B)  { cachePolicyBench(b, "LRU") }

// --- projection pruning -------------------------------------------------------
//
// The same aggregate query expressed narrow (2 referenced columns) vs
// SELECT-star-shaped (all 6 columns referenced): pruning means the narrow
// form touches a third of the pages.

var pruneDB = func() *core.Session {
	fin := workload.NewFinancial(150_000, 1)
	db := core.Open(core.Config{BufferPoolBytes: 256 << 20})
	t, err := db.CreateTable("transactions", fin.Tables()[1].Schema)
	if err != nil {
		panic(err)
	}
	if err := t.InsertBatch(fin.Transactions()); err != nil {
		panic(err)
	}
	return db.NewSession()
}()

func BenchmarkAblationProjectionNarrow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pruneDB.Exec(`SELECT txn_type, COUNT(*) FROM transactions GROUP BY txn_type`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProjectionWide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Reference every column so pruning cannot drop any.
		q := `SELECT txn_type, COUNT(*), MIN(txn_id), MIN(account_id), MIN(txn_date), MIN(amount), MIN(status)
		      FROM transactions GROUP BY txn_type`
		if _, err := pruneDB.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- fixed-point FOR vs dictionary for decimal columns -------------------------

func BenchmarkAblationDecimalFixedPoint(b *testing.B) {
	vals := make([]types.Value, 100_000)
	for i := range vals {
		vals[i] = types.NewFloat(float64(i%90_000) / 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encoding.ChooseEncoder(types.KindFloat, vals)
		if enc.Kind() != encoding.KindIntFOR {
			b.Fatal("expected fixed-point FOR")
		}
		for _, v := range vals {
			enc.Encode(v)
		}
		b.ReportMetric(float64(enc.MemSize()), "dict-bytes")
	}
}

func BenchmarkAblationDecimalDictionary(b *testing.B) {
	vals := make([]types.Value, 100_000)
	for i := range vals {
		vals[i] = types.NewFloat(float64(i%90_000) / 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := encoding.BuildDict(types.KindFloat, vals)
		for _, v := range vals {
			enc.Encode(v)
		}
		b.ReportMetric(float64(enc.MemSize()), "dict-bytes")
	}
}
